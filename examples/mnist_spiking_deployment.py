"""Deploy a quantized LeNet on the simulated memristor SNC and run spikes.

Demonstrates the hardware half of the paper:

- Weight Clustering maps weights to crossbar conductance codes,
- the network is tiled onto 32×32 differential-pair crossbars (Eq. 1 /
  Fig. 2 — the mapping report prints the layout),
- inference runs through the analog crossbar path, and the result is
  *bit-exact* against the quantized software model,
- rate coding / IFC mechanics are shown on one layer's worth of signals,
- programming variation is injected to show graceful degradation.

Usage:  python examples/mnist_spiking_deployment.py
"""

import numpy as np

from repro import datasets, models
from repro.core import Trainer, TrainerConfig
from repro.snc import (
    SpikingSystemConfig,
    build_spiking_system,
    decode_counts,
    encode_uniform,
    window_length,
)


def main() -> None:
    train, test = datasets.mnist_like(train_size=1200, test_size=400, seed=0)

    print("Training LeNet with Neuron Convergence (M=4) ...")
    model = models.LeNet(rng=np.random.default_rng(7))
    Trainer(
        TrainerConfig(epochs=12, penalty="proposed", bits=4, seed=1)
    ).fit(model, train)

    print("Deploying on the memristor SNC (4-bit signals, 4-bit weights) ...")
    config = SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8)
    system = build_spiking_system(model, config, train.images[:200])

    print()
    print(system.mapping.summary())
    print()

    exact = system.verify_equivalence(test.images[:100])
    print(f"Hardware ≡ quantized software (bit-exact): {exact}")
    accuracy = system.accuracy(test)
    print(f"Hardware accuracy on {len(test)} samples  : {accuracy * 100:.2f}%")

    stats = system.spike_statistics(test.images[:50])
    print(f"Spike window: {stats.window} slots (2^M − 1)")
    print(f"Mean spikes per inference: {stats.total_mean_spikes:.0f}")
    for layer, count in stats.per_layer_counts.items():
        print(f"  {layer}: {count:.1f} spikes/sample")

    # Rate-coding demo: integers survive the spike channel losslessly.
    values = np.array([0, 1, 7, 15, 23])
    spikes = encode_uniform(values, bits=4)
    decoded = decode_counts(spikes)
    print(f"\nRate coding (M=4, window={window_length(4)}):")
    print(f"  values  : {values}")
    print(f"  decoded : {decoded}  (23 saturates at 15 — the window clip)")

    print("\nInjecting 10% memristor programming variation ...")
    noisy = build_spiking_system(
        model,
        SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8,
                            variation_sigma=0.10, seed=3),
        train.images[:200],
    )
    print(f"  equivalence now: {noisy.verify_equivalence(test.images[:50])}")
    print(f"  accuracy now   : {noisy.accuracy(test) * 100:.2f}%")


if __name__ == "__main__":
    main()
