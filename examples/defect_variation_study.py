"""Memristor programming-variation study (beyond the paper's tables).

The paper's reference [16] ("Rescuing memristor-based neuromorphic design
with high defects") motivates why device non-ideality matters.  This
example sweeps lognormal programming variation σ from 0 to 30% on a
deployed 4-bit LeNet and reports hardware accuracy — showing (a) the
bit-exact regime at σ=0 and (b) how much imprecision the differential-pair
crossbar mapping tolerates before accuracy collapses.

Usage:  python examples/defect_variation_study.py
"""

import numpy as np

from repro import datasets, models
from repro.analysis import render_table
from repro.core import Trainer, TrainerConfig
from repro.snc import SpikingSystemConfig, build_spiking_system


def main() -> None:
    train, test = datasets.mnist_like(train_size=1200, test_size=400, seed=0)

    print("Training LeNet with Neuron Convergence (M=4) ...")
    model = models.LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=12, penalty="proposed", bits=4, seed=1)).fit(model, train)

    rows = []
    for sigma in (0.0, 0.02, 0.05, 0.10, 0.20, 0.30):
        accuracies = []
        for seed in (1, 2, 3):
            system = build_spiking_system(
                model,
                SpikingSystemConfig(
                    signal_bits=4, weight_bits=4, input_bits=8,
                    variation_sigma=sigma, seed=seed,
                ),
                train.images[:200],
            )
            accuracies.append(system.accuracy(test) * 100)
        accuracies = np.array(accuracies)
        exact = sigma == 0.0
        rows.append(
            [f"{sigma * 100:.0f}%", accuracies.mean(), accuracies.std(),
             "yes" if exact else "no"]
        )

    print()
    print(
        render_table(
            ["variation σ", "mean acc [%]", "std [%]", "bit-exact"],
            rows,
            title="LeNet 4-bit on the memristor SNC under programming variation",
        )
    )


if __name__ == "__main__":
    main()
