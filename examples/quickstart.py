"""Quickstart: train LeNet, quantize it the paper's way, compare accuracies.

Runs the full pipeline from the public API in under a minute on one CPU:

1. generate the synthetic MNIST-like dataset,
2. train two LeNets — traditional, and with Neuron Convergence (M=4),
3. deploy both with 4-bit fixed-integer signals and 4-bit fixed-point
   weights (naive grid vs Weight Clustering),
4. print the with/without/recovered/drop numbers (one Table 4 cell group).

Usage:  python examples/quickstart.py
"""

import time


from repro import datasets
from repro.core import PipelineConfig, QuantizationPipeline

def main() -> None:
    start = time.time()
    print("Generating MNIST-like data ...")
    train, test = datasets.mnist_like(train_size=1500, test_size=500, seed=0)

    config = PipelineConfig(signal_bits=4, weight_bits=4, epochs=12, seed=0)
    pipeline = QuantizationPipeline(config)

    print("Training both arms (traditional + Neuron Convergence) ...")
    report = pipeline.run("lenet", train, test)

    print()
    print(report.summary())
    print()
    outcome = report.outcome
    print(f"Ideal (fp32) accuracy        : {outcome.ideal:6.2f}%")
    print(f"Quantized, traditional (w/o) : {outcome.accuracy_without:6.2f}%")
    print(f"Quantized, proposed (w/)     : {outcome.accuracy_with:6.2f}%")
    print(f"Recovered accuracy           : {outcome.recovered:+6.2f}%")
    print(f"Remaining drop vs ideal      : {outcome.drop:6.2f}%")
    print(f"\nDone in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
