"""Bit-width study on the CIFAR-like task: how low can the precision go?

Sweeps M = N over {5, 4, 3, 2} bits on the AlexNet-style network, training
one Neuron-Convergence model per bit width and comparing against naive
quantization of a traditionally trained model — the deeper-network,
harder-dataset regime where the paper's method earns its keep
(Table 4's AlexNet block, plus a 2-bit point beyond the paper).

Usage:  python examples/cifar_quantization_study.py [--fast]
"""

import sys
import time

import numpy as np

from repro import datasets, models
from repro.analysis import evaluate_accuracy, render_table
from repro.core import DeploymentConfig, Trainer, TrainerConfig, deploy_model


def main(fast: bool = False) -> None:
    start = time.time()
    train_size, epochs, width = (1000, 8, 0.2) if fast else (1500, 14, 0.25)
    train, test = datasets.cifar_like(train_size=train_size, test_size=500, seed=0)

    print(f"Training traditional AlexNet (width ×{width}) ...")
    baseline = models.AlexNetCifar(width_multiplier=width, rng=np.random.default_rng(3))
    Trainer(TrainerConfig(epochs=epochs, penalty="none", seed=2)).fit(baseline, train)
    ideal = evaluate_accuracy(baseline, test) * 100
    print(f"  ideal fp32 accuracy: {ideal:.2f}%")

    rows = []
    for bits in (5, 4, 3, 2):
        print(f"Training Neuron-Convergence AlexNet for M={bits} ...")
        proposed = models.AlexNetCifar(width_multiplier=width, rng=np.random.default_rng(3))
        Trainer(
            TrainerConfig(epochs=epochs, penalty="proposed", bits=bits, seed=2)
        ).fit(proposed, train)

        without_deployed, _ = deploy_model(
            baseline, DeploymentConfig(signal_bits=bits, weight_bits=bits, weight_mode="naive")
        )
        with_deployed, _ = deploy_model(
            proposed,
            DeploymentConfig(signal_bits=bits, weight_bits=bits, weight_mode="clustered"),
        )
        without_acc = evaluate_accuracy(without_deployed, test) * 100
        with_acc = evaluate_accuracy(with_deployed, test) * 100
        rows.append(
            [bits, without_acc, with_acc, with_acc - without_acc, ideal - with_acc]
        )

    print()
    print(
        render_table(
            ["bits (M=N)", "w/o [%]", "w/ [%]", "recovered [%]", "drop vs ideal [%]"],
            rows,
            title=f"AlexNet on CIFAR-like (ideal {ideal:.2f}%)",
        )
    )
    print(f"\nDone in {time.time() - start:.0f}s")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
