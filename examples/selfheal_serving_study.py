"""Self-healing deployment study: diagnose, repair, and guarded serving.

A deployed memristor chip accumulates stuck-at defects and programming
drift, and a naive deployment silently serves wrong answers.  This example
closes the loop the way a production system would:

1. deploy a 4-bit LeNet with programming variation, spare crossbars
   provisioned, then injure it with stuck-at faults;
2. run the test-vector health probe (:mod:`repro.snc.diagnosis`);
3. climb the tiered repair ladder — closed-loop reprogramming, pair swap,
   spare-tile remap (:mod:`repro.snc.remediation`);
4. serve traffic through :class:`~repro.runtime.guard.GuardedSpikingSystem`,
   which re-probes periodically and falls back to the quantized software
   twin whenever the analog path misses spec.

Usage:  python examples/selfheal_serving_study.py
"""

import numpy as np

from repro import datasets, models
from repro.analysis import render_table
from repro.core import Trainer, TrainerConfig
from repro.runtime.guard import GuardConfig
from repro.snc import (
    RemediationConfig,
    SpikingSystemConfig,
    build_spiking_system,
    inject_faults_into_network,
)


def main() -> None:
    train, test = datasets.mnist_like(train_size=1200, test_size=400, seed=0)

    print("Training LeNet with Neuron Convergence (M=4) ...")
    model = models.LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=12, penalty="proposed", bits=4, seed=1)).fit(model, train)

    rows = []
    for rate in (0.01, 0.05, 0.10):
        system = build_spiking_system(
            model,
            SpikingSystemConfig(
                signal_bits=4, weight_bits=4, input_bits=8,
                variation_sigma=0.05, spare_tile_fraction=0.25, seed=0,
            ),
            train.images[:200],
        )
        software_acc = system.accuracy(test)  # pre-fault twin == hardware spec
        inject_faults_into_network(system.network, rate, seed=42)
        faulty_acc = system.accuracy(test)

        health = system.health_check(seed=0)
        repair = system.remediate(RemediationConfig(seed=0))
        repaired_acc = system.accuracy(test)

        guard = system.guarded(
            GuardConfig(probe_every=100, max_deviating_fraction=1e-4, seed=0)
        )
        guarded_acc = guard.accuracy(test)
        stats = guard.runtime_stats()

        print(
            f"\nfault rate {rate:.0%}: worst layer {health.worst_layer}, "
            f"{health.estimated_stuck} stuck-like / {health.estimated_drift} drift"
        )
        print(repair.summary())
        print(
            f"guard: {stats['requests_analog']} analog / "
            f"{stats['requests_software']} software requests, "
            f"fallback={stats['fallback_engaged']}, "
            f"probe latency {stats['probe_latency_mean_s'] * 1e3:.1f} ms"
        )
        rows.append(
            [
                f"{rate * 100:.0f}%",
                faulty_acc * 100,
                repaired_acc * 100,
                guarded_acc * 100,
                software_acc * 100,
                stats["serving_path"],
            ]
        )

    print()
    print(
        render_table(
            ["fault rate", "faulty [%]", "repaired [%]", "guarded [%]",
             "software [%]", "final path"],
            rows,
            title="LeNet 4-bit, σ=0.05: self-healing deployment",
        )
    )


if __name__ == "__main__":
    main()
