"""Stuck-at-fault study with the differential-pair rescue (beyond the paper).

The paper's reference [16] studies memristor crossbars with high defect
rates.  This example deploys a 4-bit LeNet, injects stuck-at-0/1 faults at
increasing rates, and measures hardware accuracy before and after the
retraining-free pair-swap rescue (:mod:`repro.snc.faults`).

Usage:  python examples/defect_rescue_study.py
"""

import numpy as np

from repro import datasets, models
from repro.analysis import render_table
from repro.core import Trainer, TrainerConfig
from repro.snc import (
    SpikingSystemConfig,
    build_spiking_system,
    inject_faults_into_network,
    rescue_network,
)


def main() -> None:
    train, test = datasets.mnist_like(train_size=1200, test_size=400, seed=0)

    print("Training LeNet with Neuron Convergence (M=4) ...")
    model = models.LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=12, penalty="proposed", bits=4, seed=1)).fit(model, train)

    rows = []
    for rate in (0.0, 0.01, 0.02, 0.05, 0.10, 0.20):
        plain_accs, rescued_accs = [], []
        for seed in (1, 2, 3):
            system = build_spiking_system(
                model,
                SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8, seed=0),
                train.images[:200],
            )
            fault_rng = np.random.default_rng(seed * 101)
            report = inject_faults_into_network(system.network, rate, rng=fault_rng)
            plain_accs.append(system.accuracy(test) * 100)
            swapped = rescue_network(system.network)
            rescued_accs.append(system.accuracy(test) * 100)
        rows.append(
            [
                f"{rate * 100:.0f}%",
                float(np.mean(plain_accs)),
                float(np.mean(rescued_accs)),
                float(np.mean(rescued_accs) - np.mean(plain_accs)),
            ]
        )

    print()
    print(
        render_table(
            ["fault rate", "faulty acc [%]", "rescued acc [%]", "rescue gain [%]"],
            rows,
            title="LeNet 4-bit under stuck-at faults, pair-swap rescue",
        )
    )


if __name__ == "__main__":
    main()
