"""The Telemetry facade: one clock, one registry, one tracer."""

from repro.obs import SYSTEM_CLOCK, FakeClock, Telemetry, from_json


class TestTelemetry:
    def test_defaults(self):
        telemetry = Telemetry()
        assert telemetry.clock is SYSTEM_CLOCK
        assert telemetry.tracer.clock is SYSTEM_CLOCK

    def test_clock_is_shared_with_the_tracer(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.tracer.span("work") as span:
            clock.advance(2.0)
        assert span.duration == 2.0

    def test_reservoir_size_propagates(self):
        telemetry = Telemetry(reservoir_size=4)
        hist = telemetry.registry.histogram("h")
        for i in range(100):
            hist.observe(float(i))
        assert len(hist.snapshot().samples) == 4

    def test_max_spans_propagates(self):
        telemetry = Telemetry(max_spans=2)
        for i in range(5):
            telemetry.tracer.record("s", float(i), float(i) + 1.0)
        assert len(telemetry.tracer.spans()) == 2
        assert telemetry.tracer.spans_finished == 5

    def test_export_json_round_trips(self):
        telemetry = Telemetry(clock=FakeClock())
        telemetry.registry.counter("c").inc(3)
        telemetry.registry.histogram("h").observe(0.5)
        assert from_json(telemetry.export_json()) == telemetry.registry.snapshot()

    def test_export_prometheus(self):
        telemetry = Telemetry()
        telemetry.registry.gauge("g", help="a gauge").set(1.5)
        text = telemetry.export_prometheus()
        assert "# TYPE g gauge" in text
        assert "g 1.5" in text
