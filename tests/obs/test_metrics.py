"""Metrics primitives: units plus the hypothesis property suite.

The properties the exporters and mergers lean on:

- merged snapshot quantiles are bounded by the inputs' exact extrema,
- snapshots are idempotent (pure reads, equal when taken back to back),
- counters are monotonic and lose no increments under thread interleaving.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite_floats, min_size=1, max_size=200)


def _snapshot_of(values, reservoir_size=64):
    hist = Histogram(reservoir_size=reservoir_size)
    for value in values:
        hist.observe(value)
    return hist.snapshot()


class TestCounter:
    def test_monotonic_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    @given(amounts=st.lists(st.floats(min_value=0, max_value=1e6,
                                      allow_nan=False), max_size=50))
    def test_value_is_sum_of_increments(self, amounts):
        counter = Counter()
        for amount in amounts:
            counter.inc(amount)
        assert counter.value == pytest.approx(sum(amounts))

    @given(
        threads=st.integers(min_value=2, max_value=8),
        increments=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=20, deadline=None)
    def test_no_lost_increments_under_interleaved_threads(self, threads, increments):
        counter = Counter()
        barrier = threading.Barrier(threads)
        observed = []

        def worker():
            barrier.wait()  # maximize interleaving
            for _ in range(increments):
                counter.inc()
                observed.append(counter.value)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert counter.value == threads * increments
        # Every observed reading is positive and none exceeds the final total.
        assert all(0 < v <= threads * increments for v in observed)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.add(-2.5)
        assert gauge.value == 7.5


class TestHistogram:
    def test_exact_fields(self):
        snap = _snapshot_of([3.0, 1.0, 2.0])
        assert snap.count == 3
        assert snap.total == 6.0
        assert snap.minimum == 1.0
        assert snap.maximum == 3.0
        assert snap.mean == 2.0
        assert snap.samples == (1.0, 2.0, 3.0)

    def test_reservoir_is_bounded(self):
        hist = Histogram(reservoir_size=16)
        for i in range(10_000):
            hist.observe(float(i))
        snap = hist.snapshot()
        assert len(snap.samples) == 16
        assert snap.count == 10_000
        assert snap.minimum == 0.0 and snap.maximum == 9999.0

    def test_reservoir_is_deterministic(self):
        def fill():
            hist = Histogram(reservoir_size=8)
            for i in range(1000):
                hist.observe(float(i))
            return hist.snapshot()

        assert fill() == fill()

    def test_empty_quantile_is_nan(self):
        snap = Histogram().snapshot()
        assert np.isnan(snap.quantile(0.5))

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError):
            _snapshot_of([1.0]).quantile(1.5)

    @given(values=sample_lists, q=st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_quantile_bounded_by_extrema(self, values, q):
        snap = _snapshot_of(values)
        estimate = snap.quantile(q)
        assert min(values) <= estimate <= max(values)

    @given(values=sample_lists)
    @settings(max_examples=100, deadline=None)
    def test_snapshot_idempotent(self, values):
        hist = Histogram(reservoir_size=32)
        for value in values:
            hist.observe(value)
        first = hist.snapshot()
        second = hist.snapshot()
        assert first == second
        # Reading quantiles is pure: the snapshot compares equal afterwards.
        first.quantile(0.5)
        assert first == second

    @given(a=sample_lists, b=sample_lists,
           q=st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0]))
    @settings(max_examples=150, deadline=None)
    def test_merge_quantiles_bounded_by_inputs(self, a, b, q):
        merged = _snapshot_of(a).merge(_snapshot_of(b))
        low = min(min(a), min(b))
        high = max(max(a), max(b))
        assert merged.count == len(a) + len(b)
        assert merged.total == pytest.approx(sum(a) + sum(b))
        assert merged.minimum == low and merged.maximum == high
        assert low <= merged.quantile(q) <= high
        assert len(merged.samples) <= merged.reservoir_size

    @given(a=sample_lists, b=sample_lists)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_deterministic_and_symmetric_in_count(self, a, b):
        left = _snapshot_of(a).merge(_snapshot_of(b))
        again = _snapshot_of(a).merge(_snapshot_of(b))
        assert left == again
        flipped = _snapshot_of(b).merge(_snapshot_of(a))
        assert flipped.count == left.count
        assert flipped.minimum == left.minimum
        assert flipped.maximum == left.maximum

    def test_merge_empty_snapshots(self):
        empty = Histogram().snapshot()
        merged = empty.merge(empty)
        assert merged.count == 0
        assert merged.minimum is None and merged.maximum is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total", model="lenet")
        b = registry.counter("requests_total", model="lenet")
        assert a is b
        other = registry.counter("requests_total", model="alexnet")
        assert other is not a

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok", **{"0bad": "x"})

    def test_snapshot_carries_all_series(self):
        registry = MetricsRegistry()
        registry.counter("c", help="a counter", k="1").inc(2)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        snap = registry.snapshot()
        assert snap.names() == ["c", "g", "h"]
        family = snap.family("c")
        assert family.kind == "counter" and family.help == "a counter"
        labels, value = family.series[0]
        assert labels == {"k": "1"} and value == 2.0
        assert snap.family("missing") is None

    def test_concurrent_get_or_create_single_instrument(self):
        registry = MetricsRegistry()
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            counter = registry.counter("shared_total")
            counter.inc()
            results.append(counter)

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert all(c is results[0] for c in results)
        assert results[0].value == 8


class TestEngineStatsRegression:
    """EngineStats used to keep bare ints; concurrent runs dropped counts."""

    def test_concurrent_increments_are_exact(self):
        from repro.runtime.engine import EngineStats

        stats = EngineStats()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(500):
                stats.inc("runs")
                stats.inc("retraces")

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert stats.runs == 4000
        assert stats.retraces == 4000


class TestSnapshotMergeUnit:
    def test_merge_respects_count_proportions(self):
        heavy = _snapshot_of([0.0] * 150, reservoir_size=64)
        light = _snapshot_of([100.0] * 10, reservoir_size=64)
        merged = heavy.merge(light)
        # The heavy side contributes proportionally more retained samples.
        zeros = sum(1 for s in merged.samples if s == 0.0)
        hundreds = sum(1 for s in merged.samples if s == 100.0)
        assert zeros > hundreds
        assert merged.count == 160

    def test_merge_type(self):
        merged = _snapshot_of([1.0]).merge(_snapshot_of([2.0]))
        assert isinstance(merged, HistogramSnapshot)
