"""Tracer behaviour under an injected FakeClock: every duration is exact."""

import threading

import pytest

from repro.obs.clock import SYSTEM_CLOCK, FakeClock
from repro.obs.tracing import Tracer


class TestFakeClock:
    def test_manual_advance(self):
        clock = FakeClock(start=10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        assert clock() == 12.5

    def test_auto_step(self):
        clock = FakeClock(auto_step=1.0)
        assert clock() == 0.0
        assert clock() == 1.0
        assert clock() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_system_clock_is_monotonic(self):
        assert SYSTEM_CLOCK() <= SYSTEM_CLOCK()


class TestSpans:
    def test_span_duration_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("engine.run", model="lenet") as span:
            clock.advance(0.125)
            span.set(rows=8)
        (finished,) = tracer.spans("engine.run")
        assert finished is span
        assert finished.duration == 0.125
        assert finished.attributes == {"model": "lenet", "rows": 8}

    def test_open_span_has_zero_duration(self):
        tracer = Tracer(clock=FakeClock(auto_step=1.0))
        context = tracer.span("work")
        assert context.span.duration == 0.0

    def test_nested_spans_are_parented(self):
        tracer = Tracer(clock=FakeClock(auto_step=0.5))
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner finishes first, so it lands in the ring first.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_record_parents_under_open_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("replica.serve") as outer:
            recorded = tracer.record("plan.matmul", 1.0, 1.5, index=3)
        assert recorded.parent_id == outer.span_id
        assert recorded.duration == 0.5
        assert recorded.attributes == {"index": 3}

    def test_record_without_open_span_is_root(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.record("plan.relu", 0.0, 1.0)
        assert span.parent_id is None

    def test_exception_marks_error_attribute(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("engine.run"):
                raise RuntimeError("boom")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None

    def test_to_dict_is_json_shape(self):
        tracer = Tracer(clock=FakeClock(auto_step=1.0))
        with tracer.span("work", a=1):
            pass
        payload = tracer.spans()[0].to_dict()
        assert payload["name"] == "work"
        assert payload["duration"] == payload["end"] - payload["start"]
        assert payload["attributes"] == {"a": 1}


class TestRing:
    def test_ring_is_bounded_but_totals_exact(self):
        tracer = Tracer(clock=FakeClock(), max_spans=4)
        for i in range(10):
            tracer.record("step", float(i), float(i) + 0.1)
        assert len(tracer.spans()) == 4
        assert tracer.spans_started == 10
        assert tracer.spans_finished == 10
        # Oldest spans were evicted; the ring holds the most recent four.
        assert [s.start for s in tracer.spans()] == [6.0, 7.0, 8.0, 9.0]

    def test_invalid_max_spans_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_clear_preserves_totals(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("a", 0.0, 1.0)
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.spans_finished == 1

    def test_name_filter(self):
        tracer = Tracer(clock=FakeClock())
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 1.0, 2.0)
        assert [s.name for s in tracer.spans("b")] == ["b"]


class TestThreading:
    def test_parentage_is_per_thread(self):
        tracer = Tracer(clock=FakeClock())
        results = {}

        def worker(tag):
            with tracer.span(f"root.{tag}") as root:
                child = tracer.record(f"child.{tag}", 0.0, 1.0)
            results[tag] = (root, child)

        pool = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        for tag, (root, child) in results.items():
            # Each child is parented under ITS thread's root, never another's.
            assert child.parent_id == root.span_id
        assert tracer.spans_finished == 8

    def test_concurrent_record_loses_nothing(self):
        tracer = Tracer(clock=FakeClock(), max_spans=10_000)
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            for i in range(200):
                tracer.record("hot", float(i), float(i) + 1.0)

        pool = [threading.Thread(target=worker) for _ in range(6)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert tracer.spans_finished == 1200
        assert len(tracer.spans()) == 1200
