"""Exporters: Prometheus text shape and JSON round-trip fidelity."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import (
    EXPORT_SCHEMA_VERSION,
    from_json,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def _populated_registry():
    registry = MetricsRegistry()
    registry.counter("requests_total", help="Requests served",
                     model="lenet").inc(7)
    registry.counter("requests_total", model="alexnet").inc(2)
    registry.gauge("queue_depth", help="Rows waiting").set(3)
    hist = registry.histogram("latency_seconds", help="Request latency")
    for value in (0.001, 0.002, 0.004, 0.010):
        hist.observe(value)
    return registry


class TestJsonRoundTrip:
    def test_round_trip_reconstructs_equal_snapshot(self):
        registry = _populated_registry()
        snap = registry.snapshot()
        assert from_json(to_json(registry)) == snap
        # Snapshot input works too, and exporting never mutates.
        assert from_json(to_json(snap)) == registry.snapshot()

    def test_empty_registry_round_trips(self):
        registry = MetricsRegistry()
        assert from_json(to_json(registry)) == registry.snapshot()

    def test_document_is_stable(self):
        registry = _populated_registry()
        assert to_json(registry) == to_json(registry)
        document = json.loads(to_json(registry))
        assert document["schema_version"] == EXPORT_SCHEMA_VERSION

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=0, max_size=100,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_histogram_reservoirs_round_trip_exactly(self, values):
        registry = MetricsRegistry()
        hist = registry.histogram("h", seen="fuzz")
        for value in values:
            hist.observe(value)
        assert from_json(to_json(registry)) == registry.snapshot()


class TestJsonValidation:
    def test_rejects_non_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            from_json("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            from_json("[1, 2]")

    def test_rejects_wrong_schema_version(self):
        document = json.loads(to_json(_populated_registry()))
        document["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            from_json(json.dumps(document))

    def test_rejects_missing_families(self):
        with pytest.raises(ValueError, match="families"):
            from_json(json.dumps({"schema_version": EXPORT_SCHEMA_VERSION}))

    def test_rejects_unknown_kind(self):
        document = json.loads(to_json(_populated_registry()))
        document["families"][0]["kind"] = "exotic"
        with pytest.raises(ValueError, match="unknown metric kind"):
            from_json(json.dumps(document))

    def test_rejects_series_without_value(self):
        document = json.loads(to_json(_populated_registry()))
        for family in document["families"]:
            if family["kind"] == "counter":
                del family["series"][0]["value"]
        with pytest.raises(ValueError, match="missing 'value'"):
            from_json(json.dumps(document))

    def test_rejects_histogram_missing_samples(self):
        document = json.loads(to_json(_populated_registry()))
        for family in document["families"]:
            if family["kind"] == "histogram":
                del family["series"][0]["samples"]
        with pytest.raises(ValueError, match="samples"):
            from_json(json.dumps(document))

    def test_rejects_missing_name(self):
        document = json.loads(to_json(_populated_registry()))
        del document["families"][0]["name"]
        with pytest.raises(ValueError, match="name"):
            from_json(json.dumps(document))


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus(_populated_registry())
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{model="lenet"} 7' in text
        assert 'requests_total{model="alexnet"} 2' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 3" in text

    def test_histogram_renders_as_summary(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"}' in text
        assert 'latency_seconds{quantile="0.99"}' in text
        assert "latency_seconds_sum 0.017" in text
        assert "latency_seconds_count 4" in text
        assert "latency_seconds_min 0.001" in text
        assert "latency_seconds_max 0.01" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = to_prometheus(registry)
        assert r'c{path="a\"b\\c\nd"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_empty_histogram_quantiles_are_nan(self):
        registry = MetricsRegistry()
        registry.histogram("h")
        text = to_prometheus(registry)
        assert 'h{quantile="0.5"} NaN' in text
        assert "h_count 0" in text
        assert "h_min" not in text
