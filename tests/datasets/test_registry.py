"""Tests for the dataset registry."""

import numpy as np
import pytest

from repro.datasets import registry


@pytest.fixture(autouse=True)
def clean_cache():
    registry.clear_cache()
    yield
    registry.clear_cache()


def test_available_datasets():
    assert "mnist-like" in registry.available_datasets()
    assert "cifar-like" in registry.available_datasets()


def test_load_returns_pair():
    train, test = registry.load_dataset("mnist-like", train_size=20, test_size=10)
    assert len(train) == 20 and len(test) == 10


def test_train_test_disjoint_generation():
    train, test = registry.load_dataset("mnist-like", train_size=20, test_size=20)
    assert not np.allclose(train.images, test.images)


def test_cache_returns_same_objects():
    first = registry.load_dataset("cifar-like", train_size=10, test_size=5)
    second = registry.load_dataset("cifar-like", train_size=10, test_size=5)
    assert first[0] is second[0]


def test_cache_distinguishes_params():
    a = registry.load_dataset("cifar-like", train_size=10, test_size=5, seed=0)
    b = registry.load_dataset("cifar-like", train_size=10, test_size=5, seed=1)
    assert a[0] is not b[0]


def test_unknown_name():
    with pytest.raises(KeyError):
        registry.load_dataset("imagenet")


def test_register_custom():
    def builder(train_size, test_size, seed=0):
        from repro.datasets.mnist_like import generate_mnist_like
        return (generate_mnist_like(train_size, seed), generate_mnist_like(test_size, seed + 1))

    registry.register_dataset("custom-test", builder)
    try:
        train, test = registry.load_dataset("custom-test", train_size=5, test_size=5)
        assert len(train) == 5
        with pytest.raises(ValueError):
            registry.register_dataset("custom-test", builder)
    finally:
        registry._BUILDERS.pop("custom-test", None)
