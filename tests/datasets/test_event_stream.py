"""Tests for the procedural DVS-gesture-like event-stream dataset."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.event_stream import (
    CLASS_PATTERNS,
    NUM_CLASSES,
    EventStream,
    EventStreamDataset,
    counts_to_frames,
    event_stream_like,
    events_to_counts,
    generate_event_stream,
    generate_event_streams,
    max_window_count,
    num_windows,
    sliding_window_counts,
)
from repro.snc.seeding import substream
from repro.snc.spikes import window_length


class TestEventStream:
    def test_parallel_arrays_enforced(self):
        with pytest.raises(ValueError, match="parallel"):
            EventStream(
                t=np.zeros(3, dtype=np.int64),
                x=np.zeros(2, dtype=np.int16),
                y=np.zeros(3, dtype=np.int16),
                polarity=np.zeros(3, dtype=np.int8),
                label=0,
                duration_us=100,
            )

    def test_unsorted_timestamps_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            EventStream(
                t=np.array([5, 3], dtype=np.int64),
                x=np.zeros(2, dtype=np.int16),
                y=np.zeros(2, dtype=np.int16),
                polarity=np.zeros(2, dtype=np.int8),
                label=0,
                duration_us=100,
            )

    def test_slice_time_is_half_open(self):
        s = EventStream(
            t=np.array([0, 10, 20, 30], dtype=np.int64),
            x=np.zeros(4, dtype=np.int16),
            y=np.zeros(4, dtype=np.int16),
            polarity=np.zeros(4, dtype=np.int8),
            label=0,
            duration_us=100,
        )
        window = s.slice_time(10, 30)
        assert window.t.tolist() == [10, 20]
        assert window.label == 0 and window.duration_us == 100


class TestGeneration:
    @pytest.mark.parametrize("label", range(len(CLASS_PATTERNS)))
    def test_every_pattern_generates_events(self, label):
        stream = generate_event_stream(label, substream(0, "t", (label,)))
        assert len(stream) > 50
        assert stream.t.dtype == np.int64
        assert np.all(np.diff(stream.t) >= 0)
        assert np.all((stream.t >= 0) & (stream.t < stream.duration_us))
        assert np.all((stream.x >= 0) & (stream.x < stream.width))
        assert np.all((stream.y >= 0) & (stream.y < stream.height))
        assert set(np.unique(stream.polarity)) <= {0, 1}

    def test_bad_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            generate_event_stream(99, substream(0, "t"))

    def test_deterministic_from_seed(self):
        a = generate_event_streams(8, seed=7)
        b = generate_event_streams(8, seed=7)
        for sa, sb in zip(a.streams, b.streams):
            assert sa.label == sb.label
            np.testing.assert_array_equal(sa.t, sb.t)
            np.testing.assert_array_equal(sa.x, sb.x)
            np.testing.assert_array_equal(sa.y, sb.y)
            np.testing.assert_array_equal(sa.polarity, sb.polarity)

    def test_different_seed_differs(self):
        a = generate_event_streams(4, seed=1)
        b = generate_event_streams(4, seed=2)
        assert any(
            len(sa) != len(sb) or not np.array_equal(sa.t, sb.t)
            for sa, sb in zip(a.streams, b.streams)
        )

    def test_labels_balanced(self):
        ds = generate_event_streams(NUM_CLASSES * 3, seed=0)
        counts = np.bincount(ds.labels, minlength=NUM_CLASSES)
        assert np.all(counts == 3)

    def test_train_test_disjoint_seeds(self):
        train, test = event_stream_like(train_size=5, test_size=5, seed=0)
        assert isinstance(train, EventStreamDataset)
        assert len(train) == 5 and len(test) == 5
        assert not np.array_equal(train.streams[0].t, test.streams[0].t)

    def test_registered_in_registry(self):
        train, test = load_dataset("dvs-gesture-like", train_size=4, test_size=2, seed=3)
        assert len(train) == 4 and len(test) == 2
        direct_train, _ = event_stream_like(train_size=4, test_size=2, seed=3)
        np.testing.assert_array_equal(train.streams[0].t, direct_train.streams[0].t)


class TestBinning:
    @pytest.fixture(scope="class")
    def stream(self):
        return generate_event_stream(0, substream(0, "binning"))

    def test_counts_shape_and_clip(self, stream):
        bits = 2
        counts = events_to_counts(stream, 0, stream.duration_us, bits)
        assert counts.shape == (1, stream.height, stream.width)
        assert counts.dtype == np.int64
        assert counts.max() <= window_length(bits)
        assert counts.sum() > 0

    def test_split_polarity_channels(self, stream):
        merged = events_to_counts(stream, 0, stream.duration_us, bits=8)
        split = events_to_counts(stream, 0, stream.duration_us, bits=8, polarity="split")
        assert split.shape == (2, stream.height, stream.width)
        # With a wide-enough window nothing clips, so channels sum to merge.
        np.testing.assert_array_equal(split.sum(axis=0, keepdims=True), merged)

    def test_empty_window_is_zero(self, stream):
        counts = events_to_counts(stream, stream.duration_us + 10,
                                  stream.duration_us + 20, bits=4)
        assert counts.sum() == 0

    def test_invalid_window_rejected(self, stream):
        with pytest.raises(ValueError, match="t0_us < t1_us"):
            events_to_counts(stream, 10, 10, bits=4)
        with pytest.raises(ValueError, match="polarity"):
            events_to_counts(stream, 0, 10, bits=4, polarity="both")

    def test_num_windows(self):
        assert num_windows(100, 100, 25) == 1
        assert num_windows(100, 25, 25) == 4
        assert num_windows(101, 25, 25) == 5
        assert num_windows(10, 40, 20) == 1
        with pytest.raises(ValueError):
            num_windows(100, 0, 25)

    def test_sliding_window_counts_shape(self, stream):
        window_us, stride_us = 25_000, 12_500
        frames = sliding_window_counts(stream, window_us, stride_us, bits=4)
        expected = num_windows(stream.duration_us, window_us, stride_us)
        assert frames.shape == (expected, 1, stream.height, stream.width)
        # Windows are consistent with direct binning of the same interval.
        np.testing.assert_array_equal(
            frames[2],
            events_to_counts(stream, 2 * stride_us, 2 * stride_us + window_us, 4),
        )

    def test_counts_to_frames_range(self, stream):
        counts = sliding_window_counts(stream, 25_000, 25_000, bits=4)
        frames = counts_to_frames(counts, bits=4)
        assert frames.dtype == np.float64
        assert frames.min() >= 0.0 and frames.max() <= 1.0

    def test_max_window_count_bounds_clipping(self, stream):
        peak = max_window_count([stream], 25_000, 12_500)
        assert peak >= 1
        # With bits chosen so 2^M-1 >= peak, binning never clips.
        bits = int(np.ceil(np.log2(peak + 1)))
        counts = sliding_window_counts(stream, 25_000, 12_500, bits=bits)
        assert counts.max() == peak
