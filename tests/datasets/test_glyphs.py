"""Tests for the digit glyph bitmaps."""

import numpy as np
import pytest

from repro.datasets.glyphs import GLYPH_HEIGHT, GLYPH_WIDTH, all_glyphs, digit_glyph


class TestGlyphs:
    def test_shape(self):
        for digit in range(10):
            assert digit_glyph(digit).shape == (GLYPH_HEIGHT, GLYPH_WIDTH)

    def test_binary_values(self):
        for digit in range(10):
            glyph = digit_glyph(digit)
            assert set(np.unique(glyph)) <= {0.0, 1.0}

    def test_all_glyphs_distinct(self):
        glyphs = all_glyphs()
        assert glyphs.shape == (10, 7, 5)
        for a in range(10):
            for b in range(a + 1, 10):
                assert not np.array_equal(glyphs[a], glyphs[b]), f"{a} == {b}"

    def test_every_glyph_has_ink(self):
        for digit in range(10):
            assert digit_glyph(digit).sum() >= 5

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            digit_glyph(10)
        with pytest.raises(ValueError):
            digit_glyph(-1)
