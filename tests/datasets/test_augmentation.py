"""Tests for training-time data augmentation."""

import numpy as np
import pytest

from repro.datasets.augmentation import (
    AugmentationConfig,
    AugmentedLoader,
    apply_augmentation,
    random_horizontal_flip,
    random_shift,
)
from repro.nn.data import Dataset


def dataset(rng, n=24):
    return Dataset(rng.normal(size=(n, 3, 8, 8)), np.arange(n) % 4)


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            AugmentationConfig(max_shift=-1)
        with pytest.raises(ValueError):
            AugmentationConfig(noise_sigma=-0.1)


class TestRandomShift:
    def test_zero_shift_identity(self, rng):
        images = rng.normal(size=(4, 1, 6, 6))
        out = random_shift(images, 0, rng)
        np.testing.assert_allclose(out, images)

    def test_shape_preserved(self, rng):
        images = rng.normal(size=(4, 3, 8, 8))
        out = random_shift(images, 2, rng)
        assert out.shape == images.shape

    def test_content_moves(self):
        images = np.zeros((50, 1, 8, 8))
        images[:, 0, 4, 4] = 1.0
        out = random_shift(images, 2, np.random.default_rng(0))
        positions = {tuple(np.argwhere(out[i, 0])[0]) for i in range(50)}
        assert len(positions) > 3  # many distinct translations occurred

    def test_mass_preserved_when_interior(self):
        images = np.zeros((10, 1, 8, 8))
        images[:, 0, 4, 4] = 1.0
        out = random_shift(images, 2, np.random.default_rng(0))
        np.testing.assert_allclose(out.sum(axis=(1, 2, 3)), 1.0)


class TestFlip:
    def test_half_flipped_on_average(self):
        images = np.zeros((400, 1, 2, 2))
        images[:, 0, 0, 0] = 1.0  # marker at top-left
        out = random_horizontal_flip(images, np.random.default_rng(0))
        flipped = (out[:, 0, 0, 1] == 1.0).mean()
        assert 0.4 < flipped < 0.6

    def test_flip_is_mirror(self):
        images = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        rng = np.random.default_rng(1)
        # Force a flip by retrying until one occurs.
        for _ in range(50):
            out = random_horizontal_flip(images, rng)
            if not np.allclose(out, images):
                np.testing.assert_allclose(out[0, 0], images[0, 0, :, ::-1])
                return
        pytest.fail("no flip occurred in 50 draws")


class TestApplyAndLoader:
    def test_apply_does_not_mutate_input(self, rng):
        images = rng.normal(size=(4, 1, 6, 6))
        original = images.copy()
        apply_augmentation(images, AugmentationConfig(), rng)
        np.testing.assert_allclose(images, original)

    def test_noise_changes_values(self, rng):
        images = rng.normal(size=(4, 1, 6, 6))
        config = AugmentationConfig(max_shift=0, horizontal_flip=False, noise_sigma=0.1)
        out = apply_augmentation(images, config, rng)
        assert not np.allclose(out, images)

    def test_loader_yields_augmented_batches(self, rng):
        data = dataset(rng)
        loader = AugmentedLoader(data, batch_size=8, rng=np.random.default_rng(0))
        batches = list(loader)
        assert len(batches) == 3
        images, labels = batches[0]
        assert images.shape == (8, 3, 8, 8)
        assert labels.shape == (8,)

    def test_loader_len(self, rng):
        data = dataset(rng)
        assert len(AugmentedLoader(data, batch_size=10)) == 3

    def test_augmentation_improves_nothing_lost(self, rng):
        """Labels ride through unchanged and every sample appears."""
        data = dataset(rng)
        loader = AugmentedLoader(
            data, batch_size=6, rng=np.random.default_rng(0), shuffle=False
        )
        labels = np.concatenate([lab for _, lab in loader])
        np.testing.assert_allclose(np.sort(labels), np.sort(data.labels))
