"""Tests for the MNIST-like and CIFAR-like dataset generators."""

import numpy as np
import pytest

from repro.datasets.cifar_like import generate_cifar_like, render_class_image
from repro.datasets.mnist_like import generate_mnist_like, render_digit


class TestMnistLike:
    def test_shapes_and_types(self):
        ds = generate_mnist_like(50, seed=0)
        assert ds.images.shape == (50, 1, 28, 28)
        assert ds.labels.shape == (50,)
        assert ds.labels.dtype == np.int64

    def test_balanced_classes(self):
        ds = generate_mnist_like(100, seed=0)
        counts = np.bincount(ds.labels, minlength=10)
        np.testing.assert_allclose(counts, 10)

    def test_deterministic_from_seed(self):
        a = generate_mnist_like(20, seed=5)
        b = generate_mnist_like(20, seed=5)
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_allclose(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_mnist_like(20, seed=1)
        b = generate_mnist_like(20, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_intra_class_variation(self):
        rng = np.random.default_rng(0)
        first = render_digit(3, rng)
        second = render_digit(3, rng)
        assert not np.allclose(first, second)

    def test_render_values_in_unit_range(self):
        rng = np.random.default_rng(0)
        image = render_digit(7, rng)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_mnist_like(0)

    def test_normalized_statistics(self):
        ds = generate_mnist_like(200, seed=0)
        assert abs(ds.images.mean()) < 0.5
        assert 0.3 < ds.images.std() < 3.0


class TestCifarLike:
    def test_shapes(self):
        ds = generate_cifar_like(40, seed=0)
        assert ds.images.shape == (40, 3, 32, 32)

    def test_balanced(self):
        ds = generate_cifar_like(100, seed=0)
        np.testing.assert_allclose(np.bincount(ds.labels, minlength=10), 10)

    def test_deterministic(self):
        a = generate_cifar_like(10, seed=3)
        b = generate_cifar_like(10, seed=3)
        np.testing.assert_allclose(a.images, b.images)

    def test_every_class_renders(self):
        rng = np.random.default_rng(0)
        for label in range(10):
            image = render_class_image(label, rng)
            assert image.shape == (3, 32, 32)
            assert np.isfinite(image).all()

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            render_class_image(10, np.random.default_rng(0))

    def test_classes_structurally_distinct(self):
        """Mean image of stripes vs disk classes should differ clearly."""
        rng = np.random.default_rng(0)
        stripes = np.mean([render_class_image(0, rng) for _ in range(10)], axis=0)
        disks = np.mean([render_class_image(4, rng) for _ in range(10)], axis=0)
        assert np.abs(stripes - disks).mean() > 0.01

    def test_color_variation_within_class(self):
        rng = np.random.default_rng(0)
        a = render_class_image(4, rng)
        b = render_class_image(4, rng)
        assert not np.allclose(a, b)
