"""Tests for image transforms."""

import numpy as np
import pytest

from repro.datasets import transforms as T


class TestAffineSample:
    def test_identity(self, rng):
        image = rng.random((9, 9))
        out = T.affine_sample(image, np.eye(2))
        np.testing.assert_allclose(out, image, atol=1e-12)

    def test_translation_shifts_content(self):
        image = np.zeros((9, 9))
        image[4, 4] = 1.0
        # offset moves the *source* sampling point; content moves opposite.
        out = T.affine_sample(image, np.eye(2), offset=(2.0, 0.0))
        assert out[2, 4] == 1.0

    def test_rotation_180_flips(self, rng):
        image = rng.random((7, 7))
        out = T.affine_sample(image, T.rotation_matrix(np.pi))
        np.testing.assert_allclose(out, image[::-1, ::-1], atol=1e-10)

    def test_rotation_preserves_mass_roughly(self):
        image = np.zeros((15, 15))
        image[5:10, 5:10] = 1.0
        out = T.affine_sample(image, T.rotation_matrix(np.pi / 7))
        assert abs(out.sum() - image.sum()) / image.sum() < 0.15

    def test_out_of_range_reads_zero(self):
        image = np.ones((5, 5))
        out = T.affine_sample(image, np.eye(2), offset=(10.0, 10.0))
        np.testing.assert_allclose(out, 0.0)

    def test_scale_magnifies_content(self):
        image = np.zeros((11, 11))
        image[3:8, 3:8] = 1.0
        magnified = T.affine_sample(image, T.scale_matrix(2.0, 2.0))
        shrunk = T.affine_sample(image, T.scale_matrix(0.5, 0.5))
        assert magnified.sum() > image.sum() > shrunk.sum()

    def test_output_shape_override(self, rng):
        out = T.affine_sample(rng.random((5, 5)), np.eye(2), output_shape=(9, 3))
        assert out.shape == (9, 3)

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            T.affine_sample(rng.random((2, 3, 3)), np.eye(2))


class TestOtherTransforms:
    def test_upscale_nearest(self):
        image = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = T.upscale_nearest(image, 2)
        assert out.shape == (4, 4)
        np.testing.assert_allclose(out[:2, :2], [[1, 1], [1, 1]])
        np.testing.assert_allclose(out[2:, 2:], [[4, 4], [4, 4]])

    def test_upscale_invalid_factor(self):
        with pytest.raises(ValueError):
            T.upscale_nearest(np.ones((2, 2)), 0)

    def test_box_blur_preserves_constant(self):
        image = np.full((6, 6), 3.0)
        np.testing.assert_allclose(T.box_blur(image, 1), 3.0)

    def test_box_blur_smooths(self):
        image = np.zeros((7, 7))
        image[3, 3] = 1.0
        out = T.box_blur(image, 1)
        assert out[3, 3] < 1.0
        assert out[2, 3] > 0.0

    def test_box_blur_radius_zero_identity(self, rng):
        image = rng.random((4, 4))
        np.testing.assert_allclose(T.box_blur(image, 0), image)

    def test_noise_bounded(self, rng):
        image = rng.random((20, 20))
        out = T.add_gaussian_noise(image, 0.5, rng)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_noise_changes_image(self, rng):
        image = np.full((10, 10), 0.5)
        out = T.add_gaussian_noise(image, 0.1, rng)
        assert not np.allclose(out, image)

    def test_normalize(self):
        out = T.normalize(np.array([1.0, 3.0]), mean=1.0, std=2.0)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_normalize_invalid_std(self):
        with pytest.raises(ValueError):
            T.normalize(np.zeros(2), 0.0, 0.0)

    def test_center_in_canvas(self):
        small = np.ones((2, 2))
        out = T.center_in_canvas(small, (6, 6))
        assert out.sum() == 4
        np.testing.assert_allclose(out[2:4, 2:4], 1.0)

    def test_center_too_large_raises(self):
        with pytest.raises(ValueError):
            T.center_in_canvas(np.ones((7, 7)), (5, 5))
