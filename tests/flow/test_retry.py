"""Tests for retry policy, backoff determinism, timeouts, and the taxonomy."""

import pytest

from repro.flow import (
    ChaosInjected,
    ClockStall,
    CorruptCheckpointError,
    FatalError,
    FlakyCalls,
    FlowRunner,
    Pipeline,
    RetryPolicy,
    StepFailed,
    StepTimeout,
    TransientError,
    backoff_delay,
    classify_error,
)
from repro.obs import Telemetry
from repro.obs.clock import FakeClock


class TestClassifyError:
    def test_taxonomy_classes(self):
        assert classify_error(TransientError("x")) == "transient"
        assert classify_error(FatalError("x")) == "fatal"
        assert classify_error(CorruptCheckpointError("x")) == "corrupt"
        assert classify_error(StepTimeout("s", 2.0, 1.0)) == "transient"

    def test_resource_pressure_is_transient(self):
        assert classify_error(MemoryError()) == "transient"
        assert classify_error(OSError("disk")) == "transient"

    def test_unclassified_fatal_by_default(self):
        assert classify_error(ValueError("bug")) == "fatal"
        assert classify_error(ValueError("bug"), retry_unclassified=True) == "transient"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, jitter=0.2)
        delays = [backoff_delay(policy, "s", a, seed=7) for a in (1, 2, 3)]
        again = [backoff_delay(policy, "s", a, seed=7) for a in (1, 2, 3)]
        assert delays == again

    def test_backoff_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=9, base_delay_s=0.1, max_delay_s=0.4,
                             jitter=0.0)
        assert backoff_delay(policy, "s", 1, 0) == pytest.approx(0.1)
        assert backoff_delay(policy, "s", 2, 0) == pytest.approx(0.2)
        assert backoff_delay(policy, "s", 3, 0) == pytest.approx(0.4)
        assert backoff_delay(policy, "s", 6, 0) == pytest.approx(0.4)  # capped

    def test_jitter_band_and_keying(self):
        policy = RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter=0.2)
        delay = backoff_delay(policy, "s", 1, seed=0)
        assert 0.8 <= delay <= 1.2
        # Different step, attempt, or seed -> different draw.
        assert backoff_delay(policy, "t", 1, seed=0) != delay
        assert backoff_delay(policy, "s", 1, seed=1) != delay

    def test_attempt_validation(self):
        with pytest.raises(ValueError):
            backoff_delay(RetryPolicy(), "s", 0, 0)


def _single_step(fn, **step_kwargs):
    pipe = Pipeline("p")
    pipe.step("work", fn, **step_kwargs)
    return pipe


class TestRunnerRetries:
    def test_transient_blip_retried_to_success(self):
        clock = FakeClock()
        flaky = FlakyCalls(lambda: 42, fail_on={1, 2})
        telemetry = Telemetry()
        runner = FlowRunner(retry=RetryPolicy(max_attempts=3),
                            telemetry=telemetry, clock=clock, sleep=clock.sleep)
        result = runner.run(_single_step(flaky))
        assert result.output("work") == 42
        assert flaky.calls == 3
        assert result.steps["work"].attempts == 3
        retries = telemetry.registry.counter("flow_step_retries_total", step="work")
        assert retries.value == 2.0

    def test_retries_are_bounded(self):
        clock = FakeClock()
        flaky = FlakyCalls(lambda: 42, fail_on=range(1, 10 ** 9))
        runner = FlowRunner(retry=RetryPolicy(max_attempts=4),
                            clock=clock, sleep=clock.sleep)
        with pytest.raises(StepFailed) as excinfo:
            runner.run(_single_step(flaky))
        assert flaky.calls == 4  # never more than max_attempts
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.cause, ChaosInjected)

    def test_backoff_waits_match_schedule_exactly(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.05, jitter=0.2)
        flaky = FlakyCalls(lambda: 1, fail_on={1, 2})
        runner = FlowRunner(retry=policy, clock=clock, sleep=clock.sleep, seed=7)
        runner.run(_single_step(flaky))
        expected = (backoff_delay(policy, "work", 1, 7)
                    + backoff_delay(policy, "work", 2, 7))
        assert clock.now == pytest.approx(expected)

    def test_fatal_never_retried(self):
        flaky = FlakyCalls(lambda: 1, fail_on={1},
                           error=lambda n: FatalError("deterministic bug"))
        runner = FlowRunner(retry=RetryPolicy(max_attempts=5))
        with pytest.raises(StepFailed) as excinfo:
            runner.run(_single_step(flaky))
        assert flaky.calls == 1 and excinfo.value.attempts == 1

    def test_unclassified_fatal_unless_opted_in(self):
        flaky = FlakyCalls(lambda: 1, fail_on={1},
                           error=lambda n: ValueError("stray"))
        with pytest.raises(StepFailed):
            FlowRunner(retry=RetryPolicy(max_attempts=3)).run(_single_step(flaky))
        assert flaky.calls == 1

        clock = FakeClock()
        flaky2 = FlakyCalls(lambda: 1, fail_on={1},
                            error=lambda n: ValueError("stray"))
        runner = FlowRunner(
            retry=RetryPolicy(max_attempts=3, retry_unclassified=True),
            clock=clock, sleep=clock.sleep,
        )
        assert runner.run(_single_step(flaky2)).output("work") == 1
        assert flaky2.calls == 2

    def test_per_step_policy_overrides_default(self):
        clock = FakeClock()
        flaky = FlakyCalls(lambda: 1, fail_on={1})
        runner = FlowRunner(retry=RetryPolicy(max_attempts=1),
                            clock=clock, sleep=clock.sleep)
        pipe = _single_step(flaky, retry=RetryPolicy(max_attempts=2))
        assert runner.run(pipe).output("work") == 1


class TestTimeouts:
    def test_stalled_step_times_out_then_recovers(self):
        clock = FakeClock()
        # Stall 2s on every call against a 1s budget; fail the budget only
        # while the stall exceeds it — here: shrink the stall after 2 calls.
        stall = ClockStall(lambda: 5, clock, stall_s=2.0)
        calls = {"n": 0}

        def step():
            calls["n"] += 1
            if calls["n"] <= 2:
                return stall()
            return 5

        runner = FlowRunner(retry=RetryPolicy(max_attempts=3, jitter=0.0),
                            clock=clock, sleep=clock.sleep)
        result = runner.run(_single_step(step, timeout_s=1.0))
        assert result.output("work") == 5
        assert result.steps["work"].attempts == 3

    def test_persistent_stall_exhausts_attempts(self):
        clock = FakeClock()
        stalled = ClockStall(lambda: 5, clock, stall_s=2.0)
        runner = FlowRunner(retry=RetryPolicy(max_attempts=2, jitter=0.0),
                            clock=clock, sleep=clock.sleep)
        with pytest.raises(StepFailed) as excinfo:
            runner.run(_single_step(stalled, timeout_s=1.0))
        cause = excinfo.value.cause
        assert isinstance(cause, StepTimeout)
        assert cause.step == "work"
        assert cause.elapsed_s == pytest.approx(2.0)
        assert cause.timeout_s == pytest.approx(1.0)

    def test_fast_step_unaffected_by_timeout(self):
        clock = FakeClock()
        runner = FlowRunner(clock=clock, sleep=clock.sleep)
        result = runner.run(_single_step(lambda: 9, timeout_s=1.0))
        assert result.output("work") == 9
        assert result.steps["work"].attempts == 1
