"""Chaos harness: crash/resume, checkpoint rot, scheduled item faults.

These are the acceptance tests of the orchestration layer: every fault is
deterministic (call-scheduled or seed-scheduled), so each scenario replays
exactly.
"""

import numpy as np
import pytest

from repro.flow import (
    ChaosInjected,
    CheckpointStore,
    Failsink,
    FatalError,
    FlakyCalls,
    FlowRunner,
    Pipeline,
    StepFailed,
    corrupt_checkpoint,
    fault_schedule,
    faulty,
    truncate_checkpoint,
)
from repro.obs import Telemetry


def _logits_pipeline(calls=None):
    """Deterministic numeric DAG ending in a 'logits' array."""
    calls = calls if calls is not None else {}

    def counted(name, fn):
        def wrapper(*args):
            calls[name] = calls.get(name, 0) + 1
            return fn(*args)
        return wrapper

    def make_data():
        rng = np.random.default_rng(3)
        return rng.standard_normal((16, 8))

    def make_weights():
        rng = np.random.default_rng(4)
        return rng.standard_normal((8, 10))

    pipe = Pipeline("chaos/logits")
    pipe.step("data", counted("data", make_data), config={"seed": 3})
    pipe.step("weights", counted("weights", make_weights), config={"seed": 4})
    pipe.step("logits", counted("logits", lambda x, w: np.tanh(x @ w)),
              inputs=("data", "weights"), config={})
    pipe.step("metrics", counted("metrics", lambda z: {
        "mean": float(z.mean()), "argmax": int(z.argmax()),
    }), inputs=("logits",), config={})
    return pipe


class TestKillResume:
    def test_resume_after_crash_is_bit_exact(self, tmp_path):
        # Ground truth: one uninterrupted run (no checkpoints at all).
        uninterrupted = FlowRunner().run(_logits_pipeline())

        # Chaos arm: the same pipeline dies at step 3 ("logits").
        store = CheckpointStore(str(tmp_path))
        calls = {}
        crashing = _logits_pipeline(calls)
        crashing["logits"].fn = FlakyCalls(
            crashing["logits"].fn, fail_on={1},
            error=lambda n: FatalError("simulated crash"),
        )
        with pytest.raises(StepFailed) as excinfo:
            FlowRunner(store=store).run(crashing)
        assert excinfo.value.step == "logits"
        assert calls == {"data": 1, "weights": 1}  # steps 1..k completed

        # Resume: a fresh process would rebuild the pipeline and re-run.
        resumed = FlowRunner(store=store).run(_logits_pipeline(calls))
        # Steps 1..k were NOT re-executed...
        assert resumed.cached == ["data", "weights"]
        assert calls == {"data": 1, "weights": 1, "logits": 1, "metrics": 1}
        # ...and the outputs are bit-exact with the uninterrupted run.
        assert np.array_equal(resumed.output("logits"),
                              uninterrupted.output("logits"))
        assert resumed.output("metrics") == uninterrupted.output("metrics")

    def test_repeated_crashes_still_make_progress(self, tmp_path):
        # Every run dies on its SECOND uncached step: the first one
        # completes and checkpoints, so each crash-and-rerun cycle still
        # advances the frontier by one step.  Cached steps never call fn,
        # so the shared counter only sees real executions.
        store = CheckpointStore(str(tmp_path))

        def crashing_pipeline():
            executed = {"n": 0}
            pipe = _logits_pipeline()
            for step in pipe.steps:
                def wrapper(*args, original=step.fn):
                    executed["n"] += 1
                    if executed["n"] == 2:
                        raise FatalError("simulated kill")
                    return original(*args)
                step.fn = wrapper
            return pipe

        crashes = 0
        result = None
        for _ in range(10):
            try:
                result = FlowRunner(store=store).run(crashing_pipeline())
                break
            except StepFailed:
                crashes += 1
        assert result is not None
        # 4 steps, one new checkpoint per crash: exactly 3 crashes before
        # the run that starts at the final step (only 1 uncached left).
        assert crashes == 3
        truth = FlowRunner().run(_logits_pipeline())
        assert result.output("metrics") == truth.output("metrics")


class TestCheckpointRot:
    def _run_once(self, tmp_path, calls=None):
        store = CheckpointStore(str(tmp_path))
        result = FlowRunner(store=store).run(_logits_pipeline(calls))
        return store, result

    def test_corrupted_checkpoint_detected_and_recomputed(self, tmp_path):
        calls = {}
        store, first = self._run_once(tmp_path, calls)
        corrupt_checkpoint(store.path_for(first.steps["weights"].key))

        telemetry = Telemetry()
        rerun = FlowRunner(store=store, telemetry=telemetry).run(
            _logits_pipeline(calls))
        # Only the damaged step re-executed; the digest mismatch was
        # counted; downstream stayed cached (same recomputed digest).
        assert rerun.executed == ["weights"]
        assert sorted(rerun.cached) == ["data", "logits", "metrics"]
        assert calls["weights"] == 2 and calls["data"] == 1
        corrupt = telemetry.registry.counter(
            "flow_checkpoint_corrupt_total", step="weights")
        assert corrupt.value == 1.0
        assert np.array_equal(rerun.output("logits"), first.output("logits"))

    def test_truncated_checkpoint_detected(self, tmp_path):
        calls = {}
        store, first = self._run_once(tmp_path, calls)
        truncate_checkpoint(store.path_for(first.steps["data"].key))
        rerun = FlowRunner(store=store).run(_logits_pipeline(calls))
        assert "data" in rerun.executed
        assert np.array_equal(rerun.output("logits"), first.output("logits"))

    def test_corrupt_helper_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_checkpoint(str(path))

    def test_truncate_keep_bytes(self, tmp_path):
        path = tmp_path / "blob.ckpt"
        path.write_bytes(b"x" * 100)
        truncate_checkpoint(str(path), keep_bytes=10)
        assert path.stat().st_size == 10
        truncate_checkpoint(str(path))
        assert path.stat().st_size == 5


class TestScheduledItemFaults:
    def test_schedule_is_deterministic_and_sized(self):
        schedule = fault_schedule(30, 0.10, seed=5)
        assert schedule == fault_schedule(30, 0.10, seed=5)
        assert len(schedule) == 3
        assert all(0 <= i < 30 for i in schedule)
        assert fault_schedule(30, 0.10, seed=6) != schedule  # seed matters
        assert fault_schedule(30, 0.0, seed=5) == frozenset()
        with pytest.raises(ValueError):
            fault_schedule(30, 1.5, seed=5)

    def test_sweep_with_ten_percent_faults_fails_exactly_the_injected(self):
        n_items, fraction = 30, 0.10
        schedule = fault_schedule(n_items, fraction, seed=5)

        sink = Failsink()
        pipe = Pipeline("chaos/map")
        pipe.step("items", lambda: list(range(n_items)))
        pipe.step("apply", faulty(lambda item: item * item, schedule),
                  inputs=("items",), map_over=True,
                  item_seed=lambda index, item: 1000 + index)
        output = FlowRunner(failsink=sink).run(pipe).output("apply")

        # The failsink holds records for exactly the injected items.
        assert sorted(output.failed_indices) == sorted(schedule)
        assert sorted(r.index for r in sink.records) == sorted(schedule)
        assert all(r.error_type == "ChaosInjected" for r in sink.records)
        assert all(r.seed == 1000 + r.index for r in sink.records)
        # Every non-injected item completed, correctly.
        assert output.indices == [i for i in range(n_items) if i not in schedule]
        assert output.results == [i * i for i in output.indices]

    def test_faulty_wrapper_counts_ordinals_not_values(self):
        wrapped = faulty(lambda item: item, {1})
        assert wrapped("a") == "a"
        with pytest.raises(ChaosInjected):
            wrapped("b")
        assert wrapped("c") == "c"


class TestQuantizationPipelineResume:
    """The real workload: kill the paper pipeline mid-run, resume bit-exact."""

    def test_kill_after_training_resumes_without_retraining(self, tmp_path):
        from repro.core.pipeline import PipelineConfig, QuantizationPipeline
        from repro.datasets.mnist_like import generate_mnist_like

        train = generate_mnist_like(160, seed=0)
        test = generate_mnist_like(80, seed=1)
        quant = QuantizationPipeline(
            PipelineConfig(signal_bits=4, weight_bits=4, epochs=1, seed=0))

        # Ground truth: uninterrupted, uncheckpointed run.
        truth = quant.run("lenet", train, test, model_name="lenet")

        # Chaos arm: crash right after both trainings completed.
        store = CheckpointStore(str(tmp_path))
        crashing = quant.build_pipeline("lenet", train, test, model_name="lenet")
        crashing["deploy_without"].fn = FlakyCalls(
            crashing["deploy_without"].fn, fail_on={1},
            error=lambda n: FatalError("simulated kill"),
        )
        with pytest.raises(StepFailed):
            FlowRunner(store=store).run(crashing)

        # Resume: both trainings (the expensive steps) come from disk.
        fresh = quant.build_pipeline("lenet", train, test, model_name="lenet")
        trained = {"n": 0}
        for name in ("train_baseline", "train_proposed"):
            original = fresh[name].fn

            def counting(original=original):
                trained["n"] += 1
                return original()

            fresh[name].fn = counting
        result = FlowRunner(store=store).run(fresh)
        assert trained["n"] == 0
        assert {"train_baseline", "train_proposed"} <= set(result.cached)

        report = quant.report_from(result, "lenet")
        # Bit-exact equality, not approx: resume must change nothing.
        assert report.ideal_accuracy == truth.ideal_accuracy
        assert report.without_accuracy == truth.without_accuracy
        assert report.with_accuracy == truth.with_accuracy
        assert report.proposed_fp32_accuracy == truth.proposed_fp32_accuracy
