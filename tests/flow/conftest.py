"""Flow-test fixtures: every test here gets the resource-leak guard.

Pipeline-runner tests exercise retries, failsinks, and chaos schedules
that spin up worker threads; the autouse guard pins responsibility for
any thread or process that outlives its test on the test that made it.
"""

import pytest

from tests.conftest import leak_guard


@pytest.fixture(autouse=True)
def no_leaked_serving_resources():
    """Fail the test if it leaks shm segments, threads, or processes."""
    yield from leak_guard()
