"""Tests for the DAG runner: structure, checkpointing, map steps."""

import numpy as np
import pytest

from repro.flow import (
    CheckpointStore,
    Failsink,
    FatalError,
    FlowRunner,
    MapOutput,
    Pipeline,
    Step,
    StepFailed,
    canonical_config,
    step_key,
)
from repro.obs import Telemetry


def _linear_pipeline(calls=None):
    """a -> b -> c over small ints; ``calls`` counts real executions."""
    calls = calls if calls is not None else {}

    def counted(name, fn):
        def wrapper(*args):
            calls[name] = calls.get(name, 0) + 1
            return fn(*args)
        return wrapper

    pipe = Pipeline("test/linear")
    pipe.step("a", counted("a", lambda: 2), config={"v": 2})
    pipe.step("b", counted("b", lambda x: x * 10), inputs=("a",), config={})
    pipe.step("c", counted("c", lambda x: x + 1), inputs=("b",), config={})
    return pipe


class TestPipelineStructure:
    def test_insertion_order_is_topological(self):
        pipe = _linear_pipeline()
        assert [s.name for s in pipe.steps] == ["a", "b", "c"]
        assert "b" in pipe and len(pipe) == 3
        assert pipe["b"].inputs == ("a",)

    def test_duplicate_name_rejected(self):
        pipe = Pipeline("p")
        pipe.step("a", lambda: 1)
        with pytest.raises(ValueError, match="duplicate"):
            pipe.step("a", lambda: 2)

    def test_unknown_input_rejected(self):
        pipe = Pipeline("p")
        with pytest.raises(ValueError, match="unknown step"):
            pipe.step("b", lambda x: x, inputs=("a",))

    def test_cycles_unrepresentable(self):
        # A step cannot name itself: it is not added yet when validated.
        pipe = Pipeline("p")
        with pytest.raises(ValueError, match="unknown step"):
            pipe.step("a", lambda x: x, inputs=("a",))

    def test_step_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            Step(name="", fn=lambda: 1)
        with pytest.raises(ValueError, match="at least one input"):
            Step(name="m", fn=lambda x: x, map_over=True)
        with pytest.raises(ValueError, match="on_item_error"):
            Step(name="m", fn=lambda x: x, inputs=("a",), map_over=True,
                 on_item_error="explode")


class TestStepKey:
    def test_deterministic(self):
        key = step_key("s", {"a": 1, "b": [2, 3]}, {"up": "d" * 64})
        assert key == step_key("s", {"b": [2, 3], "a": 1}, {"up": "d" * 64})
        assert len(key) == 24

    def test_sensitive_to_all_parts(self):
        base = step_key("s", {"a": 1}, {"up": "d" * 64})
        assert step_key("t", {"a": 1}, {"up": "d" * 64}) != base
        assert step_key("s", {"a": 2}, {"up": "d" * 64}) != base
        assert step_key("s", {"a": 1}, {"up": "e" * 64}) != base
        assert step_key("s", {"a": 1}, {}) != base

    def test_upstream_order_irrelevant(self):
        digests = {"x": "1" * 64, "y": "2" * 64}
        flipped = dict(reversed(list(digests.items())))
        assert step_key("s", {}, digests) == step_key("s", {}, flipped)

    def test_canonical_config_handles_non_json(self):
        text = canonical_config({"arr": np.arange(3), "f": 1.5})
        assert "arr" in text and canonical_config({"f": 1.5, "arr": np.arange(3)}) == text


class TestEphemeralRun:
    def test_values_flow_through_dag(self):
        result = FlowRunner().run(_linear_pipeline())
        assert result.output("c") == 21
        assert result.executed == ["a", "b", "c"]
        assert result.cached == []

    def test_no_store_never_caches(self):
        runner = FlowRunner()
        calls = {}
        pipe = _linear_pipeline(calls)
        runner.run(pipe)
        runner.run(pipe)
        assert calls == {"a": 2, "b": 2, "c": 2}

    def test_fan_in(self):
        pipe = Pipeline("p")
        pipe.step("x", lambda: 3)
        pipe.step("y", lambda: 4)
        pipe.step("sum", lambda a, b: a + b, inputs=("x", "y"))
        assert FlowRunner().run(pipe).output("sum") == 7


class TestResume:
    def test_second_run_fully_cached(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        calls = {}
        first = FlowRunner(store=store).run(_linear_pipeline(calls))
        second = FlowRunner(store=store).run(_linear_pipeline(calls))
        assert first.output("c") == second.output("c") == 21
        assert second.cached == ["a", "b", "c"]
        assert calls == {"a": 1, "b": 1, "c": 1}

    def test_no_resume_reexecutes(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        calls = {}
        FlowRunner(store=store).run(_linear_pipeline(calls))
        FlowRunner(store=store).run(_linear_pipeline(calls), resume=False)
        assert calls == {"a": 2, "b": 2, "c": 2}

    def test_config_change_invalidates_step_and_downstream(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        calls = {}
        FlowRunner(store=store).run(_linear_pipeline(calls))

        changed = {}
        pipe = Pipeline("test/linear")
        pipe.step("a", lambda: (changed.setdefault("a", 0), 5)[1], config={"v": 5})
        pipe.step("b", lambda x: x * 10, inputs=("a",), config={})
        pipe.step("c", lambda x: x + 1, inputs=("b",), config={})
        result = FlowRunner(store=store).run(pipe)
        # New config for "a" -> new key -> new output digest -> b and c
        # recompute too (their keys depend on upstream digests).
        assert result.executed == ["a", "b", "c"]
        assert result.output("c") == 51

    def test_force_all(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        calls = {}
        FlowRunner(store=store).run(_linear_pipeline(calls))
        FlowRunner(store=store).run(_linear_pipeline(calls), force=True)
        assert calls == {"a": 2, "b": 2, "c": 2}

    def test_force_selective_same_output_keeps_downstream(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        calls = {}
        FlowRunner(store=store).run(_linear_pipeline(calls))
        result = FlowRunner(store=store).run(_linear_pipeline(calls), force={"b"})
        # b re-executes, but its output (and digest) is unchanged, so c's
        # key is unchanged and c stays cached.
        assert calls == {"a": 1, "b": 2, "c": 1}
        assert result.cached == ["a", "c"]
        assert result.executed == ["b"]

    def test_failed_run_keeps_completed_checkpoints(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        calls = {}
        pipe = _linear_pipeline(calls)
        original_c = pipe["c"].fn

        def boom(x):
            raise FatalError("chaos")

        pipe["c"].fn = boom
        with pytest.raises(StepFailed) as excinfo:
            FlowRunner(store=store).run(pipe)
        assert excinfo.value.step == "c"

        pipe["c"].fn = original_c
        result = FlowRunner(store=store).run(pipe)
        assert result.cached == ["a", "b"]
        assert result.output("c") == 21
        assert calls == {"a": 1, "b": 1, "c": 1}


class TestMapSteps:
    def _map_pipeline(self, fn):
        pipe = Pipeline("p")
        pipe.step("items", lambda: [1, 2, 3, 4])
        pipe.step("scale", lambda: 10)
        pipe.step("apply", fn, inputs=("items", "scale"), map_over=True,
                  item_seed=lambda index, item: 100 + index)
        return pipe

    def test_map_applies_per_item_with_extra_inputs(self):
        result = FlowRunner().run(self._map_pipeline(lambda item, scale: item * scale))
        output = result.output("apply")
        assert isinstance(output, MapOutput)
        assert output.results == [10, 20, 30, 40]
        assert output.indices == [0, 1, 2, 3]
        assert output.failed_indices == [] and output.n_items == 4

    def test_item_failures_routed_to_failsink(self):
        def sometimes(item, scale):
            if item % 2 == 0:
                raise ValueError(f"bad item {item}")
            return item * scale

        sink = Failsink()
        telemetry = Telemetry()
        runner = FlowRunner(failsink=sink, telemetry=telemetry)
        output = runner.run(self._map_pipeline(sometimes)).output("apply")
        assert output.results == [10, 30]
        assert output.failed_indices == [1, 3]
        assert len(sink) == 2 and sink.count_for("apply") == 2
        record = sink.records[0]
        assert record.error_type == "ValueError" and record.seed == 101
        assert "bad item 2" in record.message and "ValueError" in record.traceback
        counter = telemetry.registry.counter("flow_failsink_records_total", step="apply")
        assert counter.value == 2.0
        assert telemetry.registry.gauge("flow_failsink_size").value == 2.0

    def test_on_item_error_raise_is_strict(self):
        def boom(item, scale):
            raise ValueError("nope")

        pipe = self._map_pipeline(boom)
        pipe["apply"].on_item_error = "raise"
        with pytest.raises(StepFailed) as excinfo:
            FlowRunner().run(pipe)
        assert isinstance(excinfo.value.cause, ValueError)

    def test_map_output_checkpoints_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        fn = lambda item, scale: item * scale  # noqa: E731
        first = FlowRunner(store=store).run(self._map_pipeline(fn))
        second = FlowRunner(store=store).run(self._map_pipeline(fn))
        assert second.cached == ["items", "scale", "apply"]
        assert second.output("apply").results == first.output("apply").results


class TestTelemetry:
    def test_step_status_counters(self, tmp_path):
        telemetry = Telemetry()
        store = CheckpointStore(str(tmp_path))
        runner = FlowRunner(store=store, telemetry=telemetry)
        runner.run(_linear_pipeline())
        runner.run(_linear_pipeline())
        registry = telemetry.registry
        assert registry.counter("flow_steps_total", status="executed").value == 3.0
        assert registry.counter("flow_steps_total", status="cached").value == 3.0
