"""Tests for failsink records and the JSONL mirror."""

import json

from repro.flow import Failsink, FailsinkRecord, run_map


def _boom(item):
    raise RuntimeError(f"bad {item}")


class TestFailsinkRecord:
    def test_to_json_roundtrips(self):
        record = FailsinkRecord(step="s", index=3, item="'x'",
                                error_type="ValueError", message="m",
                                traceback="tb", seed=17)
        parsed = json.loads(record.to_json())
        assert parsed == {"step": "s", "index": 3, "item": "'x'",
                          "error_type": "ValueError", "message": "m",
                          "traceback": "tb", "seed": 17}


class TestFailsink:
    def test_record_captures_everything(self):
        sink = Failsink()
        try:
            _boom("die-4")
        except RuntimeError as error:
            entry = sink.record("study", 4, "die-4", error, seed=42)
        assert entry.step == "study" and entry.index == 4
        assert entry.item == "'die-4'" and entry.seed == 42
        assert entry.error_type == "RuntimeError"
        assert "bad die-4" in entry.message
        assert "_boom" in entry.traceback
        assert len(sink) == 1 and sink.count_for("study") == 1
        assert sink.count_for("other") == 0

    def test_jsonl_mirror_flushed_per_record(self, tmp_path):
        path = tmp_path / "failsink.jsonl"
        with Failsink(path=str(path)) as sink:
            for i in range(3):
                try:
                    _boom(i)
                except RuntimeError as error:
                    sink.record("s", i, i, error, seed=i)
            # Flushed immediately: readable before close.
            lines = path.read_text().splitlines()
            assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [p["index"] for p in parsed] == [0, 1, 2]
        assert [p["seed"] for p in parsed] == [0, 1, 2]

    def test_summary(self):
        sink = Failsink()
        assert sink.summary() == "failsink: empty"
        error = ValueError("x")
        sink.record("a", 0, 0, error)
        sink.record("a", 1, 1, error)
        sink.record("b", 0, 0, error)
        assert sink.summary() == "failsink: 3 record(s) (a: 2, b: 1)"

    def test_close_idempotent(self, tmp_path):
        sink = Failsink(path=str(tmp_path / "f.jsonl"))
        sink.record("s", 0, 0, ValueError("x"))
        sink.close()
        sink.close()


class TestRunMap:
    def test_strict_mode_propagates(self):
        try:
            run_map(_boom, [1], on_error="raise")
        except RuntimeError as error:
            assert "bad 1" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected RuntimeError")

    def test_invalid_on_error(self):
        try:
            run_map(lambda x: x, [1], on_error="explode")
        except ValueError as error:
            assert "on_error" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_partial_failure_keeps_alignment(self):
        output = run_map(lambda x: 1 // x, [2, 0, 4], step="div")
        assert output.results == [0, 0]
        assert output.indices == [0, 2]
        assert output.failed_indices == [1]
        assert output.n_items == 3
