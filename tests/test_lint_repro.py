"""Tests for the repo-invariant AST lint (tools/lint_repro.py)."""

import importlib.util
import textwrap
from pathlib import Path

_TOOL = Path(__file__).resolve().parents[1] / "tools" / "lint_repro.py"
_spec = importlib.util.spec_from_file_location("lint_repro", _TOOL)
lint_repro = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_repro)


def _write(path: Path, source: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _rules(findings):
    return [f.rule for f in findings]


class TestGlobalRandomRule:
    def test_global_state_call_is_rl001(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            x = np.random.normal(0, 1, size=3)
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL001"]
        assert "np.random.normal" in findings[0].message

    def test_seed_call_is_rl001(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy
            numpy.random.seed(0)
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL001"]

    def test_generator_usage_is_clean(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.normal(0, 1, size=3)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_seeding_module_is_exempt(self, tmp_path):
        f = _write(tmp_path / "snc" / "seeding.py", """
            import numpy as np
            np.random.seed(0)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_unrelated_random_attribute_is_clean(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np

            class Box:
                pass

            box = Box()
            box.random = lambda: 0.5
            y = box.random()
        """)
        assert lint_repro.lint_paths([f]) == []


class TestStepAllocationRule:
    def test_allocation_in_step_run_is_rl002(self, tmp_path):
        f = _write(tmp_path / "runtime" / "plan.py", """
            import numpy as np

            class GemmStep:
                def run(self, pool):
                    scratch = np.zeros((4, 4))
                    return scratch
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL002"]
        assert "GemmStep.run" in findings[0].message

    def test_asarray_in_step_run_is_allowed(self, tmp_path):
        f = _write(tmp_path / "runtime" / "plan.py", """
            import numpy as np

            class CastStep:
                def run(self, x):
                    return np.asarray(x, dtype=np.float32)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_allocation_outside_run_is_allowed(self, tmp_path):
        f = _write(tmp_path / "runtime" / "plan.py", """
            import numpy as np

            class GemmStep:
                def __init__(self):
                    self.scratch = np.zeros((4, 4))
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_rule_only_applies_to_plan_module(self, tmp_path):
        f = _write(tmp_path / "other.py", """
            import numpy as np

            class GemmStep:
                def run(self):
                    return np.zeros(3)
        """)
        assert lint_repro.lint_paths([f]) == []


class TestDocstringRule:
    def _package(self, tmp_path):
        _write(tmp_path / "repro" / "__init__.py",
               "from repro.util import documented, naked\n")
        return _write(tmp_path / "repro" / "util.py", """
            def documented():
                '''Has one.'''

            def naked():
                return 1

            def _private_needs_none():
                return 2
        """)

    def test_missing_docstring_is_rl003(self, tmp_path):
        self._package(tmp_path)
        findings = lint_repro.lint_paths([tmp_path])
        assert _rules(findings) == ["RL003"]
        assert "naked" in findings[0].message

    def test_unexported_module_is_exempt(self, tmp_path):
        _write(tmp_path / "repro" / "__init__.py", "")
        _write(tmp_path / "repro" / "util.py", """
            def naked():
                return 1
        """)
        assert lint_repro.lint_paths([tmp_path]) == []


class TestSuppression:
    def test_inline_ignore_silences_the_line(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            x = np.random.normal()  # lint: ignore[RL001]
            y = np.random.uniform()
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL001"]
        assert findings[0].line == 4

    def test_ignore_must_name_the_right_rule(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            x = np.random.normal()  # lint: ignore[RL002]
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL001"]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path / "ok.py", "import numpy as np\n")
        assert lint_repro.main([str(tmp_path)]) == 0

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        _write(tmp_path / "bad.py",
               "import numpy as np\nnp.random.seed(0)\n")
        assert lint_repro.main([str(tmp_path)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_repo_source_tree_is_clean(self):
        repo_src = Path(__file__).resolve().parents[1] / "src"
        assert lint_repro.lint_paths([repo_src]) == []


class TestRuleTable:
    def test_rules_documented(self):
        doc = _TOOL.read_text()
        for rule in lint_repro.RULES:
            assert rule in doc
