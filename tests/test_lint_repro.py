"""Tests for the repo-invariant AST lint (tools/lint_repro.py)."""

import importlib.util
import textwrap
from pathlib import Path

_TOOL = Path(__file__).resolve().parents[1] / "tools" / "lint_repro.py"
_spec = importlib.util.spec_from_file_location("lint_repro", _TOOL)
lint_repro = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint_repro)


def _write(path: Path, source: str) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def _rules(findings):
    return [f.rule for f in findings]


class TestGlobalRandomRule:
    def test_global_state_call_is_rl001(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            x = np.random.normal(0, 1, size=3)
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL001"]
        assert "np.random.normal" in findings[0].message

    def test_seed_call_is_rl001(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy
            numpy.random.seed(0)
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL001"]

    def test_generator_usage_is_clean(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.normal(0, 1, size=3)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_seeding_module_is_exempt(self, tmp_path):
        f = _write(tmp_path / "snc" / "seeding.py", """
            import numpy as np
            np.random.seed(0)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_unrelated_random_attribute_is_clean(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np

            class Box:
                pass

            box = Box()
            box.random = lambda: 0.5
            y = box.random()
        """)
        assert lint_repro.lint_paths([f]) == []


class TestStepAllocationRule:
    def test_allocation_in_step_run_is_rl002(self, tmp_path):
        f = _write(tmp_path / "runtime" / "plan.py", """
            import numpy as np

            class GemmStep:
                def run(self, pool):
                    scratch = np.zeros((4, 4))
                    return scratch
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL002"]
        assert "GemmStep.run" in findings[0].message

    def test_asarray_in_step_run_is_allowed(self, tmp_path):
        f = _write(tmp_path / "runtime" / "plan.py", """
            import numpy as np

            class CastStep:
                def run(self, x):
                    return np.asarray(x, dtype=np.float32)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_allocation_outside_run_is_allowed(self, tmp_path):
        f = _write(tmp_path / "runtime" / "plan.py", """
            import numpy as np

            class GemmStep:
                def __init__(self):
                    self.scratch = np.zeros((4, 4))
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_rule_only_applies_to_plan_module(self, tmp_path):
        f = _write(tmp_path / "other.py", """
            import numpy as np

            class GemmStep:
                def run(self):
                    return np.zeros(3)
        """)
        assert lint_repro.lint_paths([f]) == []


class TestDocstringRule:
    def _package(self, tmp_path):
        _write(tmp_path / "repro" / "__init__.py",
               "from repro.util import documented, naked\n")
        return _write(tmp_path / "repro" / "util.py", """
            def documented():
                '''Has one.'''

            def naked():
                return 1

            def _private_needs_none():
                return 2
        """)

    def test_missing_docstring_is_rl003(self, tmp_path):
        self._package(tmp_path)
        findings = lint_repro.lint_paths([tmp_path])
        assert _rules(findings) == ["RL003"]
        assert "naked" in findings[0].message

    def test_unexported_module_is_exempt(self, tmp_path):
        _write(tmp_path / "repro" / "__init__.py", "")
        _write(tmp_path / "repro" / "util.py", """
            def naked():
                return 1
        """)
        assert lint_repro.lint_paths([tmp_path]) == []


class TestSuppression:
    def test_inline_ignore_silences_the_line(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            x = np.random.normal()  # lint: ignore[RL001]
            y = np.random.uniform()
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL001"]
        assert findings[0].line == 4

    def test_ignore_must_name_the_right_rule(self, tmp_path):
        f = _write(tmp_path / "mod.py", """
            import numpy as np
            x = np.random.normal()  # lint: ignore[RL002]
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL001"]


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path / "ok.py", "import numpy as np\n")
        assert lint_repro.main([str(tmp_path)]) == 0

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        _write(tmp_path / "bad.py",
               "import numpy as np\nnp.random.seed(0)\n")
        assert lint_repro.main([str(tmp_path)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_repo_source_tree_is_clean(self):
        repo_src = Path(__file__).resolve().parents[1] / "src"
        assert lint_repro.lint_paths([repo_src]) == []


class TestRuleTable:
    def test_rules_documented(self):
        doc = _TOOL.read_text()
        for rule in lint_repro.RULES:
            assert rule in doc


class TestBoundedQueueRule:
    def test_unbounded_stdlib_queue_is_rl004(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import queue
            q = queue.Queue()
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL004"]
        assert "maxsize" in findings[0].message

    def test_zero_maxsize_still_flagged(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import queue
            q = queue.Queue(maxsize=0)
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL004"]

    def test_bounded_queue_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import queue
            q = queue.Queue(maxsize=64)
            p = queue.PriorityQueue(128)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_simple_queue_always_flagged(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import queue
            q = queue.SimpleQueue()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL004"]

    def test_deque_without_maxlen_is_rl004(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            from collections import deque
            buffer = deque()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL004"]

    def test_deque_with_maxlen_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            from collections import deque
            buffer = deque(maxlen=100)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_self_append_without_bound_is_rl004(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            class Collector:
                def __init__(self):
                    self.items = []

                def push(self, item):
                    self.items.append(item)
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL004"]
        assert "Collector" in findings[0].message

    def test_self_append_with_declared_bound_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            class Bounded:
                def __init__(self, max_items):
                    self.max_items = max_items
                    self.items = []

                def push(self, item):
                    if len(self.items) >= self.max_items:
                        raise OverflowError("full")
                    self.items.append(item)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_local_list_append_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            class Stateless:
                def collect(self, xs):
                    out = []
                    for x in xs:
                        out.append(x)
                    return out
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_rule_only_applies_inside_serve(self, tmp_path):
        f = _write(tmp_path / "repro" / "runtime" / "mod.py", """
            import queue
            q = queue.Queue()
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_suppression_comment_works(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import queue
            q = queue.Queue()  # lint: ignore[RL004]
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_actual_serve_package_is_clean(self):
        serve_dir = Path(_TOOL).parents[1] / "src" / "repro" / "serve"
        findings = [
            f for f in lint_repro.lint_paths([serve_dir]) if f.rule == "RL004"
        ]
        assert findings == []


class TestInjectedClockRule:
    def test_direct_clock_call_in_serve_is_rl005(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import time
            start = time.perf_counter()
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL005"]
        assert "time.perf_counter" in findings[0].message

    def test_from_import_alias_is_caught(self, tmp_path):
        f = _write(tmp_path / "repro" / "obs" / "mod.py", """
            from time import monotonic as now
            t = now()
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL005"]
        assert "time.monotonic" in findings[0].message

    def test_ns_variants_are_caught(self, tmp_path):
        f = _write(tmp_path / "repro" / "runtime" / "engine.py", """
            import time
            t = time.monotonic_ns()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL005"]

    def test_clock_reference_as_default_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "runtime" / "guard.py", """
            import time

            def probe(clock=time.monotonic):
                return clock()
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_sleep_is_not_a_clock_read(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import time
            time.sleep(0.01)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_obs_clock_module_is_exempt(self, tmp_path):
        f = _write(tmp_path / "repro" / "obs" / "clock.py", """
            import time
            t = time.monotonic()
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_loadgen_measurement_client_is_exempt(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "loadgen.py", """
            import time
            t = time.perf_counter()
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_uncovered_module_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "training" / "loop.py", """
            import time
            t = time.perf_counter()
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_suppression_comment_works(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import time
            t = time.time()  # lint: ignore[RL005]
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_actual_hot_paths_are_clean(self):
        src = Path(_TOOL).parents[1] / "src"
        findings = [
            f for f in lint_repro.lint_paths([src]) if f.rule == "RL005"
        ]
        assert findings == []


class TestExceptionHygieneRule:
    def test_bare_except_in_flow_is_rl006(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            def load():
                try:
                    return open("x")
                except:
                    return None
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL006"]
        assert "bare `except:`" in findings[0].message

    def test_silent_pass_handler_in_serve_is_rl006(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            def submit(queue, item):
                try:
                    queue.put(item)
                except ValueError:
                    pass
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL006"]
        assert "swallows" in findings[0].message

    def test_ellipsis_handler_in_runtime_is_rl006(self, tmp_path):
        f = _write(tmp_path / "repro" / "runtime" / "mod.py", """
            def replay(plan):
                try:
                    plan.run()
                except RuntimeError:
                    ...
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL006"]

    def test_handler_that_records_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            def apply(fn, item, sink):
                try:
                    return fn(item)
                except ValueError as error:
                    sink.record("apply", 0, item, error)
                    return None
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_handler_that_reraises_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            def apply(fn):
                try:
                    return fn()
                except (KeyboardInterrupt, SystemExit):
                    raise
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_rule_only_applies_to_strict_dirs(self, tmp_path):
        f = _write(tmp_path / "repro" / "analysis" / "mod.py", """
            def probe():
                try:
                    return 1
                except Exception:
                    pass
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_suppression_comment_works(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            def probe():
                try:
                    return 1
                except Exception:  # lint: ignore[RL006]
                    pass
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_flow_package_is_clean(self):
        flow = Path(__file__).resolve().parents[1] / "src" / "repro" / "flow"
        findings = [f for f in lint_repro.lint_paths([flow])
                    if f.rule == "RL006"]
        assert findings == []


class TestEventModuleCoverage:
    """PR 9: RL005/RL006 extend over serve/stream.py and the event modules."""

    def test_clock_call_in_stream_module_is_rl005(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "stream.py", """
            import time

            def sweep():
                return time.monotonic()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL005"]

    def test_clock_call_in_event_dataset_is_rl005(self, tmp_path):
        f = _write(tmp_path / "repro" / "datasets" / "event_stream.py", """
            import time

            def stamp():
                return time.time_ns()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL005"]

    def test_clock_call_in_temporal_module_is_rl005(self, tmp_path):
        f = _write(tmp_path / "repro" / "snc" / "temporal.py", """
            from time import perf_counter

            def bin_windows():
                return perf_counter()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL005"]

    def test_bare_except_in_nir_module_is_rl006(self, tmp_path):
        f = _write(tmp_path / "repro" / "snc" / "nir.py", """
            def load(path):
                try:
                    return open(path)
                except:
                    return None
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL006"]
        assert "bare `except:`" in findings[0].message

    def test_silent_handler_in_event_dataset_is_rl006(self, tmp_path):
        f = _write(tmp_path / "repro" / "datasets" / "event_stream.py", """
            def read(archive, key):
                try:
                    return archive[key]
                except KeyError:
                    pass
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL006"]

    def test_other_snc_modules_stay_uncovered(self, tmp_path):
        f = _write(tmp_path / "repro" / "snc" / "mapping.py", """
            import time

            def measure():
                try:
                    return time.monotonic()
                except OSError:
                    pass
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_actual_event_modules_are_clean(self):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        targets = [
            src / "datasets" / "event_stream.py",
            src / "snc" / "temporal.py",
            src / "snc" / "nir.py",
            src / "serve" / "stream.py",
        ]
        findings = [f for f in lint_repro.lint_paths(targets)
                    if f.rule in ("RL005", "RL006")]
        assert findings == []


class TestFlowClockCoverage:
    def test_direct_clock_call_in_flow_is_rl005(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            import time

            def wait():
                return time.monotonic()
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL005"]

    def test_clock_reference_in_flow_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            import time

            def runner(clock=time.monotonic):
                return clock()
        """)
        assert lint_repro.lint_paths([f]) == []


class TestLockDisciplineRule:
    def test_unlocked_assignment_is_rl007(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def infer(self):
                    self.counters = {}
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL007"]
        assert "_lock" in findings[0].message

    def test_locked_mutation_is_clean(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def infer(self):
                    with self._lock:
                        self.counters = {}
                        self.health_log.append(1)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_unlocked_mutator_call_is_rl007(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def record(self):
                    self.health_log.append(1)
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL007"]

    def test_unlocked_augmented_assignment_is_rl007(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def bump(self):
                    self.counters.requests_total += 1
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL007"]

    def test_mutation_in_branch_under_lock_is_clean(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def infer(self):
                    with self._lock:
                        if self.ready:
                            self.last_report = None
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_mutation_in_branch_outside_lock_is_rl007(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def infer(self):
                    if self.ready:
                        self.last_report = None
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL007"]

    def test_init_is_exempt(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def __init__(self):
                    self.counters = {}
                    self.health_log = []
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_locked_suffix_helper_is_exempt(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def _serve_locked(self):
                    self.counters.requests_software += 1
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_wrong_lock_does_not_satisfy_contract(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def infer(self):
                    with self._other_lock:
                        self.counters = {}
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL007"]

    def test_unrelated_attribute_is_clean(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def configure(self):
                    self.config = {}
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_pool_contract_unlocked_threads_is_rl007(self, tmp_path):
        f = _write(tmp_path / "serve" / "pool.py", """
            class Pool:
                max_workers = 4

                def close(self):
                    self._threads = []
                    self._started = False
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL007", "RL007"]

    def test_pool_contract_locked_lifecycle_is_clean(self, tmp_path):
        f = _write(tmp_path / "serve" / "pool.py", """
            class Pool:
                max_workers = 4

                def close(self):
                    with self._lifecycle_lock:
                        self._threads = []
                        self._started = False
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_rule_only_applies_to_contract_files(self, tmp_path):
        f = _write(tmp_path / "runtime" / "engine.py", """
            class Engine:
                def run(self):
                    self.counters = {}
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_suppression_comment_works(self, tmp_path):
        f = _write(tmp_path / "runtime" / "guard.py", """
            class Guard:
                def infer(self):
                    self.counters = {}  # lint: ignore[RL007]
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_actual_contract_files_are_clean(self):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        targets = [src / "runtime" / "guard.py", src / "serve" / "pool.py",
                   src / "serve" / "procpool.py"]
        findings = [f for f in lint_repro.lint_paths(targets)
                    if f.rule == "RL007"]
        assert findings == []

    def test_procpool_contract_unlocked_workers_is_rl007(self, tmp_path):
        f = _write(tmp_path / "serve" / "procpool.py", """
            class Pool:
                def close(self):
                    self._workers = []
                    self._closed = True
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL007", "RL007"]


class TestShmExclusivityRule:
    """PR 10: RL008 — shared-memory segments only through serve/shm.py."""

    def test_shared_memory_import_is_rl008(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            from multiprocessing import shared_memory
        """)
        findings = lint_repro.lint_paths([f])
        assert _rules(findings) == ["RL008"]
        assert "serve/shm.py" in findings[0].message

    def test_submodule_import_is_rl008(self, tmp_path):
        f = _write(tmp_path / "repro" / "runtime" / "mod.py", """
            import multiprocessing.shared_memory
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL008"]

    def test_from_submodule_import_is_rl008(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            from multiprocessing.shared_memory import SharedMemory
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL008"]

    def test_constructor_call_is_rl008(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import multiprocessing as mp


            def grab(name):
                return mp.shared_memory.SharedMemory(name=name)
        """)
        findings = lint_repro.lint_paths([f])
        # Both the submodule reach-through and the constructor call flag.
        assert "RL008" in _rules(lint_repro.lint_paths([f]))
        assert all(r == "RL008" for r in _rules(findings))

    def test_shareable_list_is_rl008(self, tmp_path):
        f = _write(tmp_path / "repro" / "flow" / "mod.py", """
            def stash(values):
                return ShareableList(values)
        """)
        assert _rules(lint_repro.lint_paths([f])) == ["RL008"]

    def test_shm_module_is_exempt(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "shm.py", """
            from multiprocessing import shared_memory

            def make(nbytes):
                return shared_memory.SharedMemory(create=True, size=nbytes)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_plain_multiprocessing_use_is_clean(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            import multiprocessing as mp

            def spawn(target):
                return mp.get_context("spawn").Process(target=target)
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_suppression_comment_works(self, tmp_path):
        f = _write(tmp_path / "repro" / "serve" / "mod.py", """
            from multiprocessing import shared_memory  # lint: ignore[RL008]
        """)
        assert lint_repro.lint_paths([f]) == []

    def test_actual_source_tree_has_no_rl008(self):
        src = Path(__file__).resolve().parents[1] / "src"
        findings = [f for f in lint_repro.lint_paths([src])
                    if f.rule == "RL008"]
        assert findings == []
