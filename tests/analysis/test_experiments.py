"""Integration tests for the experiment orchestration (fast settings).

These exercise every table/figure generator end-to-end at miniature scale
(LeNet only where training is needed); the full-scale runs live in
benchmarks/.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    FAST_SETTINGS,
    ExperimentSettings,
    ModelCache,
    fig1a_speed_vs_precision,
    fig1b_accuracy_loss,
    fig3_regularizer_forms,
    fig4_signal_distributions,
    table1_ideal_accuracy,
    table2_neuron_convergence,
    table3_weight_clustering,
    table4_combined,
    table5_system,
)


@pytest.fixture(scope="module")
def settings(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("bench_cache"))
    return ExperimentSettings(
        train_size=FAST_SETTINGS.train_size,
        test_size=FAST_SETTINGS.test_size,
        widths=FAST_SETTINGS.widths,
        epochs=FAST_SETTINGS.epochs,
        cache_dir=cache_dir,
    )


class TestModelCache:
    def test_disk_roundtrip(self, settings):
        from repro.datasets.mnist_like import generate_mnist_like

        cache = ModelCache(settings.cache_dir)
        train = generate_mnist_like(settings.train_size, seed=settings.seed)
        first = cache.get_or_train("lenet", "none", 4, settings, train)
        cache._memory.clear()  # force the disk path
        second = cache.get_or_train("lenet", "none", 4, settings, train)
        np.testing.assert_allclose(first.conv1.weight.data, second.conv1.weight.data)

    def test_memory_hit_returns_same_object(self, settings):
        from repro.datasets.mnist_like import generate_mnist_like

        cache = ModelCache(settings.cache_dir)
        train = generate_mnist_like(settings.train_size, seed=settings.seed)
        first = cache.get_or_train("lenet", "none", 4, settings, train)
        second = cache.get_or_train("lenet", "none", 4, settings, train)
        assert first is second

    def test_key_distinguishes_penalty(self, settings):
        key_a = ModelCache._key("lenet", "none", 4, settings)
        key_b = ModelCache._key("lenet", "proposed", 4, settings)
        assert key_a != key_b

    def test_corrupt_archive_triggers_retrain(self, tmp_path, capsys):
        from repro.datasets.mnist_like import generate_mnist_like

        tiny = ExperimentSettings(
            train_size=120,
            test_size=60,
            widths=(("lenet", 0.5),),
            epochs=(("lenet", 1),),
            cache_dir=str(tmp_path),
        )
        cache = ModelCache(tiny.cache_dir)
        train = generate_mnist_like(tiny.train_size, seed=tiny.seed)
        key = ModelCache._key("lenet", "none", 4, tiny)
        path = cache.path_for(key)
        with open(path, "wb") as handle:
            handle.write(b"PK\x03\x04 truncated junk")

        model = cache.get_or_train("lenet", "none", 4, tiny, train)
        assert "discarding unreadable cache entry" in capsys.readouterr().out
        assert model.conv1.weight.data.size > 0
        # The retrained model was re-persisted and now loads cleanly.
        cache._memory.clear()
        again = cache.get_or_train("lenet", "none", 4, tiny, train)
        np.testing.assert_allclose(model.conv1.weight.data, again.conv1.weight.data)


class TestTableGenerators:
    def test_table2_shape(self, settings):
        outcomes = table2_neuron_convergence(settings, bit_widths=(3,), models=("lenet",))
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.model == "lenet"
        assert 0 <= outcome.accuracy_with <= 100

    def test_table2_recovers_at_3bit(self, settings):
        outcomes = table2_neuron_convergence(settings, bit_widths=(3,), models=("lenet",))
        # The core claim — even at miniature scale the proposed training
        # must not be (much) worse than naive quantization.
        assert outcomes[0].recovered > -3.0

    def test_table3_shape(self, settings):
        outcomes = table3_weight_clustering(settings, bit_widths=(4, 3), models=("lenet",))
        assert [o.bits for o in outcomes] == [4, 3]

    def test_table4_includes_dynamic_baseline(self, settings):
        results = table4_combined(settings, bit_widths=(3,), models=("lenet",))
        entry = results["lenet"]
        assert 0 <= entry["dynamic8"] <= 100
        assert len(entry["outcomes"]) == 1

    def test_table1_reports_paper_and_measured(self, settings):
        rows = table1_ideal_accuracy(
            ExperimentSettings(
                train_size=settings.train_size,
                test_size=settings.test_size,
                widths=(("lenet", 1.0),),
                epochs=(("lenet", 8),),
                cache_dir=settings.cache_dir,
            )
        )
        assert rows[0]["paper_ideal_acc"] == 98.16
        assert rows[0]["paper_weights"] == 6806
        assert rows[0]["measured_ideal_acc"] > 60

    def test_table5_no_training_needed(self):
        rows = table5_system()
        assert len(rows) == 9
        four_bit = [r for r in rows if r["bits"] == 4]
        assert all(r["speedup"] > 9 for r in four_bit)


class TestFigureGenerators:
    def test_fig1a_monotone(self):
        rows = fig1a_speed_vs_precision()
        speeds = [r["speed_mhz"] for r in rows]
        assert all(a > b for a, b in zip(speeds, speeds[1:]))

    def test_fig1b_losses(self, settings):
        rows = fig1b_accuracy_loss(settings, bit_range=(3, 6))
        assert len(rows) == 2
        # At 3 bits the loss must exceed the 6-bit loss for neurons.
        assert rows[0]["neuron_loss"] >= rows[1]["neuron_loss"] - 2.0

    def test_fig3_curve_values(self):
        curves = fig3_regularizer_forms(bits=2)
        assert set(curves) == {"o", "none", "l1", "truncated_l1", "proposed"}
        assert np.all(curves["none"] == 0)
        assert curves["truncated_l1"].max() == pytest.approx(2.0)

    def test_fig4_distributions(self, settings):
        distributions = fig4_signal_distributions(settings, bits=4, sample_size=50)
        assert set(distributions) == {"none", "l1", "truncated_l1", "proposed"}
        for values in distributions.values():
            assert np.all(values >= 0)  # post-ReLU signals
