"""Tests for ASCII line plots."""

import numpy as np
import pytest

from repro.analysis.plots import line_plot


class TestLinePlot:
    def test_renders_with_title_and_legend(self):
        text = line_plot(
            {"speed": [1, 2, 4, 8]}, [1, 2, 3, 4], title="Speed", width=30, height=8
        )
        lines = text.splitlines()
        assert lines[0] == "Speed"
        assert "* speed" in lines[-1]

    def test_marker_positions_monotone(self):
        text = line_plot({"y": [0, 5, 10]}, [0, 1, 2], width=21, height=11)
        rows_with_marker = [
            i for i, line in enumerate(text.splitlines()) if "*" in line
        ]
        # Increasing series: markers appear from bottom row to top row.
        assert rows_with_marker == sorted(rows_with_marker)

    def test_two_series_two_markers(self):
        text = line_plot(
            {"a": [1, 2], "b": [2, 1]}, [0, 1], width=10, height=5
        )
        assert "*" in text and "o" in text

    def test_logy(self):
        text = line_plot(
            {"speed": [0.64, 8.93, 25.35]}, [8, 4, 2], logy=True, width=30
        )
        assert "1e" in text

    def test_logy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_plot({"y": [0.0, 1.0]}, [0, 1], logy=True)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_plot({"y": [1, 2, 3]}, [0, 1])

    def test_empty_series(self):
        with pytest.raises(ValueError):
            line_plot({}, [0, 1])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"y": [1]}, [0])

    def test_constant_series_no_crash(self):
        text = line_plot({"y": [3.0, 3.0, 3.0]}, [0, 1, 2])
        assert "*" in text
