"""Tests for the Eq. 4–5 error-propagation measurement."""

import numpy as np
import pytest

from repro.analysis.error_propagation import (
    LayerError,
    compare_propagation,
    error_amplification,
    measure_error_propagation,
)
from repro.models import LeNet


@pytest.fixture
def lenet(rng):
    return LeNet(width_multiplier=0.5, rng=rng)


class TestMeasurement:
    def test_one_error_per_signal_layer(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        errors = measure_error_propagation(lenet, images, signal_bits=4)
        assert len(errors) == 3  # LeNet's three inter-layer signals
        assert [e.index for e in errors] == [0, 1, 2]

    def test_errors_nonnegative(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        errors = measure_error_propagation(lenet, images, signal_bits=3)
        assert all(e.relative_error >= 0 for e in errors)

    def test_generous_bits_give_small_error(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        coarse = measure_error_propagation(lenet, images, signal_bits=2)
        fine = measure_error_propagation(lenet, images, signal_bits=7)
        assert fine[-1].relative_error < coarse[-1].relative_error

    def test_weight_bits_add_error(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        signal_only = measure_error_propagation(lenet, images, signal_bits=6)
        combined = measure_error_propagation(
            lenet, images, signal_bits=6, weight_bits=2
        )
        assert combined[-1].relative_error >= signal_only[-1].relative_error

    def test_model_unchanged(self, lenet, rng):
        images = rng.normal(size=(4, 1, 28, 28))
        before = lenet.conv1.weight.data.copy()
        measure_error_propagation(lenet, images, signal_bits=4, weight_bits=4)
        np.testing.assert_allclose(lenet.conv1.weight.data, before)

    def test_auto_gain_supported(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        errors = measure_error_propagation(
            lenet, images, signal_bits=4, signal_gain="auto"
        )
        assert len(errors) == 3


class TestAmplification:
    def test_ratio(self):
        errors = [
            LayerError("a", 0, 0.1, 1.0),
            LayerError("b", 1, 0.3, 1.0),
        ]
        assert error_amplification(errors) == pytest.approx(3.0)

    def test_zero_first_layer(self):
        errors = [LayerError("a", 0, 0.0, 1.0), LayerError("b", 1, 0.2, 1.0)]
        assert error_amplification(errors) == float("inf")

    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            error_amplification([LayerError("a", 0, 0.1, 1.0)])


class TestCompare:
    def test_structure(self, rng):
        baseline = LeNet(width_multiplier=0.5, rng=np.random.default_rng(1))
        proposed = LeNet(width_multiplier=0.5, rng=np.random.default_rng(2))
        images = rng.normal(size=(8, 1, 28, 28))
        result = compare_propagation(baseline, proposed, images, signal_bits=4)
        assert set(result) >= {
            "baseline", "proposed",
            "baseline_final_error", "proposed_final_error",
            "baseline_amplification", "proposed_amplification",
        }
        assert len(result["baseline"]) == len(result["proposed"]) == 3
