"""Tests for table rendering and sweep utilities."""

import numpy as np
import pytest

from repro.analysis.sweep import SweepResult, grid, run_sweep
from repro.analysis.tables import (
    format_cell,
    render_dict_table,
    render_histogram,
    render_table,
)


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.345], [10, 0.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.35" in lines[2] or "2.34" in lines[2]

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_mismatched_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_precision(self):
        text = render_table(["v"], [[np.pi]], precision=4)
        assert "3.1416" in text

    def test_format_cell_string_passthrough(self):
        assert format_cell("abc") == "abc"
        assert format_cell(3) == "3"

    def test_alignment(self):
        text = render_table(["model", "acc"], [["lenet", 1.0], ["alexnet", 2.0]])
        lines = text.splitlines()
        # Columns align: '|' at the same offset in every row.
        pipes = [line.index("|") for line in lines if "|" in line]
        assert len(set(pipes)) == 1


class TestRenderDictTable:
    def test_selects_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = render_dict_table(rows, ["a", "c"])
        assert "b" not in text.splitlines()[0]

    def test_missing_key_blank(self):
        text = render_dict_table([{"a": 1}], ["a", "z"])
        assert "z" in text


class TestRenderHistogram:
    def test_renders(self, rng):
        text = render_histogram(rng.normal(size=500), bins=10, title="dist")
        lines = text.splitlines()
        assert lines[0] == "dist"
        assert len(lines) == 11
        assert "#" in text

    def test_counts_sum(self, rng):
        values = rng.normal(size=200)
        text = render_histogram(values, bins=5)
        counts = [int(line.split(")")[1].split()[0]) for line in text.splitlines()]
        assert sum(counts) == 200


class TestGrid:
    def test_cartesian_product(self):
        combos = grid(bits=[3, 4], scope=["a", "b"])
        assert len(combos) == 4
        assert {"bits": 3, "scope": "a"} in combos

    def test_single_axis(self):
        assert grid(x=[1]) == [{"x": 1}]


class TestRunSweep:
    def test_collects_metrics(self):
        result = run_sweep(lambda bits: {"doubled": bits * 2}, grid(bits=[1, 2, 3]))
        assert result.column("doubled") == [2, 4, 6]
        assert result.column("bits") == [1, 2, 3]

    def test_best(self):
        result = run_sweep(lambda bits: {"acc": -abs(bits - 4)}, grid(bits=[2, 4, 6]))
        assert result.best("acc")["bits"] == 4
        assert result.best("acc", maximize=False)["bits"] in (2, 6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            run_sweep(lambda: {}, [])

    def test_best_empty_raises(self):
        with pytest.raises(ValueError):
            SweepResult(parameter_names=["x"]).best("y")


class TestSweepFailureRouting:
    def _flaky(self, bits):
        if bits == 4:
            raise RuntimeError("point exploded")
        return {"acc": bits * 10.0}

    def test_failsink_mode_completes_with_records(self):
        result = run_sweep(self._flaky, grid(bits=[3, 4, 5]), on_error="failsink")
        assert result.column("bits") == [3, 5]
        assert len(result.failures) == 1
        record = result.failures[0]
        assert record.index == 1 and record.error_type == "RuntimeError"
        assert "'bits': 4" in record.item

    def test_passing_a_failsink_implies_routing(self):
        from repro.flow import Failsink

        sink = Failsink()
        result = run_sweep(self._flaky, grid(bits=[3, 4, 5]), failsink=sink)
        assert len(sink) == 1 and len(result.failures) == 1

    def test_strict_default_raises(self):
        with pytest.raises(RuntimeError, match="point exploded"):
            run_sweep(self._flaky, grid(bits=[3, 4, 5]))

    def test_best_empty_message_mentions_failures(self):
        result = run_sweep(self._flaky, grid(bits=[4]), on_error="failsink")
        with pytest.raises(ValueError, match=r"1 point\(s\) failed"):
            result.best("acc")

    def test_best_missing_metric_lists_available_keys(self):
        result = run_sweep(lambda bits: {"acc": 1.0}, grid(bits=[3]))
        with pytest.raises(ValueError, match="available keys: acc, bits"):
            result.best("accuracy")
