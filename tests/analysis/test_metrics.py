"""Tests for accuracy metrics and outcome bookkeeping."""

import numpy as np
import pytest

from repro import nn
from repro.analysis.metrics import (
    QuantizationOutcome,
    confusion_matrix,
    evaluate_accuracy,
    top_k_accuracy,
)
from repro.nn.data import Dataset
from repro.nn.tensor import Tensor


class ConstantModel(nn.Module):
    """Always predicts class 0 (with descending scores)."""

    def __init__(self, classes=4):
        super().__init__()
        self.classes = classes

    def forward(self, x):
        batch = x.shape[0]
        scores = -np.arange(self.classes, dtype=float)
        return Tensor(np.tile(scores, (batch, 1)))


def dataset(labels):
    labels = np.asarray(labels)
    images = np.zeros((len(labels), 1, 2, 2))
    return Dataset(images, labels)


class TestEvaluateAccuracy:
    def test_constant_model(self):
        ds = dataset([0, 0, 1, 2])
        assert evaluate_accuracy(ConstantModel(), ds) == 0.5

    def test_batching_consistent(self):
        ds = dataset([0] * 7 + [1] * 6)
        full = evaluate_accuracy(ConstantModel(), ds, batch_size=100)
        small = evaluate_accuracy(ConstantModel(), ds, batch_size=3)
        assert full == small

    def test_restores_training_mode(self):
        model = ConstantModel()
        model.train()
        evaluate_accuracy(model, dataset([0, 1]))
        assert model.training

    def test_restores_eval_mode(self):
        model = ConstantModel()
        model.eval()
        evaluate_accuracy(model, dataset([0, 1]))
        assert not model.training


class TestTopK:
    def test_top2(self):
        # Constant model ranks classes 0,1,2,3; labels 0/1 are in top-2.
        ds = dataset([0, 1, 2, 3])
        assert top_k_accuracy(ConstantModel(), ds, k=2) == 0.5

    def test_topk_at_num_classes_is_one(self):
        ds = dataset([0, 1, 2, 3])
        assert top_k_accuracy(ConstantModel(), ds, k=4) == 1.0


class TestConfusion:
    def test_constant_predictions(self):
        ds = dataset([0, 1, 1, 3])
        matrix = confusion_matrix(ConstantModel(), ds)
        np.testing.assert_allclose(matrix[:, 0], [1, 2, 0, 1])
        assert matrix.sum() == 4

    def test_shape(self):
        ds = dataset([0, 1, 2, 3])
        assert confusion_matrix(ConstantModel(), ds).shape == (4, 4)


class TestQuantizationOutcome:
    def test_recovered_and_drop(self):
        outcome = QuantizationOutcome(
            model="lenet", bits=4, accuracy_without=90.0, accuracy_with=98.0, ideal=99.0
        )
        assert outcome.recovered == pytest.approx(8.0)
        assert outcome.drop == pytest.approx(1.0)

    def test_row_rounding(self):
        outcome = QuantizationOutcome("m", 3, 90.123, 95.456, 99.999)
        row = outcome.row()
        assert row["without"] == 90.12
        assert row["with"] == 95.46
        assert row["model"] == "m"
