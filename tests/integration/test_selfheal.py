"""End-to-end self-healing: diagnose → repair ladder → guarded serving.

The acceptance scenario from the robustness study: a trained LeNet deployed
at 4 bits with programming variation σ=0.05 takes 1% stuck-at faults.  The
repair ladder must win back at least half of the lost accuracy, and the
guarded system must never serve worse than the quantized software twin once
fallback triggers.
"""

import numpy as np
import pytest

from repro.analysis.metrics import evaluate_accuracy
from repro.core.qat import Trainer, TrainerConfig
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.guard import GuardConfig, GuardedSpikingSystem
from repro.snc.faults import inject_faults_into_network
from repro.snc.remediation import RemediationConfig
from repro.snc.system import SpikingSystemConfig, build_spiking_system

FAULT_RATE = 0.01
SIGMA = 0.05


@pytest.fixture(scope="module")
def trained_lenet():
    train = generate_mnist_like(600, seed=0)
    model = LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=8, penalty="proposed", bits=4, seed=1)).fit(model, train)
    return model, train


@pytest.fixture(scope="module")
def test_set():
    return generate_mnist_like(200, seed=42)


def deploy(trained_lenet, **overrides):
    model, train = trained_lenet
    settings = dict(
        signal_bits=4, weight_bits=4, input_bits=8,
        variation_sigma=SIGMA, spare_tile_fraction=0.25, seed=0,
    )
    settings.update(overrides)
    return build_spiking_system(model, SpikingSystemConfig(**settings), train.images[:100])


@pytest.fixture(scope="module")
def healing_outcome(trained_lenet, test_set):
    """Run the fault → diagnose → remediate scenario once for all asserts."""
    system = deploy(trained_lenet)
    pre_fault_acc = system.accuracy(test_set)
    inject_faults_into_network(system.network, FAULT_RATE, seed=42)
    health_before = system.health_check(seed=0)
    faulty_acc = system.accuracy(test_set)
    report = system.remediate(RemediationConfig(seed=0))
    health_after = system.health_check(seed=0)
    healed_acc = system.accuracy(test_set)
    return {
        "system": system,
        "pre_fault_acc": pre_fault_acc,
        "faulty_acc": faulty_acc,
        "healed_acc": healed_acc,
        "health_before": health_before,
        "health_after": health_after,
        "report": report,
    }


class TestRepairLadderRecovery:
    def test_faults_detected_before_repair(self, healing_outcome):
        health = healing_outcome["health_before"]
        assert not health.healthy
        assert health.estimated_stuck > 0
        assert health.worst_layer is not None

    def test_ladder_recovers_at_least_half_the_lost_accuracy(self, healing_outcome):
        pre, faulty, healed = (
            healing_outcome["pre_fault_acc"],
            healing_outcome["faulty_acc"],
            healing_outcome["healed_acc"],
        )
        lost = pre - faulty
        assert lost > 0, "fault injection must cost accuracy for this scenario"
        assert healed - faulty >= 0.5 * lost

    def test_ladder_reduces_deviating_pairs(self, healing_outcome):
        report = healing_outcome["report"]
        assert report.pairs_recovered > 0
        assert (
            healing_outcome["health_after"].deviating_pairs
            < healing_outcome["health_before"].deviating_pairs
        )

    def test_ladder_spends_pulses_and_reports_tiers(self, healing_outcome):
        report = healing_outcome["report"]
        assert report.total_pulses > 0
        assert [tier.tier for tier in report.tiers][0] == "reprogram"


class TestGuardedNeverWorseThanTwin:
    def test_fallback_serving_matches_twin_exactly(self, trained_lenet, test_set):
        system = deploy(trained_lenet)
        inject_faults_into_network(system.network, FAULT_RATE, seed=42)
        guard = GuardedSpikingSystem(
            system,
            GuardConfig(probe_every=1, max_deviating_fraction=0.0, auto_remediate=False),
        )
        batch = test_set.images[:20]
        guarded = guard.infer(batch)
        assert guard.counters.fallback_engaged, "probe must trigger fallback"
        with no_grad():
            twin = guard.software_twin(Tensor(batch)).data
        np.testing.assert_allclose(guarded, twin)

    def test_guarded_accuracy_equals_twin_and_beats_damaged_chip(
        self, trained_lenet, test_set
    ):
        system = deploy(trained_lenet)
        inject_faults_into_network(system.network, FAULT_RATE, seed=42)
        faulty_acc = system.accuracy(test_set)
        guard = GuardedSpikingSystem(
            system,
            GuardConfig(probe_every=1, max_deviating_fraction=0.0, auto_remediate=False),
        )
        guarded_acc = guard.accuracy(test_set)
        twin_acc = evaluate_accuracy(system.software_reference, test_set)
        assert guard.counters.fallback_engaged
        assert guarded_acc == pytest.approx(twin_acc)
        assert guarded_acc >= faulty_acc
