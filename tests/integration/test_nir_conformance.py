"""Differential conformance for the NIR interchange round-trip.

``tests/snc/test_nir.py`` proves the graph executor of a re-imported
model matches the original; this suite raises the bar to the serving
paths.  For every registered model spec, the model is exported to the
NIR archive, re-imported, and then run through the compiled
:class:`InferenceEngine` and the :class:`ModelServer` — each with
telemetry off AND on — and every path must reproduce the *original*
deployment's graph-executor logits bit for bit (``np.array_equal``, no
tolerances).  That is the interchange contract: an archive is a complete
substitute for the deployment it came from, not an approximation of it.
"""

import numpy as np
import pytest

from repro import datasets
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.models.registry import MODEL_DATASET, available_models, build_model
from repro.nn.tensor import Tensor, no_grad
from repro.obs import Telemetry
from repro.serve import ServeConfig
from repro.snc.nir import export_nir, import_nir, to_nir, validate_nir

BATCH_ROWS = 8
SIGNAL_BITS = 4


@pytest.fixture(scope="module", params=available_models())
def roundtrip(request, tmp_path_factory):
    """(name, images, reference logits, re-imported module) per model spec."""
    name = request.param
    maker = (
        datasets.mnist_like
        if MODEL_DATASET[name] == "mnist-like"
        else datasets.cifar_like
    )
    train_set, _ = maker(train_size=16, test_size=4, seed=0)
    images = np.asarray(train_set.images[:BATCH_ROWS], dtype=np.float64)
    model = build_model(name, width_multiplier=0.25, rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=SIGNAL_BITS, weight_bits=SIGNAL_BITS,
                         input_bits=8, signal_gain="auto"),
        images,
    )
    with no_grad():
        reference = deployed(Tensor(images)).data
    path = str(tmp_path_factory.mktemp("nir") / f"{name}.nir.npz")
    graph = export_nir(deployed, path, model=name)
    assert validate_nir(graph).ok
    return name, images, reference, import_nir(path)


def _telemetry(enabled: bool):
    return Telemetry() if enabled else None


@pytest.mark.parametrize("observed", [False, True],
                         ids=["telemetry-off", "telemetry-on"])
class TestNIRConformance:
    def test_reimported_engine_matches_original(self, roundtrip, observed):
        name, images, reference, rebuilt = roundtrip
        telemetry = _telemetry(observed)
        engine = make_inference_engine(
            rebuilt, telemetry=telemetry, dtype=np.float64
        )
        logits = engine.run(images)
        assert np.array_equal(logits, reference), (
            f"{name}: engine over the re-imported model deviates from the "
            f"original deployment with telemetry {'on' if observed else 'off'}"
        )
        assert np.array_equal(engine.run(images), logits)
        if observed:
            assert any(
                n.startswith("engine_") for n in telemetry.registry.names()
            )

    def test_reimported_server_matches_original(self, roundtrip, observed):
        name, images, reference, rebuilt = roundtrip
        telemetry = _telemetry(observed)
        server = make_model_server(
            rebuilt,
            ServeConfig(workers=2, batch_size=BATCH_ROWS, max_wait_ms=0.5),
            warmup_images=images[:2],
            telemetry=telemetry,
            dtype=np.float64,
        )
        try:
            served = server.submit(images)
        finally:
            server.close()
        assert np.array_equal(served, reference), (
            f"{name}: served logits over the re-imported model deviate from "
            f"the original with telemetry {'on' if observed else 'off'}"
        )


def test_reexport_of_reimport_is_identical(roundtrip):
    """Second-generation archives carry exactly the same graph + arrays."""
    name, _, _, rebuilt = roundtrip
    second = to_nir(rebuilt, model=name)
    original = to_nir(rebuilt, model=name)
    assert second.meta() == original.meta()
    for key in original.arrays:
        np.testing.assert_array_equal(second.arrays[key], original.arrays[key])
