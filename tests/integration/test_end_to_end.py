"""End-to-end integration: the full paper flow on one small LeNet.

train (Neuron Convergence) → Weight Clustering → quantized deployment →
crossbar mapping → spike-domain inference → fault injection — one pass
through every layer of the stack, asserting the invariants that connect
them.
"""

import numpy as np
import pytest

from repro import datasets, models
from repro.analysis.metrics import evaluate_accuracy
from repro.core import (
    DeploymentConfig,
    Trainer,
    TrainerConfig,
    deploy_dynamic_fixed_point,
    deploy_model,
)
from repro.snc import (
    SpikingSystemConfig,
    build_spiking_system,
    inject_faults_into_network,
)


@pytest.fixture(scope="module")
def setup():
    train, test = datasets.mnist_like(train_size=800, test_size=300, seed=0)
    baseline = models.LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=10, penalty="none", seed=1)).fit(baseline, train)
    proposed = models.LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=10, penalty="proposed", bits=4, seed=1)).fit(
        proposed, train
    )
    return train, test, baseline, proposed


class TestAccuracyChain:
    def test_models_learn(self, setup):
        _, test, baseline, proposed = setup
        assert evaluate_accuracy(baseline, test) > 0.85
        assert evaluate_accuracy(proposed, test) > 0.85

    def test_paper_headline_ordering(self, setup):
        """ideal ≥ proposed-quantized > naive-quantized at 4 bits."""
        _, test, baseline, proposed = setup
        ideal = evaluate_accuracy(baseline, test)
        naive, _ = deploy_model(
            baseline, DeploymentConfig(signal_bits=4, weight_bits=4, weight_mode="naive")
        )
        ours, _ = deploy_model(
            proposed,
            DeploymentConfig(signal_bits=4, weight_bits=4, weight_mode="clustered"),
        )
        naive_acc = evaluate_accuracy(naive, test)
        ours_acc = evaluate_accuracy(ours, test)
        assert ours_acc > naive_acc, f"w/ {ours_acc} vs w/o {naive_acc}"
        assert ours_acc > ideal - 0.10

    def test_dynamic8_baseline_near_ideal(self, setup):
        train, test, baseline, _ = setup
        ideal = evaluate_accuracy(baseline, test)
        dynamic, _ = deploy_dynamic_fixed_point(baseline, train.images[:128], bits=8)
        assert evaluate_accuracy(dynamic, test) > ideal - 0.05


class TestHardwareChain:
    def test_spiking_system_bit_exact_and_accurate(self, setup):
        train, test, _, proposed = setup
        system = build_spiking_system(
            proposed,
            SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8),
            train.images[:100],
        )
        assert system.verify_equivalence(test.images[:50])
        sw_acc = evaluate_accuracy(proposed, test)
        hw_acc = system.accuracy(test)
        assert hw_acc > sw_acc - 0.12  # full quantization costs a little

    def test_fault_injection_degrades(self, setup):
        train, test, _, proposed = setup
        system = build_spiking_system(
            proposed,
            SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8),
            train.images[:100],
        )
        clean = system.accuracy(test)
        inject_faults_into_network(
            system.network, rate=0.3, rng=np.random.default_rng(0)
        )
        faulty = system.accuracy(test)
        assert faulty < clean

    def test_crossbar_budget_matches_cost_model(self, setup):
        """The mapped LeNet's crossbar count is consistent with Eq. 1 on the
        trainable model's actual dimensions (+ bias rows)."""
        train, _, _, proposed = setup
        system = build_spiking_system(
            proposed,
            SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8),
            train.images[:50],
        )
        from repro.snc.crossbar import crossbars_required

        for layer in system.mapping.layers:
            expected = crossbars_required(layer.rows + layer.bias_rows, layer.cols, 32)
            assert layer.crossbars == expected
