"""Differential conformance: graph vs engine vs server, telemetry off/on.

The observability layer's contract is that instrumentation is *inert on
outputs*: enabling telemetry may record anything it likes, but the
logits a caller receives must be bit-for-bit the ones an uninstrumented
run produces.  This suite locks that down for every registered model
spec, across all three serving paths:

1. the autograd **graph executor** (reference semantics),
2. ``InferenceEngine.run`` (compiled plan replay, float64 policy),
3. ``ModelServer`` (admission → micro-batching → replica pool).

Each path is exercised with telemetry off AND on, and the engine is
exercised in all three plan variants: ``float64`` (integer fast path
off), ``int`` (fused uint8 GEMM with multiply requantize), and ``shift``
(scales snapped to the pow2 grid, requantize by arithmetic right shift).
The float and int variants must reproduce the graph executor's logits
bit-for-bit (``np.array_equal`` — no tolerances).  The shift variant
computes a *different* network — snapping perturbs the weight grids — so
its reference is the graph executor of the snapped module, and the
guarantee is exact argmax agreement plus replay determinism (the shifted
requantize can land on the other side of a float64 floor boundary for a
handful of activations; see ``docs/performance.md``).  Models are built
at a reduced width multiplier so the full matrix stays fast; the
arithmetic paths exercised are identical to full-width deployments.
"""

import copy

import numpy as np
import pytest

from repro import datasets
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.models.registry import MODEL_DATASET, available_models, build_model
from repro.nn.tensor import Tensor, no_grad
from repro.obs import Telemetry
from repro.serve import ServeConfig

BATCH_ROWS = 8
SIGNAL_BITS = 4

#: Models the plan compiler cannot lower (residual topology): the engine
#: honours its never-refuse-to-serve contract by degrading to the graph
#: executor, so every variant must still match the reference exactly.
GRAPH_ONLY_MODELS = {"resnet"}


@pytest.fixture(scope="module", params=available_models())
def deployment(request):
    """One deployed model spec + its reference (graph-executor) logits."""
    name = request.param
    maker = (
        datasets.mnist_like
        if MODEL_DATASET[name] == "mnist-like"
        else datasets.cifar_like
    )
    train_set, _ = maker(train_size=16, test_size=4, seed=0)
    images = np.asarray(train_set.images[:BATCH_ROWS], dtype=np.float64)
    model = build_model(name, width_multiplier=0.25, rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=SIGNAL_BITS, weight_bits=SIGNAL_BITS,
                         input_bits=8),
        images,
    )
    with no_grad():
        reference = deployed(Tensor(images)).data
    return name, deployed, images, reference


def _telemetry(enabled: bool):
    return Telemetry() if enabled else None


@pytest.mark.parametrize("observed", [False, True], ids=["telemetry-off", "telemetry-on"])
class TestConformance:
    @pytest.mark.parametrize("variant", ["float64", "int", "shift"])
    def test_engine_matches_graph(self, deployment, observed, variant):
        name, deployed, images, reference = deployment
        telemetry = _telemetry(observed)
        if variant == "shift":
            # Snapping mutates weight scales in place; keep the shared
            # module-scoped deployment pristine for the other variants.
            deployed = copy.deepcopy(deployed)
        engine = make_inference_engine(
            deployed, telemetry=telemetry, dtype=np.float64,
            int_path={"float64": "off", "int": "auto", "shift": "shift"}[variant],
        )
        logits = engine.run(images)
        expected_backend = "graph" if name in GRAPH_ONLY_MODELS else variant
        assert engine.active_backend == expected_backend, (
            f"{name}: expected the {expected_backend} backend, engine "
            f"reports {engine.active_backend}"
        )
        if variant == "shift":
            # The engine snapped its module; the snapped graph is the
            # reference, and the contract is argmax-exactness.
            with no_grad():
                reference = deployed(Tensor(images)).data
            assert np.array_equal(
                np.argmax(logits, axis=1), np.argmax(reference, axis=1)
            ), (
                f"{name}: shift engine changes predictions vs the snapped "
                f"graph with telemetry {'on' if observed else 'off'}"
            )
        else:
            assert np.array_equal(logits, reference), (
                f"{name}: engine ({engine.active_backend}) deviates from the "
                f"graph executor with telemetry {'on' if observed else 'off'}"
            )
        # Replays must be deterministic, instrumented or not.
        assert np.array_equal(engine.run(images), logits)
        if observed:
            names = telemetry.registry.names()
            assert any(n.startswith("engine_") for n in names)

    def test_server_matches_graph(self, deployment, observed):
        name, deployed, images, reference = deployment
        telemetry = _telemetry(observed)
        server = make_model_server(
            deployed,
            ServeConfig(workers=2, batch_size=BATCH_ROWS, max_wait_ms=0.5),
            warmup_images=images[:2],
            telemetry=telemetry,
            dtype=np.float64,
        )
        try:
            served = server.submit(images)
            # Split submissions take the coalescing + scatter path.
            split = server.submit_many([images[:3], images[3:]])
        finally:
            server.close()
        assert np.array_equal(served, reference), (
            f"{name}: served logits deviate from the graph executor with "
            f"telemetry {'on' if observed else 'off'}"
        )
        assert np.array_equal(np.concatenate(split, axis=0), reference)
        if observed:
            names = telemetry.registry.names()
            assert any(n.startswith("serve_") for n in names)
            assert any(n.startswith("engine_") for n in names)


def test_instrumented_outputs_equal_uninstrumented(deployment):
    """The two telemetry modes are compared directly, not just via the graph."""
    _, deployed, images, _ = deployment
    plain = make_inference_engine(deployed, dtype=np.float64).run(images)
    observed = make_inference_engine(
        deployed, telemetry=Telemetry(), dtype=np.float64
    ).run(images)
    assert np.array_equal(plain, observed)
