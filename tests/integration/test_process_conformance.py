"""Cross-process conformance: process-pool server vs direct engine replay.

The process pool's whole claim is that moving a replica into a worker
process — pickled module spec, re-traced plan, tensors through shared
memory, logits back through a ring — changes *nothing* about the bytes a
caller receives.  This suite locks that down for every registered model
spec × every kernel variant × telemetry off/on:

- ``int``    — fused uint8 GEMM fast path (``int_path="auto"``),
- ``shift``  — pow2-snapped scales, requantize by arithmetic shift,
- ``legacy`` — the unfused integer kernels (``int_kernels="legacy"``).

The reference is a *direct* in-process engine replay built from an
identical clone with identical config.  The shift variant snaps its
weight grids at trace time; snapping is deterministic, so two engines
snapped from clones of the same deployment must still agree bit-for-bit
— full ``np.array_equal``, no argmax weakening needed.  Models the plan
compiler cannot lower (residual topology) degrade to the graph executor
inside the worker and must *still* match exactly.

Every case also proves the transport drains clean: no shared-memory
segment outlives the server's close.
"""

import copy

import numpy as np
import pytest

from repro import datasets
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.models.registry import MODEL_DATASET, available_models, build_model
from repro.obs import Telemetry
from repro.serve import ServeConfig
from repro.serve.shm import active_segment_names

BATCH_ROWS = 8
SIGNAL_BITS = 4

#: engine-config overrides per kernel variant (dtype pinned to float64 so
#: plans replay the policy the thread conformance suite uses).
VARIANTS = {
    "int": dict(int_path="auto"),
    "shift": dict(int_path="shift"),
    "legacy": dict(int_path="auto", int_kernels="legacy"),
}

#: Models the plan compiler cannot lower: the worker's engine serves from
#: the graph executor, which must still be bit-exact.
GRAPH_ONLY_MODELS = {"resnet"}


@pytest.fixture(scope="module", params=available_models())
def deployment(request):
    """One deployed model spec plus request images (module-scoped: the
    deployment is immutable here — every consumer clones before tracing)."""
    name = request.param
    maker = (
        datasets.mnist_like
        if MODEL_DATASET[name] == "mnist-like"
        else datasets.cifar_like
    )
    train_set, _ = maker(train_size=16, test_size=4, seed=0)
    images = np.asarray(train_set.images[:BATCH_ROWS], dtype=np.float64)
    model = build_model(name, width_multiplier=0.25,
                        rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=SIGNAL_BITS, weight_bits=SIGNAL_BITS,
                         input_bits=8),
        images,
    )
    return name, deployed, images


@pytest.mark.parametrize("observed", [False, True],
                         ids=["telemetry-off", "telemetry-on"])
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_process_server_matches_direct_engine(deployment, variant, observed):
    name, deployed, images = deployment
    overrides = dict(VARIANTS[variant], dtype=np.float64)
    # The shift engine snaps its module's scales at trace time; every
    # engine here gets its own clone so the shared fixture stays pristine
    # and the worker/reference snappings start from identical bytes.
    reference_engine = make_inference_engine(
        copy.deepcopy(deployed), **overrides)
    reference = reference_engine.run(images)
    expected_backend = "graph" if name in GRAPH_ONLY_MODELS else variant
    if variant == "legacy" and name not in GRAPH_ONLY_MODELS:
        expected_backend = "int"  # legacy selects kernels, not the backend
    assert reference_engine.active_backend == expected_backend

    baseline = set(active_segment_names())
    telemetry = Telemetry() if observed else None
    server = make_model_server(
        copy.deepcopy(deployed),
        ServeConfig(workers=1, batch_size=BATCH_ROWS, max_wait_ms=0.5,
                    pool="process"),
        warmup_images=images[:2],
        telemetry=telemetry,
        **overrides,
    )
    try:
        served = server.submit(images, timeout=120.0)
        # Split submissions exercise the coalescing + scatter path.
        split = server.submit_many([images[:3], images[3:]], timeout=120.0)
    finally:
        server.close()
    assert np.array_equal(served, reference), (
        f"{name}/{variant}: process-served logits deviate from direct "
        f"engine replay with telemetry {'on' if observed else 'off'}"
    )
    assert np.array_equal(np.concatenate(split, axis=0), reference), (
        f"{name}/{variant}: scattered logits deviate from direct replay"
    )
    assert set(active_segment_names()) <= baseline, (
        f"{name}/{variant}: shared-memory segments leaked past close()"
    )
    if observed:
        names = telemetry.registry.names()
        assert any(n.startswith("serve_") for n in names)
        assert "serve_shm_bytes_in_flight" in names
        assert "serve_pool_processes" in names
