"""Tests for variation-aware training."""

import numpy as np
import pytest

from repro.core.variation_training import (
    VariationTrainingConfig,
    train_with_variation,
    variation_robustness,
)
from repro.nn.data import Dataset
from repro import nn


def blob_dataset(rng, n=120):
    half = n // 2
    images = np.zeros((n, 1, 4, 4))
    images[:half] = rng.normal(-1.0, 0.4, size=(half, 1, 4, 4))
    images[half:] = rng.normal(1.0, 0.4, size=(half, 1, 4, 4))
    labels = np.array([0] * half + [1] * half)
    order = rng.permutation(n)
    return Dataset(images[order], labels[order])


def tiny_model(seed=3):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Flatten(), nn.Linear(16, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng)
    )


class TestConfig:
    def test_invalid(self):
        with pytest.raises(ValueError):
            VariationTrainingConfig(noise_sigma=-0.1)
        with pytest.raises(ValueError):
            VariationTrainingConfig(epochs=0)


class TestTraining:
    def test_loss_decreases(self, rng):
        data = blob_dataset(rng)
        model = tiny_model()
        losses = train_with_variation(
            model, data, VariationTrainingConfig(noise_sigma=0.1, epochs=6)
        )
        assert losses[-1] < losses[0]

    def test_zero_sigma_is_plain_training(self, rng):
        data = blob_dataset(rng)
        model = tiny_model()
        losses = train_with_variation(
            model, data, VariationTrainingConfig(noise_sigma=0.0, epochs=4)
        )
        assert losses[-1] < losses[0]

    def test_final_weights_are_clean_masters(self, rng):
        """After training the stored weights must be the noise-free masters
        (training twice from the same seeds is deterministic)."""
        data = blob_dataset(rng)
        model_a = tiny_model(seed=3)
        model_b = tiny_model(seed=3)
        config = VariationTrainingConfig(noise_sigma=0.2, epochs=2, seed=5)
        train_with_variation(model_a, data, config)
        train_with_variation(model_b, data, config)
        np.testing.assert_allclose(
            model_a.layers[1].weight.data, model_b.layers[1].weight.data
        )

    def test_noise_trained_model_more_robust(self, rng):
        """The headline property: under deployment-level noise, the
        variation-trained model loses less accuracy than the control."""
        data = blob_dataset(rng, n=200)
        control = tiny_model(seed=3)
        robust = tiny_model(seed=3)
        train_with_variation(
            control, data, VariationTrainingConfig(noise_sigma=0.0, epochs=8, seed=1)
        )
        train_with_variation(
            robust, data, VariationTrainingConfig(noise_sigma=0.4, epochs=8, seed=1)
        )
        sigma_test = [0.6]
        control_acc = variation_robustness(control, data, sigma_test, trials=8)[0]
        robust_acc = variation_robustness(robust, data, sigma_test, trials=8)[0]
        assert robust_acc["mean_accuracy"] >= control_acc["mean_accuracy"] - 3.0


class TestRobustnessProbe:
    def test_restores_weights(self, rng):
        data = blob_dataset(rng)
        model = tiny_model()
        before = model.layers[1].weight.data.copy()
        variation_robustness(model, data, [0.3], trials=2)
        np.testing.assert_allclose(model.layers[1].weight.data, before)

    def test_zero_sigma_exact(self, rng):
        data = blob_dataset(rng)
        model = tiny_model()
        results = variation_robustness(model, data, [0.0], trials=3)
        assert results[0]["std_accuracy"] == pytest.approx(0.0, abs=1e-9)

    def test_accuracy_degrades_with_sigma(self, rng):
        data = blob_dataset(rng, n=200)
        model = tiny_model()
        train_with_variation(
            model, data, VariationTrainingConfig(noise_sigma=0.0, epochs=8)
        )
        results = variation_robustness(model, data, [0.0, 1.5], trials=5)
        assert results[0]["mean_accuracy"] >= results[1]["mean_accuracy"]
