"""Unit + property tests for Weight Clustering (Eq. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core.quantizers import quantize_weights_fixed_point
from repro.core.weight_clustering import (
    apply_weight_clustering,
    cluster_weights,
    initial_scale,
    naive_weight_quantization,
)


class TestClusterWeights:
    def test_exact_on_grid_input(self):
        # Weights already on a scaled grid cluster with zero error.
        scale = 0.8
        codes = np.array([-8, -3, 0, 2, 8])
        weights = scale * codes / 16.0
        result = cluster_weights(weights, bits=4)
        np.testing.assert_allclose(result.quantized, weights, atol=1e-12)
        assert result.mse < 1e-20

    def test_codes_within_range(self, rng):
        result = cluster_weights(rng.normal(size=(4, 5)), bits=3)
        assert np.abs(result.codes).max() <= 4  # 2^(3-1)

    def test_shape_preserved(self, rng):
        weights = rng.normal(size=(3, 2, 5, 5))
        result = cluster_weights(weights, bits=4)
        assert result.codes.shape == weights.shape
        assert result.quantized.shape == weights.shape

    def test_zero_weights(self):
        result = cluster_weights(np.zeros((3, 3)), bits=4)
        np.testing.assert_allclose(result.quantized, 0.0)
        assert result.mse == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cluster_weights(np.zeros((0,)), bits=4)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            cluster_weights(np.ones(3), bits=0)

    def test_beats_fixed_grid_rounding(self, rng):
        """The Eq. 6 optimum can't be worse than the naive fixed grid."""
        for _ in range(5):
            weights = rng.normal(size=200) * rng.uniform(0.05, 3.0)
            result = cluster_weights(weights, bits=4)
            naive = quantize_weights_fixed_point(weights, 4, scale=1.0)
            naive_mse = float(np.mean((naive - weights) ** 2))
            assert result.mse <= naive_mse + 1e-15

    def test_levels_used(self, rng):
        result = cluster_weights(rng.normal(size=500), bits=3)
        assert 2 <= result.levels_used <= 9

    def test_codebook_linear(self, rng):
        result = cluster_weights(rng.normal(size=50), bits=4)
        diffs = np.diff(result.codebook)
        np.testing.assert_allclose(diffs, diffs[0])

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=64,
        ),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_never_worse_than_range_rounding(self, values, bits):
        weights = np.array(values)
        result = cluster_weights(weights, bits=bits)
        start = initial_scale(weights, bits)
        snapped = quantize_weights_fixed_point(weights, bits, scale=start)
        snapped_mse = float(np.mean((snapped - weights) ** 2))
        assert result.mse <= snapped_mse + 1e-12

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=2,
            max_size=32,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_quantized_on_linear_grid(self, values):
        weights = np.array(values)
        result = cluster_weights(weights, bits=4)
        if result.scale > 0:
            reconstructed = result.scale * result.codes / 16.0
            np.testing.assert_allclose(result.quantized, reconstructed)

    def test_monotone_improvement_with_bits(self, rng):
        weights = rng.normal(size=300)
        mses = [cluster_weights(weights, bits=b).mse for b in (2, 3, 4, 5, 6)]
        assert all(a >= b - 1e-15 for a, b in zip(mses, mses[1:]))


class TestInitialScale:
    def test_peak_lands_on_endpoint(self):
        weights = np.array([0.3, -0.7, 0.1])
        scale = initial_scale(weights, bits=4)
        # endpoint value = scale · 2^(N−1) / 2^N = scale / 2 = max|w|
        assert scale == pytest.approx(1.4)

    def test_zero_weights(self):
        assert initial_scale(np.zeros(3), bits=4) == 1.0


class TestModelClustering:
    def _model(self, rng):
        return nn.Sequential(
            nn.Conv2d(1, 4, 3, rng=rng),
            nn.ReLU(),
            nn.Flatten(),
            nn.Linear(4 * 36, 10, rng=rng),
        )

    def test_per_layer_quantizes_all_weights(self, rng):
        model = self._model(rng)
        report = apply_weight_clustering(model, bits=4)
        assert set(report.results) == {
            "0.weight", "0.bias", "3.weight", "3.bias",
        }
        for _, module in model.named_modules():
            if hasattr(module, "weight") and isinstance(getattr(module, "weight", None), type(model.layers[0].weight)):
                pass  # structural check below is enough

    def test_weights_mutated_in_place(self, rng):
        model = self._model(rng)
        before = model.layers[0].weight.data.copy()
        apply_weight_clustering(model, bits=3)
        assert not np.allclose(before, model.layers[0].weight.data)

    def test_weights_on_reported_grid(self, rng):
        model = self._model(rng)
        report = apply_weight_clustering(model, bits=4)
        for name, module in [("0", model.layers[0]), ("3", model.layers[3])]:
            scale = report.results[f"{name}.weight"].scale
            codes = module.weight.data * 16 / scale
            np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)

    def test_global_scope_shares_scale(self, rng):
        model = self._model(rng)
        report = apply_weight_clustering(model, bits=4, scope="global")
        scales = {r.scale for k, r in report.results.items() if k.endswith(".weight")}
        assert len(scales) == 1

    def test_per_layer_scales_differ(self, rng):
        model = self._model(rng)
        # Force very different layer ranges.
        model.layers[0].weight.data *= 10
        report = apply_weight_clustering(model, bits=4, scope="per_layer")
        scales = [r.scale for k, r in report.results.items() if k.endswith(".weight")]
        assert abs(scales[0] - scales[1]) > 1e-3

    def test_invalid_scope(self, rng):
        with pytest.raises(ValueError):
            apply_weight_clustering(self._model(rng), bits=4, scope="nonsense")

    def test_exclude_bias(self, rng):
        model = self._model(rng)
        bias_before = model.layers[0].bias.data.copy()
        report = apply_weight_clustering(model, bits=4, include_bias=False)
        np.testing.assert_allclose(model.layers[0].bias.data, bias_before)
        assert "0.bias" not in report.results

    def test_model_without_layers_raises(self):
        with pytest.raises(ValueError):
            apply_weight_clustering(nn.Sequential(nn.ReLU()), bits=4)

    def test_total_mse_weighted(self, rng):
        model = self._model(rng)
        report = apply_weight_clustering(model, bits=4)
        assert report.total_mse >= 0.0
        assert "overall mse" in report.summary()


class TestNaiveQuantization:
    def test_fixed_mode_uses_unit_scale(self, rng):
        model = nn.Sequential(nn.Linear(4, 3, rng=rng))
        model.layers[0].weight.data *= 5  # push weights past ±0.5
        naive_weight_quantization(model, bits=4, scale_mode="fixed")
        assert np.abs(model.layers[0].weight.data).max() <= 0.5

    def test_range_mode_covers_peak(self, rng):
        model = nn.Sequential(nn.Linear(4, 3, rng=rng))
        model.layers[0].weight.data *= 5
        peak = np.abs(model.layers[0].weight.data).max()
        naive_weight_quantization(model, bits=4, scale_mode="range")
        new_peak = np.abs(model.layers[0].weight.data).max()
        assert new_peak == pytest.approx(peak, rel=1e-6)

    def test_invalid_mode(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng))
        with pytest.raises(ValueError):
            naive_weight_quantization(model, bits=4, scale_mode="weird")

    def test_clustered_at_least_as_good_as_naive_in_mse(self, rng):
        model_a = nn.Sequential(nn.Linear(20, 10, rng=np.random.default_rng(3)))
        model_b = nn.Sequential(nn.Linear(20, 10, rng=np.random.default_rng(3)))
        original = model_a.layers[0].weight.data.copy()
        apply_weight_clustering(model_a, bits=3, include_bias=False)
        naive_weight_quantization(model_b, bits=3, include_bias=False)
        mse_clustered = np.mean((model_a.layers[0].weight.data - original) ** 2)
        mse_naive = np.mean((model_b.layers[0].weight.data - original) ** 2)
        assert mse_clustered <= mse_naive + 1e-15
