"""Snapping per-layer scales onto the power-of-two grid (repro.core.pow2)."""

import copy
import math

import numpy as np
import pytest

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.pow2 import MAX_SHIFT, snap_scales_pow2
from repro.core.weight_clustering import _stamp_grid
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.modules import Conv2d, Linear


BITS = 4


@pytest.fixture(scope="module")
def deployed_lenet():
    images = generate_mnist_like(48, seed=0).images
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=BITS, weight_bits=BITS, input_bits=8),
        images[:32],
    )
    return deployed


def _weight_layers(module):
    return [m for m in module.modules() if isinstance(m, (Conv2d, Linear))]


class TestSnap:
    def test_snaps_every_fast_path_layer_onto_the_grid(self, deployed_lenet):
        module = copy.deepcopy(deployed_lenet)
        records = snap_scales_pow2(module)
        # LeNet's fast path: conv1, conv2, and the hidden linear (the
        # classifier tail has no trailing quantizer and is left alone).
        assert len(records) == 3
        for rec in records:
            assert 0 <= rec.shift <= MAX_SHIFT
            # new_scale · gain_out / (2^N · gain_in) == 2^-shift exactly.
            assert rec.new_scale > 0
        # Every snapped layer's weights sit on its new grid.
        for m, rec in zip(_weight_layers(module)[:3], records):
            assert math.isclose(m._grid_scale, rec.new_scale, rel_tol=0, abs_tol=0)
            step = rec.new_scale / 2 ** BITS
            codes = m.weight.data / step
            np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_idempotent(self, deployed_lenet):
        module = copy.deepcopy(deployed_lenet)
        snap_scales_pow2(module)
        before = [m.weight.data.tobytes() for m in _weight_layers(module)]
        again = snap_scales_pow2(module)
        assert all(not rec.snapped for rec in again)
        assert [m.weight.data.tobytes() for m in _weight_layers(module)] == before

    def test_weight_perturbation_bounded_by_half_step(self, deployed_lenet):
        module = copy.deepcopy(deployed_lenet)
        for rec in snap_scales_pow2(module):
            if rec.snapped:
                half_step = rec.new_scale / 2 ** BITS / 2
                # Rounding moves each weight at most half a grid step; when
                # the scale shrinks, weights near the old ±scale/2 edge also
                # clip to the new edge, adding at most (old−new)/2.
                clip = max(0.0, (rec.old_scale - rec.new_scale) / 2)
                assert rec.max_weight_delta <= clip + half_step

    def test_off_range_shift_raises_before_mutating(self, deployed_lenet):
        module = copy.deepcopy(deployed_lenet)
        layers = _weight_layers(module)
        # First layer needs a left shift (q_scale > 1) → hard error; the
        # *other* layers are snappable, and must not have been touched.
        _stamp_grid(layers[0], 1e9, BITS)
        before = [m.weight.data.tobytes() for m in layers]
        scales = [m._grid_scale for m in layers]
        with pytest.raises(ValueError, match="outside"):
            snap_scales_pow2(module)
        assert [m.weight.data.tobytes() for m in layers] == before
        assert [m._grid_scale for m in layers] == scales
