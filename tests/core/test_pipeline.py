"""Tests for the end-to-end quantization pipeline (kept small/fast)."""

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig, PipelineReport, QuantizationPipeline
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet


@pytest.fixture(scope="module")
def report():
    train = generate_mnist_like(800, seed=0)
    test = generate_mnist_like(300, seed=99)
    config = PipelineConfig(signal_bits=3, weight_bits=3, epochs=10, seed=0)
    return QuantizationPipeline(config).run("lenet", train, test)


class TestPipeline:
    def test_report_fields(self, report):
        assert isinstance(report, PipelineReport)
        assert report.model_name == "lenet"
        assert report.signal_bits == 3
        for value in (
            report.ideal_accuracy,
            report.without_accuracy,
            report.with_accuracy,
            report.proposed_fp32_accuracy,
        ):
            assert 0.0 <= value <= 100.0

    def test_training_actually_learned(self, report):
        assert report.ideal_accuracy > 60.0

    def test_proposed_recovers_accuracy(self, report):
        """The headline claim, at its crudest: w/ ≥ w/o at 3 bits."""
        assert report.with_accuracy >= report.without_accuracy - 2.0

    def test_outcome_consistency(self, report):
        outcome = report.outcome
        assert outcome.recovered == pytest.approx(
            report.with_accuracy - report.without_accuracy
        )
        assert outcome.drop == pytest.approx(report.ideal_accuracy - report.with_accuracy)

    def test_summary_renders(self, report):
        text = report.summary()
        assert "lenet" in text and "recovered" in text

    def test_info_counts(self, report):
        assert report.info["quantized_activations"] == 3


class TestPipelineVariants:
    def test_callable_model_source(self):
        train = generate_mnist_like(150, seed=0)
        test = generate_mnist_like(80, seed=99)
        config = PipelineConfig(signal_bits=4, weight_bits=None, epochs=2, seed=0)
        report = QuantizationPipeline(config).run(
            lambda: LeNet(width_multiplier=0.5, rng=np.random.default_rng(0)),
            train,
            test,
            model_name="custom-lenet",
        )
        assert report.model_name == "custom-lenet"
        assert report.weight_bits is None

    def test_signal_only_has_32bit_weights(self):
        train = generate_mnist_like(150, seed=0)
        test = generate_mnist_like(80, seed=99)
        config = PipelineConfig(signal_bits=None, weight_bits=4, epochs=2, seed=0)
        report = QuantizationPipeline(config).run("lenet", train, test)
        assert report.outcome.bits == 4
