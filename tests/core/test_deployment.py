"""Tests for model deployment (quantized twins + dynamic fixed point baseline)."""

import numpy as np
import pytest

from repro import nn
from repro.core.deployment import (
    DeploymentConfig,
    DynamicQuantizedActivation,
    deploy_dynamic_fixed_point,
    deploy_model,
)
from repro.core.modules import QuantizedActivation
from repro.models import LeNet, ResNetCifar
from repro.nn.tensor import Tensor, no_grad


@pytest.fixture
def lenet(rng):
    return LeNet(width_multiplier=0.5, rng=rng)


class TestDeploymentConfig:
    def test_invalid_weight_mode(self):
        with pytest.raises(ValueError):
            DeploymentConfig(weight_mode="fancy")


class TestDeployModel:
    def test_original_untouched(self, lenet, rng):
        before = lenet.conv1.weight.data.copy()
        deploy_model(lenet, DeploymentConfig(signal_bits=4, weight_bits=4))
        np.testing.assert_allclose(lenet.conv1.weight.data, before)

    def test_activations_wrapped(self, lenet):
        deployed, info = deploy_model(lenet, DeploymentConfig(signal_bits=4, weight_bits=None, weight_mode="none"))
        assert info.quantized_activations == 3
        wrapped = [m for m in deployed.modules() if isinstance(m, QuantizedActivation)]
        assert len(wrapped) == 3

    def test_signal_bits_none_keeps_relus(self, lenet):
        deployed, info = deploy_model(
            lenet, DeploymentConfig(signal_bits=None, weight_bits=4)
        )
        assert info.quantized_activations == 0
        assert not any(isinstance(m, QuantizedActivation) for m in deployed.modules())

    def test_clustered_weights_on_grid(self, lenet):
        deployed, info = deploy_model(
            lenet, DeploymentConfig(signal_bits=None, weight_bits=4, weight_mode="clustered")
        )
        scale = info.clustering.results["conv1.weight"].scale
        codes = deployed.conv1.weight.data * 16 / scale
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)

    def test_naive_weights_saturate_at_half(self, lenet):
        lenet.fc2.weight.data *= 10
        deployed, _ = deploy_model(
            lenet, DeploymentConfig(signal_bits=None, weight_bits=4, weight_mode="naive")
        )
        assert np.abs(deployed.fc2.weight.data).max() <= 0.5

    def test_deployed_outputs_quantized_signals(self, lenet, rng):
        deployed, _ = deploy_model(lenet, DeploymentConfig(signal_bits=3, weight_bits=None, weight_mode="none"))
        captured = []
        for module in deployed.modules():
            if isinstance(module, QuantizedActivation):
                module.register_forward_hook(lambda m, i, o: captured.append(o.data))
        with no_grad():
            deployed(Tensor(rng.normal(size=(2, 1, 28, 28))))
        for signals in captured:
            np.testing.assert_allclose(signals, np.rint(signals))
            assert signals.max() <= 7

    def test_resnet_bn_folded(self, rng):
        model = ResNetCifar(width_multiplier=0.1, rng=rng)
        model.train()
        model(Tensor(rng.normal(size=(4, 3, 32, 32))))
        model.eval()
        deployed, info = deploy_model(model, DeploymentConfig(signal_bits=4, weight_bits=4))
        assert info.folded_batchnorms == 20  # 17 main convs + 3 shortcuts
        from repro.nn.modules import BatchNorm2d

        assert not any(isinstance(m, BatchNorm2d) and not isinstance(m, nn.Identity)
                       for m in deployed.modules() if isinstance(m, BatchNorm2d))

    def test_input_bits_requires_calibration(self, lenet):
        with pytest.raises(ValueError):
            deploy_model(lenet, DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=4))

    def test_input_quantizer_prepended(self, lenet, rng):
        images = rng.normal(size=(4, 1, 28, 28))
        deployed, _ = deploy_model(
            lenet,
            DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
            calibration_images=images,
        )
        out = deployed(Tensor(images))
        assert out.shape == (4, 10)


class TestDynamicFixedPointDeployment:
    def test_all_relus_wrapped(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        deployed, info = deploy_dynamic_fixed_point(lenet, images, bits=8)
        wrapped = [m for m in deployed.modules() if isinstance(m, DynamicQuantizedActivation)]
        assert len(wrapped) == 3
        assert info.quantized_activations == 3

    def test_per_layer_formats_recorded(self, lenet, rng):
        images = rng.normal(size=(8, 1, 28, 28))
        _, info = deploy_dynamic_fixed_point(lenet, images, bits=8)
        weight_formats = [k for k in info.dynamic_formats if k.endswith(".weight")]
        act_formats = [k for k in info.dynamic_formats if k.endswith(".act")]
        assert len(weight_formats) == 4
        assert len(act_formats) == 3

    def test_8bit_accuracy_close_to_float(self, lenet, rng):
        """Gysel's claim: 8-bit dynamic fixed point ≈ float accuracy."""
        images = rng.normal(size=(16, 1, 28, 28))
        deployed, _ = deploy_dynamic_fixed_point(lenet, images, bits=8)
        with no_grad():
            float_logits = lenet(Tensor(images)).data
            q_logits = deployed(Tensor(images)).data
        assert (float_logits.argmax(1) == q_logits.argmax(1)).mean() >= 0.9

    def test_weights_quantized(self, lenet, rng):
        images = rng.normal(size=(4, 1, 28, 28))
        deployed, info = deploy_dynamic_fixed_point(lenet, images, bits=8)
        fmt = info.dynamic_formats["conv1.weight"]
        codes = deployed.conv1.weight.data / fmt.step
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)
