"""Tests for the network-wide IFC conversion gain."""

import numpy as np
import pytest

from repro import nn
from repro.core.deployment import DeploymentConfig, calibrate_signal_gain, deploy_model
from repro.core.modules import QuantizedActivation
from repro.core.ste import ste_quantize_signals
from repro.models import LeNet, ResNetCifar
from repro.nn.tensor import Tensor


class TestSTEGain:
    def test_gain_one_is_plain_quantization(self, rng):
        from repro.core.quantizers import quantize_signals

        x = Tensor(rng.uniform(0, 20, size=40))
        out = ste_quantize_signals(x, bits=4, gain=1.0)
        np.testing.assert_allclose(out.data, quantize_signals(x.data, 4))

    def test_gain_scales_resolution(self):
        # With gain 4, steps are 0.25 — 0.3 rounds to 0.25 instead of 0.
        x = Tensor(np.array([0.3]))
        coarse = ste_quantize_signals(x, bits=4, gain=1.0)
        fine = ste_quantize_signals(x, bits=4, gain=4.0)
        assert coarse.data[0] == 0.0
        assert fine.data[0] == pytest.approx(0.25)

    def test_gain_shrinks_representable_range(self):
        x = Tensor(np.array([10.0]))
        out = ste_quantize_signals(x, bits=4, gain=4.0)
        # top = 15/4 = 3.75
        assert out.data[0] == pytest.approx(3.75)

    def test_outputs_are_counts_over_gain(self, rng):
        gain = 2.5
        x = Tensor(rng.uniform(0, 6, size=50))
        out = ste_quantize_signals(x, bits=4, gain=gain)
        counts = out.data * gain
        np.testing.assert_allclose(counts, np.rint(counts), atol=1e-9)

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            ste_quantize_signals(Tensor(np.zeros(2)), bits=4, gain=0.0)

    def test_gradient_mask_respects_gain(self):
        x = Tensor(np.array([1.0, 10.0]), requires_grad=True)
        ste_quantize_signals(x, bits=4, gain=4.0).sum().backward()
        # top = 3.75: gradient flows at 1.0, blocked at 10.0
        np.testing.assert_allclose(x.grad, [1.0, 0.0])


class TestQuantizedActivationGain:
    def test_gain_stored_and_applied(self):
        act = QuantizedActivation(nn.ReLU(), bits=4, gain=2.0)
        out = act(Tensor(np.array([0.3])))
        np.testing.assert_allclose(out.data, [0.5])  # round(0.6)/2

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            QuantizedActivation(nn.ReLU(), bits=4, gain=-1.0)


class TestCalibration:
    def test_gain_maps_peak_to_window(self, rng):
        model = nn.Sequential(nn.Linear(4, 8, rng=rng), nn.ReLU())
        images = rng.normal(size=(64, 4))
        gain = calibrate_signal_gain(model, images, bits=4)
        # After scaling, the p99.9 signal lands at 15.
        from repro.nn.tensor import no_grad

        with no_grad():
            out = model(Tensor(images)).data
        peak = np.percentile(out[out > 0], 99.9)
        assert gain * peak == pytest.approx(15.0, rel=1e-6)

    def test_no_relu_raises(self, rng):
        model = nn.Sequential(nn.Linear(4, 2, rng=rng))
        with pytest.raises(ValueError):
            calibrate_signal_gain(model, rng.normal(size=(8, 4)), bits=4)

    def test_dead_model_returns_one(self, rng):
        model = nn.Sequential(nn.Linear(4, 2, rng=rng), nn.ReLU())
        model.layers[0].weight.data[...] = 0.0
        model.layers[0].bias.data[...] = -1.0
        assert calibrate_signal_gain(model, rng.normal(size=(8, 4)), bits=4) == 1.0


class TestAutoGainDeployment:
    def test_auto_requires_calibration(self, rng):
        model = LeNet(width_multiplier=0.5, rng=rng)
        with pytest.raises(ValueError):
            deploy_model(
                model,
                DeploymentConfig(signal_bits=4, weight_bits=None,
                                 weight_mode="none", signal_gain="auto"),
            )

    def test_invalid_gain_string(self):
        with pytest.raises(ValueError):
            DeploymentConfig(signal_gain="automatic")

    def test_invalid_gain_value(self):
        with pytest.raises(ValueError):
            DeploymentConfig(signal_gain=-2.0)

    def test_auto_gain_recorded_and_uniform(self, rng):
        model = LeNet(width_multiplier=0.5, rng=rng)
        images = rng.normal(size=(32, 1, 28, 28))
        deployed, info = deploy_model(
            model,
            DeploymentConfig(signal_bits=4, weight_bits=None,
                             weight_mode="none", signal_gain="auto"),
            calibration_images=images,
        )
        gains = {
            m.gain for m in deployed.modules() if isinstance(m, QuantizedActivation)
        }
        assert gains == {info.signal_gain}

    def test_auto_gain_helps_small_signal_networks(self, rng):
        """A network whose signals live in [0, 1] is destroyed by gain-1
        integer quantization but fine with a calibrated gain."""
        model = nn.Sequential(
            nn.Linear(8, 16, rng=rng), nn.ReLU(), nn.Linear(16, 4, rng=rng)
        )
        model.layers[0].weight.data *= 0.1  # squash signals well below 1
        images = rng.normal(size=(64, 8))

        from repro.nn.tensor import no_grad

        with no_grad():
            reference = model(Tensor(images)).data.argmax(1)

        unit, _ = deploy_model(
            model,
            DeploymentConfig(signal_bits=4, weight_bits=None, weight_mode="none",
                             signal_gain=1.0),
        )
        auto, _ = deploy_model(
            model,
            DeploymentConfig(signal_bits=4, weight_bits=None, weight_mode="none",
                             signal_gain="auto"),
            calibration_images=images,
        )
        with no_grad():
            unit_match = (unit(Tensor(images)).data.argmax(1) == reference).mean()
            auto_match = (auto(Tensor(images)).data.argmax(1) == reference).mean()
        assert auto_match > unit_match


class TestNoBatchnormResNet:
    def test_builds_without_bn(self, rng):
        from repro.nn.modules import BatchNorm2d

        model = ResNetCifar(width_multiplier=0.1, use_batchnorm=False, rng=rng)
        assert not any(isinstance(m, BatchNorm2d) for m in model.modules())

    def test_convs_have_bias(self, rng):
        model = ResNetCifar(width_multiplier=0.1, use_batchnorm=False, rng=rng)
        assert model.stem.bias is not None

    def test_forward_and_backward(self, rng):
        model = ResNetCifar(width_multiplier=0.1, use_batchnorm=False, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)
        out.sum().backward()
        assert model.stem.weight.grad is not None

    def test_registry_passes_kwargs(self, rng):
        from repro.models import build_model
        from repro.nn.modules import BatchNorm2d

        model = build_model("resnet", width_multiplier=0.1, rng=rng,
                            use_batchnorm=False)
        assert not any(isinstance(m, BatchNorm2d) for m in model.modules())
