"""Tests for SignalTap, module replacement, and batchnorm folding."""

import numpy as np
import pytest

from repro import nn
from repro.core.modules import QuantizedActivation
from repro.core.surgery import (
    clone_module,
    fold_batchnorm,
    replace_modules,
    weight_bearing_modules,
)
from repro.core.taps import SignalTap, default_signal_modules
from repro.nn.tensor import Tensor


def mlp(rng):
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 6, rng=rng), nn.ReLU(),
        nn.Linear(6, 3, rng=rng),
    )


class TestSignalTap:
    def test_default_selector_finds_relus(self, rng):
        assert len(default_signal_modules(mlp(rng))) == 2

    def test_records_per_forward(self, rng):
        model = mlp(rng)
        with SignalTap(model) as tap:
            model(Tensor(rng.normal(size=(2, 4))))
            assert len(tap.signals) == 2
            assert tap.signals[0].shape == (2, 8)

    def test_signals_accumulate_until_cleared(self, rng):
        model = mlp(rng)
        with SignalTap(model) as tap:
            model(Tensor(rng.normal(size=(2, 4))))
            model(Tensor(rng.normal(size=(2, 4))))
            assert len(tap.signals) == 4
            tap.clear()
            assert tap.signals == []

    def test_detach_removes_hooks(self, rng):
        model = mlp(rng)
        tap = SignalTap(model).attach()
        tap.detach()
        model(Tensor(rng.normal(size=(2, 4))))
        assert tap.signals == []

    def test_double_attach_raises(self, rng):
        tap = SignalTap(mlp(rng)).attach()
        with pytest.raises(RuntimeError):
            tap.attach()

    def test_no_matching_modules_raises(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng))
        with pytest.raises(ValueError):
            SignalTap(model)

    def test_collect_distribution_single_layer(self, rng):
        model = mlp(rng)
        x = Tensor(rng.normal(size=(3, 4)))
        with SignalTap(model) as tap:
            values = tap.collect_distribution(lambda: model(x), layer_index=0)
        assert values.shape == (24,)
        assert np.all(values >= 0)

    def test_collect_distribution_all_layers(self, rng):
        model = mlp(rng)
        x = Tensor(rng.normal(size=(3, 4)))
        with SignalTap(model) as tap:
            values = tap.collect_distribution(lambda: model(x))
        assert values.shape == (24 + 18,)


class TestCloneModule:
    def test_clone_is_independent(self, rng):
        model = mlp(rng)
        twin = clone_module(model)
        twin.layers[0].weight.data[...] = 0.0
        assert not np.allclose(model.layers[0].weight.data, 0.0)

    def test_clone_preserves_outputs(self, rng):
        model = mlp(rng)
        twin = clone_module(model)
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(model(x).data, twin(x).data)

    def test_clone_drops_hooks(self, rng):
        model = mlp(rng)
        seen = []
        model.layers[1].register_forward_hook(lambda m, i, o: seen.append(1))
        twin = clone_module(model)
        twin(Tensor(rng.normal(size=(1, 4))))
        assert seen == []


class TestReplaceModules:
    def test_replace_relus(self, rng):
        model = mlp(rng)
        count = replace_modules(
            model,
            predicate=lambda m: isinstance(m, nn.ReLU),
            factory=lambda old: QuantizedActivation(old, bits=4),
        )
        assert count == 2
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("QuantizedActivation") == 2

    def test_replacement_participates_in_forward(self, rng):
        model = mlp(rng)
        replace_modules(
            model,
            predicate=lambda m: isinstance(m, nn.ReLU),
            factory=lambda old: QuantizedActivation(old, bits=4),
        )
        out = model(Tensor(rng.normal(size=(2, 4)) * 5))
        # Hidden signals are integers now; output layer is affine in them.
        assert out.shape == (2, 3)

    def test_replace_updates_attributes(self, rng):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.act = nn.ReLU()

            def forward(self, x):
                return self.act(x)

        net = Net()
        replace_modules(
            net, lambda m: isinstance(m, nn.ReLU),
            lambda old: QuantizedActivation(old, bits=3),
        )
        assert isinstance(net.act, QuantizedActivation)

    def test_no_matches_returns_zero(self, rng):
        model = nn.Sequential(nn.Linear(2, 2, rng=rng))
        assert replace_modules(model, lambda m: isinstance(m, nn.ReLU), lambda m: m) == 0


class TestFoldBatchnorm:
    def _conv_bn(self, rng):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.conv = nn.Conv2d(2, 4, 3, padding=1, bias=False, rng=rng)
                self.bn = nn.BatchNorm2d(4)
                self.relu = nn.ReLU()

            def forward(self, x):
                return self.relu(self.bn(self.conv(x)))

        return Net()

    def test_fold_preserves_eval_outputs(self, rng):
        net = self._conv_bn(rng)
        # Give BN non-trivial statistics.
        net.train()
        net(Tensor(rng.normal(size=(8, 2, 5, 5)) * 2 + 1))
        net.eval()
        x = Tensor(rng.normal(size=(3, 2, 5, 5)))
        before = net(x).data
        folds = fold_batchnorm(net)
        assert folds == 1
        after = net(x).data
        np.testing.assert_allclose(after, before, atol=1e-10)

    def test_fold_replaces_bn_with_identity(self, rng):
        net = self._conv_bn(rng)
        fold_batchnorm(net)
        assert isinstance(net.bn, nn.Identity)

    def test_fold_creates_bias_if_missing(self, rng):
        net = self._conv_bn(rng)
        assert net.conv.bias is None
        fold_batchnorm(net)
        assert net.conv.bias is not None

    def test_fold_resnet_block(self, rng):
        from repro.models.resnet import BasicBlock

        block = BasicBlock(3, 6, stride=2, rng=rng)
        block.train()
        block(Tensor(rng.normal(size=(4, 3, 8, 8))))
        block.eval()
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        before = block(x).data
        folds = fold_batchnorm(block)
        assert folds == 3  # conv1+bn1, conv2+bn2, shortcut conv+bn
        np.testing.assert_allclose(block(x).data, before, atol=1e-9)

    def test_fold_whole_resnet_preserves_predictions(self, rng):
        from repro.models import ResNetCifar

        model = ResNetCifar(width_multiplier=0.1, rng=rng)
        model.train()
        model(Tensor(rng.normal(size=(4, 3, 32, 32))))
        model.eval()
        x = Tensor(rng.normal(size=(2, 3, 32, 32)))
        before = model(x).data
        fold_batchnorm(model)
        np.testing.assert_allclose(model(x).data, before, atol=1e-8)

    def test_nothing_to_fold(self, rng):
        assert fold_batchnorm(mlp(rng)) == 0


class TestWeightBearing:
    def test_finds_conv_and_linear(self, rng):
        from repro.models import LeNet

        layers = weight_bearing_modules(LeNet(rng=rng))
        names = [name for name, _ in layers]
        assert names == ["conv1", "conv2", "fc1", "fc2"]
