"""Tests for the Neuron Convergence training-side manager."""

import numpy as np
import pytest

from repro import nn
from repro.core.neuron_convergence import NeuronConvergence, fraction_outside_range
from repro.nn.tensor import Tensor


def mlp(rng):
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng), nn.ReLU(), nn.Linear(8, 3, rng=rng), nn.ReLU(),
        nn.Linear(3, 2, rng=rng),
    )


class TestConstruction:
    def test_taps_all_relus(self, rng):
        reg = NeuronConvergence(mlp(rng), bits=4)
        assert len(reg.tap.targets) == 2

    def test_negative_strength_raises(self, rng):
        with pytest.raises(ValueError):
            NeuronConvergence(mlp(rng), bits=4, strength=-1.0)

    def test_layer_weights_length_check(self, rng):
        with pytest.raises(ValueError):
            NeuronConvergence(mlp(rng), bits=4, layer_weights=[1.0])

    def test_custom_layer_weights(self, rng):
        reg = NeuronConvergence(mlp(rng), bits=4, layer_weights=[2.0, 0.5])
        assert reg.layer_weights == [2.0, 0.5]


class TestTerm:
    def test_term_requires_forward(self, rng):
        model = mlp(rng)
        with NeuronConvergence(model, bits=4) as reg:
            with pytest.raises(RuntimeError):
                reg.term()

    def test_term_is_scalar_and_nonnegative(self, rng):
        model = mlp(rng)
        with NeuronConvergence(model, bits=4, strength=1e-2) as reg:
            model(Tensor(rng.normal(size=(3, 4))))
            term = reg.term()
        assert term.size == 1
        assert term.item() >= 0.0

    def test_term_clears_signals(self, rng):
        model = mlp(rng)
        with NeuronConvergence(model, bits=4) as reg:
            model(Tensor(rng.normal(size=(3, 4))))
            reg.term()
            assert reg.tap.signals == []

    def test_term_scales_with_strength(self, rng):
        model = mlp(rng)
        x = Tensor(rng.normal(size=(3, 4)))
        values = []
        for strength in (1e-3, 1e-2):
            with NeuronConvergence(model, bits=4, strength=strength) as reg:
                model(x)
                values.append(reg.term().item())
        np.testing.assert_allclose(values[1], values[0] * 10, rtol=1e-9)

    def test_term_backpropagates_to_weights(self, rng):
        model = mlp(rng)
        with NeuronConvergence(model, bits=4, strength=1.0) as reg:
            model(Tensor(rng.normal(size=(3, 4)) * 10))
            reg.term().backward()
        assert model.layers[0].weight.grad is not None

    def test_none_penalty_gives_zero(self, rng):
        model = mlp(rng)
        with NeuronConvergence(model, bits=4, penalty="none") as reg:
            model(Tensor(rng.normal(size=(3, 4))))
            assert reg.term().item() == 0.0

    def test_batch_normalization_of_term(self, rng):
        """Doubling the batch (same rows repeated) keeps the term equal."""
        model = mlp(rng)
        x = rng.normal(size=(3, 4))
        with NeuronConvergence(model, bits=4) as reg:
            model(Tensor(x))
            single = reg.term().item()
            model(Tensor(np.vstack([x, x])))
            double = reg.term().item()
        np.testing.assert_allclose(single, double, rtol=1e-9)


class TestDiagnostics:
    def test_signal_statistics(self, rng):
        model = mlp(rng)
        with NeuronConvergence(model, bits=4) as reg:
            model(Tensor(rng.normal(size=(5, 4))))
            stats = reg.signal_statistics()
        assert len(stats) == 2
        for entry in stats:
            assert 0.0 <= entry["sparsity"] <= 1.0
            assert 0.0 <= entry["fraction_in_range"] <= 1.0

    def test_fraction_outside_range(self):
        signals = np.array([0.0, 4.0, 9.0, 20.0])
        assert fraction_outside_range(signals, bits=4) == 0.5  # T=8: {9, 20}
