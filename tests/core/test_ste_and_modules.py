"""Tests for STE quantizers and the quantization wrapper modules."""

import numpy as np
import pytest

from repro import nn
from repro.core.modules import (
    InputQuantizer,
    QuantizedActivation,
    calibrate_input_quantizer,
)
from repro.core.ste import ste_quantize_signals, ste_quantize_weights
from repro.nn.tensor import Tensor


class TestSTESignals:
    def test_forward_matches_quantizer(self, rng):
        from repro.core.quantizers import quantize_signals

        x = Tensor(rng.uniform(-2, 20, size=30))
        out = ste_quantize_signals(x, bits=4)
        np.testing.assert_allclose(out.data, quantize_signals(x.data, 4))

    def test_gradient_passes_in_range(self):
        x = Tensor(np.array([3.2, 7.9]), requires_grad=True)
        ste_quantize_signals(x, bits=4).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_gradient_blocked_outside(self):
        x = Tensor(np.array([-1.0, 40.0]), requires_grad=True)
        ste_quantize_signals(x, bits=4).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0])


class TestSTEWeights:
    def test_forward_on_grid(self, rng):
        out = ste_quantize_weights(Tensor(rng.normal(size=20)), bits=4)
        codes = out.data * 16
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)

    def test_gradient_mask(self):
        w = Tensor(np.array([0.2, 3.0]), requires_grad=True)
        ste_quantize_weights(w, bits=4).sum().backward()
        np.testing.assert_allclose(w.grad, [1.0, 0.0])

    def test_scale_respected(self):
        w = Tensor(np.array([0.9]))
        out = ste_quantize_weights(w, bits=2, scale=2.0)
        # grid spacing 2/4 = 0.5 → 0.9 snaps to 1.0
        np.testing.assert_allclose(out.data, [1.0])


class TestQuantizedActivation:
    def test_wraps_relu(self, rng):
        act = QuantizedActivation(nn.ReLU(), bits=4)
        x = Tensor(np.array([-5.0, 2.3, 99.0]))
        np.testing.assert_allclose(act(x).data, [0.0, 2.0, 15.0])

    def test_disabled_is_transparent(self):
        act = QuantizedActivation(nn.ReLU(), bits=4, enabled=False)
        x = Tensor(np.array([1.7]))
        np.testing.assert_allclose(act(x).data, [1.7])

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            QuantizedActivation(nn.ReLU(), bits=0)

    def test_inner_module_registered(self):
        act = QuantizedActivation(nn.ReLU(), bits=4)
        assert any(isinstance(m, nn.ReLU) for m in act.modules())

    def test_gradients_flow_for_finetuning(self, rng):
        """QAT fine-tuning through the wrapper must reach the weights."""
        layer = nn.Linear(4, 4, rng=rng)
        act = QuantizedActivation(nn.ReLU(), bits=4)
        x = Tensor(rng.normal(size=(2, 4)) + 2)
        act(layer(x)).sum().backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0


class TestInputQuantizer:
    def test_roundtrip_scale(self):
        q = InputQuantizer(bits=4, offset=-1.0, gain=7.5)
        x = Tensor(np.array([-1.0, 0.0, 1.0]))
        out = q(x).data
        # endpoints map to 0 and 15 → back to -1.0 and +1.0
        np.testing.assert_allclose(out[[0, 2]], [-1.0, 1.0])
        assert np.abs(out[1]).max() <= 0.1

    def test_invalid_gain(self):
        with pytest.raises(ValueError):
            InputQuantizer(bits=4, gain=0.0)

    def test_calibration_covers_range(self, rng):
        images = rng.normal(size=(10, 1, 4, 4)) * 3
        q = calibrate_input_quantizer(images, bits=5)
        out = q(Tensor(images)).data
        assert out.min() >= images.min() - 1e-9
        assert out.max() <= images.max() + 1e-9

    def test_calibrated_error_small_at_8_bits(self, rng):
        images = rng.normal(size=(10, 1, 4, 4))
        q = calibrate_input_quantizer(images, bits=8)
        out = q(Tensor(images)).data
        span = images.max() - images.min()
        assert np.abs(out - images).max() <= span / 255 + 1e-9

    def test_quantization_is_coarse_at_low_bits(self, rng):
        images = rng.normal(size=(5, 1, 3, 3))
        q = calibrate_input_quantizer(images, bits=2)
        out = q(Tensor(images)).data
        assert len(np.unique(np.round(out, 9))) <= 4
