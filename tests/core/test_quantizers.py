"""Unit + property tests for the quantization primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import quantizers as Q

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=8),
    elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
)


class TestSignalQuantizer:
    def test_levels(self):
        assert Q.signal_levels(4) == 16
        assert Q.signal_levels(8) == 256

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            Q.signal_levels(0)
        with pytest.raises(ValueError):
            Q.quantize_signals(np.zeros(2), 0)

    def test_rounding(self):
        out = Q.quantize_signals(np.array([0.4, 0.6, 2.5, 3.49]), 4)
        np.testing.assert_allclose(out, [0, 1, 3, 3])

    def test_saturation_at_top(self):
        out = Q.quantize_signals(np.array([100.0, 15.2, 14.9]), 4)
        np.testing.assert_allclose(out, [15, 15, 15])

    def test_negative_clamps_to_zero(self):
        np.testing.assert_allclose(Q.quantize_signals(np.array([-3.0]), 4), [0])

    @given(finite_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_range_property(self, values, bits):
        out = Q.quantize_signals(values, bits)
        assert out.min() >= 0
        assert out.max() <= 2 ** bits - 1

    @given(finite_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, values, bits):
        once = Q.quantize_signals(values, bits)
        np.testing.assert_allclose(Q.quantize_signals(once, bits), once)

    @given(finite_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_outputs_are_integers(self, values, bits):
        out = Q.quantize_signals(values, bits)
        np.testing.assert_allclose(out, np.rint(out))

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=10),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, values, bits):
        ordered = np.sort(np.array(values))
        out = Q.quantize_signals(ordered, bits)
        assert np.all(np.diff(out) >= 0)

    def test_in_range_integers_are_fixed_points(self):
        values = np.arange(16, dtype=float)
        np.testing.assert_allclose(Q.quantize_signals(values, 4), values)

    def test_error_bounded_by_half_in_range(self, rng):
        values = rng.uniform(0, 15, size=100)
        out = Q.quantize_signals(values, 4)
        assert np.abs(out - values).max() <= 0.5 + 1e-12

    def test_signal_quantization_error(self):
        assert Q.signal_quantization_error(np.array([1.0, 2.0]), 4) == 0.0
        assert Q.signal_quantization_error(np.array([1.3]), 4) > 0.0


class TestWeightGrid:
    def test_grid_contents(self):
        grid = Q.weight_grid(2)
        np.testing.assert_allclose(grid, [-0.5, -0.25, 0.0, 0.25, 0.5])

    def test_grid_size(self):
        assert len(Q.weight_grid(4)) == 2 ** 4 + 1

    def test_grid_scaling(self):
        np.testing.assert_allclose(Q.weight_grid(2, scale=2.0), [-1, -0.5, 0, 0.5, 1])

    def test_grid_symmetric(self):
        grid = Q.weight_grid(5)
        np.testing.assert_allclose(grid, -grid[::-1])


class TestWeightQuantizer:
    def test_zero_preserved(self):
        np.testing.assert_allclose(Q.quantize_weights_fixed_point(np.zeros(3), 4), 0.0)

    def test_saturation(self):
        out = Q.quantize_weights_fixed_point(np.array([10.0, -10.0]), 4)
        np.testing.assert_allclose(out, [0.5, -0.5])

    def test_grid_spacing(self):
        out = Q.quantize_weights_fixed_point(np.array([0.1, 0.11]), 3)
        # 3-bit spacing is 1/8 = 0.125
        np.testing.assert_allclose(out, [0.125, 0.125])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Q.quantize_weights_fixed_point(np.zeros(2), 0)
        with pytest.raises(ValueError):
            Q.quantize_weights_fixed_point(np.zeros(2), 4, scale=0.0)

    @given(finite_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_outputs_on_grid(self, values, bits):
        out = Q.quantize_weights_fixed_point(values, bits)
        codes = out * (2 ** bits)
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)
        assert np.abs(out).max() <= 0.5 + 1e-12

    @given(finite_arrays, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, values, bits):
        once = Q.quantize_weights_fixed_point(values, bits)
        np.testing.assert_allclose(Q.quantize_weights_fixed_point(once, bits), once)

    def test_error_within_half_step_in_range(self, rng):
        values = rng.uniform(-0.5, 0.5, size=200)
        out = Q.quantize_weights_fixed_point(values, 4)
        assert np.abs(out - values).max() <= 0.5 / 16 + 1e-12

    def test_weight_quantization_error_zero_on_grid(self):
        grid = Q.weight_grid(4)
        assert Q.weight_quantization_error(grid, 4) == 0.0


class TestDynamicFixedPoint:
    def test_format_properties(self):
        fmt = Q.DynamicFixedPointFormat(bits=8, fractional_bits=4)
        assert fmt.step == 1 / 16
        assert fmt.max_value == 127 / 16
        assert fmt.min_value == -128 / 16

    def test_fit_covers_peak(self, rng):
        values = rng.normal(size=100) * 3
        fmt = Q.fit_dynamic_fixed_point(values, bits=8)
        assert fmt.max_value >= np.abs(values).max() * 0.5  # peak fits up to rounding

    def test_fit_small_values_gets_fine_grid(self):
        fmt = Q.fit_dynamic_fixed_point(np.array([0.01, -0.02]), bits=8)
        assert fmt.fractional_bits >= 8  # IL is negative for tiny ranges

    def test_fit_zero_array(self):
        fmt = Q.fit_dynamic_fixed_point(np.zeros(4), bits=8)
        assert fmt.fractional_bits == 7

    def test_fit_invalid_bits(self):
        with pytest.raises(ValueError):
            Q.fit_dynamic_fixed_point(np.ones(2), bits=1)

    def test_quantize_saturates(self):
        fmt = Q.DynamicFixedPointFormat(bits=4, fractional_bits=2)
        out = Q.quantize_dynamic_fixed_point(np.array([100.0, -100.0]), fmt)
        np.testing.assert_allclose(out, [7 / 4, -8 / 4])

    def test_8bit_dynamic_accuracy(self, rng):
        """At 8 bits the relative error on typical data is small (Gysel's point)."""
        values = rng.normal(size=1000)
        out = Q.quantize_dynamic(values, bits=8)
        relative = np.abs(out - values).mean() / np.abs(values).mean()
        assert relative < 0.02

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_quantize_dynamic_idempotent(self, values):
        once = Q.quantize_dynamic(values, bits=8)
        np.testing.assert_allclose(Q.quantize_dynamic(once, bits=8), once, atol=1e-12)

    def test_per_layer_formats_differ(self, rng):
        """The dynamic scheme's defining property: ranges adapt per tensor."""
        small = Q.fit_dynamic_fixed_point(rng.normal(size=50) * 0.01)
        large = Q.fit_dynamic_fixed_point(rng.normal(size=50) * 100.0)
        assert small.fractional_bits != large.fractional_bits
