"""Tests for the Trainer and its configuration."""

import numpy as np
import pytest

from repro import nn
from repro.core.qat import Trainer, TrainerConfig, train_model
from repro.nn.data import Dataset


def blob_dataset(rng, n=80):
    """Two separable blobs rendered as 1×4×4 'images'."""
    half = n // 2
    images = np.zeros((n, 1, 4, 4))
    images[:half] = rng.normal(-1.0, 0.3, size=(half, 1, 4, 4))
    images[half:] = rng.normal(1.0, 0.3, size=(half, 1, 4, 4))
    labels = np.array([0] * half + [1] * half)
    order = rng.permutation(n)
    return Dataset(images[order], labels[order])


def tiny_model(rng):
    return nn.Sequential(
        nn.Flatten(), nn.Linear(16, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng)
    )


class TestConfig:
    def test_defaults_valid(self):
        config = TrainerConfig()
        assert config.penalty == "none"

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)

    def test_invalid_optimizer(self):
        with pytest.raises(ValueError):
            TrainerConfig(optimizer="lbfgs")


class TestTraining:
    def test_loss_decreases(self, rng):
        data = blob_dataset(rng)
        model = tiny_model(rng)
        history = Trainer(TrainerConfig(epochs=5, lr=1e-2, seed=0)).fit(model, data)
        assert history.losses[-1] < history.losses[0]

    def test_learns_blobs(self, rng):
        data = blob_dataset(rng)
        model = tiny_model(rng)
        history = Trainer(TrainerConfig(epochs=12, lr=1e-2, seed=0)).fit(model, data, data)
        assert history.final_accuracy > 0.95

    def test_eval_accuracy_recorded_per_epoch(self, rng):
        data = blob_dataset(rng)
        history = Trainer(TrainerConfig(epochs=3, seed=0)).fit(tiny_model(rng), data, data)
        assert len(history.eval_accuracies) == 3

    def test_penalties_zero_without_regularizer(self, rng):
        data = blob_dataset(rng)
        history = Trainer(TrainerConfig(epochs=2, penalty="none", seed=0)).fit(
            tiny_model(rng), data
        )
        assert all(p == 0.0 for p in history.penalties)

    def test_proposed_penalty_recorded(self, rng):
        data = blob_dataset(rng)
        history = Trainer(
            TrainerConfig(epochs=2, penalty="proposed", bits=3, strength=1e-2, seed=0)
        ).fit(tiny_model(rng), data)
        assert any(p > 0.0 for p in history.penalties)

    def test_hooks_removed_after_fit(self, rng):
        data = blob_dataset(rng)
        model = tiny_model(rng)
        Trainer(
            TrainerConfig(epochs=1, penalty="proposed", bits=4, seed=0)
        ).fit(model, data)
        for module in model.modules():
            assert module._forward_hooks == []

    def test_hooks_removed_on_error(self, rng):
        model = tiny_model(rng)
        bad_data = Dataset(np.zeros((4, 1, 5, 5)), np.zeros(4, dtype=int))  # wrong size
        with pytest.raises(Exception):
            Trainer(TrainerConfig(epochs=1, penalty="proposed", seed=0)).fit(model, bad_data)
        for module in model.modules():
            assert module._forward_hooks == []

    def test_deterministic_given_seed(self, rng):
        data = blob_dataset(rng)
        model_a = tiny_model(np.random.default_rng(1))
        model_b = tiny_model(np.random.default_rng(1))
        Trainer(TrainerConfig(epochs=2, seed=5)).fit(model_a, data)
        Trainer(TrainerConfig(epochs=2, seed=5)).fit(model_b, data)
        np.testing.assert_allclose(
            model_a.layers[1].weight.data, model_b.layers[1].weight.data
        )

    def test_sgd_optimizer_path(self, rng):
        data = blob_dataset(rng)
        history = Trainer(
            TrainerConfig(epochs=3, optimizer="sgd", lr=0.05, seed=0)
        ).fit(tiny_model(rng), data)
        assert history.losses[-1] < history.losses[0]

    def test_regularizer_contains_signals(self, rng):
        """The proposed penalty pulls far more signals into [0, T] than
        unregularized training does (the Fig. 4 effect, in miniature)."""
        from repro.core.taps import SignalTap
        from repro.nn.tensor import Tensor, no_grad

        data = blob_dataset(rng, n=120)

        def overflow_after(penalty: str) -> float:
            model = tiny_model(np.random.default_rng(3))
            # Inflate initial weights so raw signals overflow T=2 heavily.
            model.layers[1].weight.data *= 4
            Trainer(
                TrainerConfig(epochs=15, lr=1e-2, penalty=penalty, bits=2,
                              strength=0.5, seed=0)
            ).fit(model, data)
            tap = SignalTap(model).attach()
            model.eval()
            with no_grad():
                model(Tensor(data.images))
            over = float((tap.signals[0].data > 2.0).mean())
            tap.detach()
            return over

        baseline = overflow_after("none")
        proposed = overflow_after("proposed")
        assert proposed < baseline * 0.6

    def test_train_model_convenience(self, rng):
        data = blob_dataset(rng)
        history = train_model(tiny_model(rng), data, epochs=2, seed=0)
        assert len(history.losses) == 2
