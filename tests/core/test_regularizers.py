"""Tests for the Eq. 3 regularizer and its Fig. 3 baselines."""

import numpy as np
import pytest

from repro.core import regularizers as R
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients


class TestThreshold:
    def test_values(self):
        assert R.convergence_threshold(2) == 2.0
        assert R.convergence_threshold(4) == 8.0
        assert R.convergence_threshold(8) == 128.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            R.convergence_threshold(0)


class TestProposedPenalty:
    def test_zero_at_zero(self):
        out = R.neuron_convergence_penalty(Tensor(np.zeros(5)), bits=4)
        assert out.item() == 0.0

    def test_inside_range_is_alpha_l1(self):
        signals = Tensor(np.array([1.0, -2.0, 3.0]))  # all |o| < 8
        out = R.neuron_convergence_penalty(signals, bits=4, alpha=0.1)
        np.testing.assert_allclose(out.item(), 0.1 * 6.0)

    def test_outside_range_adds_overflow(self):
        signals = Tensor(np.array([10.0]))  # T=8, overflow 2
        out = R.neuron_convergence_penalty(signals, bits=4, alpha=0.1)
        np.testing.assert_allclose(out.item(), 0.1 * 10.0 + 2.0)

    def test_matches_eq3_piecewise(self, rng):
        values = rng.normal(size=50) * 10
        bits, alpha = 3, 0.1
        threshold = 4.0
        expected = sum(
            alpha * abs(o) + (abs(o) - threshold) if abs(o) >= threshold else alpha * abs(o)
            for o in values
        )
        out = R.neuron_convergence_penalty(Tensor(values), bits=bits, alpha=alpha)
        np.testing.assert_allclose(out.item(), expected, rtol=1e-10)

    def test_gradient(self, rng):
        check_gradients(
            lambda s: R.neuron_convergence_penalty(s, bits=2, alpha=0.1),
            [rng.normal(size=(10,)) * 4 + 0.3],
        )

    def test_gradient_slope_inside_vs_outside(self):
        signals = Tensor(np.array([1.0, 20.0]), requires_grad=True)
        R.neuron_convergence_penalty(signals, bits=4, alpha=0.1).backward()
        np.testing.assert_allclose(signals.grad, [0.1, 1.1])


class TestBaselinePenalties:
    def test_l1(self, rng):
        values = rng.normal(size=20)
        out = R.l1_penalty(Tensor(values))
        np.testing.assert_allclose(out.item(), np.abs(values).sum())

    def test_truncated_l1_caps(self):
        signals = Tensor(np.array([1.0, 100.0]))
        out = R.truncated_l1_penalty(signals, bits=2)  # T = 2
        np.testing.assert_allclose(out.item(), 1.0 + 2.0)

    def test_truncated_l1_gradient_zero_above(self):
        signals = Tensor(np.array([1.0, 100.0]), requires_grad=True)
        R.truncated_l1_penalty(signals, bits=2).backward()
        np.testing.assert_allclose(signals.grad, [1.0, 0.0])

    def test_zero_penalty(self, rng):
        out = R.zero_penalty(Tensor(rng.normal(size=5)))
        assert out.item() == 0.0


class TestFactory:
    def test_all_names(self):
        for name in ("none", "l1", "truncated_l1", "proposed"):
            penalty = R.make_penalty(name, bits=4)
            value = penalty(Tensor(np.array([1.0, 9.0])))
            assert np.isfinite(value.item())

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            R.make_penalty("l2", bits=4)

    def test_proposed_binds_bits_and_alpha(self):
        penalty = R.make_penalty("proposed", bits=4, alpha=0.5)
        out = penalty(Tensor(np.array([10.0])))
        np.testing.assert_allclose(out.item(), 0.5 * 10 + 2.0)


class TestCurves:
    def test_fig3_shapes_at_bits2(self):
        values = np.array([-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0])
        none = R.regularizer_curve("none", values, bits=2)
        l1 = R.regularizer_curve("l1", values, bits=2)
        trunc = R.regularizer_curve("truncated_l1", values, bits=2)
        proposed = R.regularizer_curve("proposed", values, bits=2, alpha=0.1)
        np.testing.assert_allclose(none, 0.0)
        np.testing.assert_allclose(l1, np.abs(values))
        np.testing.assert_allclose(trunc, [2, 2, 1, 0, 1, 2, 2])
        np.testing.assert_allclose(proposed, [1.3, 0.2, 0.1, 0, 0.1, 0.2, 1.3])

    def test_curve_matches_tensor_penalty(self, rng):
        values = rng.normal(size=30) * 5
        curve_sum = R.regularizer_curve("proposed", values, bits=3, alpha=0.1).sum()
        tensor_sum = R.neuron_convergence_penalty(Tensor(values), bits=3, alpha=0.1).item()
        np.testing.assert_allclose(curve_sum, tensor_sum, rtol=1e-10)

    def test_proposed_curve_symmetric(self):
        values = np.linspace(-5, 5, 11)
        curve = R.regularizer_curve("proposed", values, bits=2)
        np.testing.assert_allclose(curve, curve[::-1])

    def test_unknown_curve(self):
        with pytest.raises(KeyError):
            R.regularizer_curve("l2", np.zeros(2))
