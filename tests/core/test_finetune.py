"""Tests for STE quantization-aware fine-tuning."""

import numpy as np
import pytest

from repro.core.finetune import FineTuneConfig, finetune_accuracy_gain, finetune_quantized
from repro.core.modules import QuantizedActivation
from repro.core.qat import Trainer, TrainerConfig
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet


@pytest.fixture(scope="module")
def trained():
    train = generate_mnist_like(500, seed=0)
    test = generate_mnist_like(200, seed=9)
    model = LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=8, penalty="proposed", bits=3, seed=1)).fit(model, train)
    return model, train, test


class TestConfig:
    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            FineTuneConfig(epochs=0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            FineTuneConfig(signal_bits=0)


class TestFineTune:
    def test_original_untouched(self, trained):
        model, train, _ = trained
        before = model.conv1.weight.data.copy()
        finetune_quantized(model, train, FineTuneConfig(signal_bits=3, weight_bits=3, epochs=1))
        np.testing.assert_allclose(model.conv1.weight.data, before)

    def test_result_weights_on_grid(self, trained):
        model, train, _ = trained
        config = FineTuneConfig(signal_bits=3, weight_bits=3, epochs=1)
        result = finetune_quantized(model, train, config)
        for name, scale in result.scales.items():
            layer_name = name.rsplit(".", 1)[0]
            module = dict(result.model.named_modules())[layer_name]
            codes = module.weight.data * 8 / scale
            np.testing.assert_allclose(codes, np.rint(codes), atol=1e-8)
            assert np.abs(codes).max() <= 4 + 1e-9

    def test_result_has_quantized_activations(self, trained):
        model, train, _ = trained
        result = finetune_quantized(
            model, train, FineTuneConfig(signal_bits=3, weight_bits=3, epochs=1)
        )
        wrapped = [m for m in result.model.modules() if isinstance(m, QuantizedActivation)]
        assert len(wrapped) == 3

    def test_losses_recorded(self, trained):
        model, train, _ = trained
        result = finetune_quantized(
            model, train, FineTuneConfig(signal_bits=3, weight_bits=3, epochs=2)
        )
        assert len(result.losses) == 2
        assert all(np.isfinite(loss) for loss in result.losses)

    def test_loss_does_not_explode(self, trained):
        model, train, _ = trained
        result = finetune_quantized(
            model, train, FineTuneConfig(signal_bits=3, weight_bits=3, epochs=3)
        )
        assert result.losses[-1] < result.losses[0] * 1.5

    def test_finetuned_at_least_close_to_post_training(self, trained):
        model, train, test = trained
        gains = finetune_accuracy_gain(
            model, train, test, FineTuneConfig(signal_bits=3, weight_bits=3, epochs=3)
        )
        assert gains["fine_tuned"] >= gains["post_training"] - 5.0

    def test_deployable_on_crossbars(self, trained):
        """The fine-tuned model maps to crossbars bit-exactly."""
        from repro.core.surgery import clone_module
        from repro.core.weight_clustering import ModelClusteringReport, ClusteringResult
        from repro.nn.tensor import Tensor, no_grad
        from repro.snc.mapping import map_network

        model, train, _ = trained
        config = FineTuneConfig(signal_bits=3, weight_bits=3, epochs=1)
        result = finetune_quantized(model, train, config)

        report = ModelClusteringReport(bits=3, scope="per_layer")
        for name, scale in result.scales.items():
            layer_name = name.rsplit(".", 1)[0]
            module = dict(result.model.named_modules())[layer_name]
            codes = np.rint(module.weight.data * 8 / scale).astype(np.int64)
            report.results[name] = ClusteringResult(
                codes=codes, scale=scale, bits=3, mse=0.0, iterations=0
            )

        hardware = clone_module(result.model)
        map_network(hardware, report)
        x = Tensor(train.images[:16])
        with no_grad():
            software = result.model(x).data
            analog = hardware(x).data
        np.testing.assert_allclose(analog, software, atol=1e-6)
