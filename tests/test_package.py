"""Package-level smoke tests: imports, version, public API surface."""

import importlib

import pytest


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize(
    "module",
    [
        "repro",
        "repro.nn",
        "repro.nn.tensor",
        "repro.nn.functional",
        "repro.nn.modules",
        "repro.nn.optim",
        "repro.nn.losses",
        "repro.nn.data",
        "repro.nn.init",
        "repro.nn.serialization",
        "repro.models",
        "repro.models.specs",
        "repro.datasets",
        "repro.core",
        "repro.core.regularizers",
        "repro.core.neuron_convergence",
        "repro.core.weight_clustering",
        "repro.core.quantizers",
        "repro.core.deployment",
        "repro.core.pipeline",
        "repro.core.finetune",
        "repro.snc",
        "repro.snc.memristor",
        "repro.snc.crossbar",
        "repro.snc.spikes",
        "repro.snc.ifc",
        "repro.snc.mapping",
        "repro.snc.system",
        "repro.snc.cost",
        "repro.snc.faults",
        "repro.analysis",
        "repro.cli",
    ],
)
def test_module_imports(module):
    importlib.import_module(module)


@pytest.mark.parametrize(
    "module",
    ["repro.nn", "repro.models", "repro.datasets", "repro.core", "repro.snc",
     "repro.analysis"],
)
def test_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in mod.__all__:
        assert hasattr(mod, name), f"{module}.__all__ lists missing name {name}"


def test_every_public_module_has_docstring():
    for module in [
        "repro.nn.tensor", "repro.nn.functional", "repro.core.regularizers",
        "repro.core.weight_clustering", "repro.snc.crossbar", "repro.snc.cost",
    ]:
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__) > 50
