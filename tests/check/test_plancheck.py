"""Tests for the static plan verifier (repro.check.plancheck).

Covers the clean pass on real traced plans (all three integer variants),
one seeded defect per PL6xx rule — each must be rejected with *that*
rule id — the soundness of the PL601 accumulator bound against concrete
worst-case data, and the engine's refuse-or-fallback post-trace gate.
"""

import numpy as np
import pytest

from repro.check import CheckReport, PlanCheckConfig, accumulator_bound, check_plan
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.runtime.engine import EngineConfig, InferenceEngine

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(48, seed=0).images


@pytest.fixture(scope="module")
def deployed_lenet(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return deployed


def _traced_engine(deployed, images, **overrides):
    """An engine with a freshly traced plan (plan gate off: tests seed
    defects into the plan afterwards and run the verifier directly)."""
    engine = InferenceEngine(deployed, EngineConfig(plan_check=False, **overrides))
    engine.run(images[:8])
    assert engine.plan is not None
    return engine


def _int_conv_steps(plan):
    return [step for step in plan.steps if hasattr(step, "codes_t")
            and step.kind == "conv2d-int"]


class TestCleanPlans:
    @pytest.mark.parametrize("overrides", [
        {"int_path": "auto", "int_kernels": "fused"},
        {"int_path": "shift", "int_kernels": "fused"},
        {"int_path": "auto", "int_kernels": "legacy"},
    ], ids=["int", "shift", "legacy"])
    def test_traced_lenet_plan_verifies(self, deployed_lenet, images, overrides):
        engine = _traced_engine(deployed_lenet, images, **overrides)
        report = check_plan(engine.plan)
        assert report.ok and len(report) == 0, report.summary()

    def test_float_plan_verifies(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images,
                                int_path="off", dtype=np.float64)
        report = check_plan(engine.plan)
        assert report.ok and len(report) == 0, report.summary()

    def test_suppression_config(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        step = _int_conv_steps(engine.plan)[0]
        step.codes_t = step.codes_t * 4096.0
        report = check_plan(engine.plan, config=PlanCheckConfig(suppress=("PL601",)))
        assert report.by_rule("PL601") == []


class TestSeededDefects:
    def test_oversized_codes_fire_pl601(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        step = _int_conv_steps(engine.plan)[0]
        # Inflate the codebook until the worst-case accumulator no longer
        # fits the float32 carrier's exact-integer window.
        step.codes_t = step.codes_t * 4096.0
        report = check_plan(engine.plan)
        assert report.has_errors
        assert report.by_rule("PL601"), report.summary()

    def test_aliasing_copy_program_fires_pl602(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        step = next(s for s in _int_conv_steps(engine.plan)
                    if getattr(s, "_program", None) is not None)
        sbuf, cols, tcols, blocks = step._program
        s0, s1, cbuf, bview, pairs = blocks[0]
        dst, _src = pairs[0]
        corrupt = [(s0, s1, cbuf, bview, [(dst, dst)])] + list(blocks[1:])
        step._program = (sbuf, cols, tcols, corrupt)
        report = check_plan(engine.plan)
        assert report.by_rule("PL602"), report.summary()

    def test_shared_pooled_buffer_fires_pl602(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        plan = engine.plan
        convs = _int_conv_steps(plan)
        assert len(convs) >= 2
        donor, thief = convs[0], convs[1]
        buf = next(b for (key, shape, dtype, b) in plan.pool.entries()
                   if key == (donor.index, "src"))
        plan.pool._buffers[((thief.index, "src"), buf.shape, buf.dtype)] = buf
        report = check_plan(plan)
        assert report.by_rule("PL602"), report.summary()

    def test_dtype_lie_fires_pl603(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        step = _int_conv_steps(engine.plan)[0]
        # Claim float64 workspaces while the pooled buffers stay float32.
        step.carrier = np.dtype(np.float64)
        report = check_plan(engine.plan)
        assert report.by_rule("PL603"), report.summary()

    def test_off_grid_scale_fires_pl604(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images, int_path="shift")
        step = _int_conv_steps(engine.plan)[0]
        step.q_scale = step.q_scale * 1.5
        report = check_plan(engine.plan)
        assert report.by_rule("PL604"), report.summary()

    def test_rogue_pool_entry_fires_pl605(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        plan = engine.plan
        plan.pool._buffers[((99, "rogue"), (4,), np.dtype(np.float64))] = (
            np.empty(4)
        )
        report = check_plan(plan)
        assert report.by_rule("PL605"), report.summary()

    def test_undeclared_workspace_tag_fires_pl605(self, deployed_lenet, images):
        engine = _traced_engine(deployed_lenet, images)
        plan = engine.plan
        step = _int_conv_steps(plan)[0]
        plan.pool._buffers[((step.index, "bogus"), (4,), np.dtype(np.float32))] = (
            np.empty(4, dtype=np.float32)
        )
        report = check_plan(plan)
        assert report.by_rule("PL605"), report.summary()


class TestAccumulatorBoundSoundness:
    @given(
        seed=st.integers(0, 2**32 - 1),
        k=st.integers(1, 64),
        oc=st.integers(1, 8),
        bits=st.integers(2, 8),
        m=st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_concrete_accumulator_never_exceeds_bound(self, seed, k, oc, bits, m):
        # The proved bound must dominate |x @ codes.T| for every integer
        # input in [0, top] — sample adversarially dense random instances.
        rng = np.random.default_rng(seed)
        half = 2 ** (bits - 1)
        codes = rng.integers(-half, half + 1, size=(oc, k)).astype(np.float64)
        top = 2 ** m - 1
        bound = accumulator_bound(codes, top)
        x = rng.integers(0, top + 1, size=(32, k)).astype(np.float64)
        assert np.abs(x @ codes.T).max(initial=0.0) <= bound + 1e-9
        # Tightness: feeding top where a code row is positive and zero
        # elsewhere attains the positive half of the proved bound.
        attained = max(
            (float((np.where(codes[i] > 0, top, 0.0) * codes[i]).sum())
             for i in range(oc)),
            default=0.0,
        )
        assert attained <= bound + 1e-9


class TestEnginePlanGate:
    def test_rejected_plan_falls_back_to_graph(self, deployed_lenet, images,
                                               monkeypatch):
        import repro.check.plancheck as plancheck

        def rejecting_check_plan(plan, config=None, target=None):
            report = CheckReport(target or "seeded")
            report.add("PL601", "error", "step0:int_conv", "seeded overflow")
            return report

        monkeypatch.setattr(plancheck, "check_plan", rejecting_check_plan)
        engine = InferenceEngine(deployed_lenet)
        out = engine.run(images[:6])
        assert engine.active_backend == "graph"
        assert engine.plan is None
        assert engine.stats.plancheck_errors == 1
        assert engine.plan_report is not None and engine.plan_report.has_errors
        assert engine.runtime_stats()["plancheck_errors"] == 1
        # The request is still served — from the graph executor.
        clean = InferenceEngine(deployed_lenet, EngineConfig(plan_check=False))
        np.testing.assert_array_equal(out, clean._graph_run(images[:6]))

    def test_clean_plan_passes_gate(self, deployed_lenet, images):
        engine = InferenceEngine(deployed_lenet)
        engine.run(images[:6])
        assert engine.active_backend == "int"
        assert engine.plan_report is not None and engine.plan_report.ok
        assert engine.stats.plancheck_errors == 0
        assert "plancheck_errors" not in engine.runtime_stats()

    def test_gate_can_be_disabled(self, deployed_lenet, images):
        engine = InferenceEngine(deployed_lenet, EngineConfig(plan_check=False))
        engine.run(images[:6])
        assert engine.plan is not None
        assert engine.plan_report is None
