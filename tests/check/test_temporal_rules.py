"""Tests for the temporal serving rules QT701-QT704 (repro.check.temporal)."""

import numpy as np

from repro.check import check_temporal
from repro.datasets.event_stream import EventStream
from repro.models.specs import lenet_spec


def burst_stream(events_on_one_pixel: int, duration_us: int = 50_000):
    n = events_on_one_pixel
    return EventStream(
        t=np.linspace(0, duration_us // 2, n).astype(np.int64),
        x=np.full(n, 3, dtype=np.int16),
        y=np.full(n, 5, dtype=np.int16),
        polarity=np.ones(n, dtype=np.int8),
        label=0,
        duration_us=duration_us,
    )


class TestGeometry:
    def test_valid_config_passes(self):
        report = check_temporal(25_000, 12_500, 4)
        assert report.ok and len(report) == 0

    def test_nonpositive_values_flagged(self):
        report = check_temporal(0, -5, 4)
        assert any(d.rule == "QT701" for d in report.errors)

    def test_gapped_stride_flagged(self):
        report = check_temporal(10_000, 20_000, 4)
        errors = report.by_rule("QT701")
        assert errors and "never binned" in errors[0].message

    def test_bad_bits_flagged(self):
        report = check_temporal(25_000, 12_500, 0)
        assert any(d.rule == "QT701" for d in report.errors)


class TestSaturation:
    def test_hot_pixel_triggers_qt702(self):
        report = check_temporal(25_000, 12_500, 2,
                                streams=[burst_stream(100)])
        warnings = report.by_rule("QT702")
        assert warnings and warnings[0].severity == "warning"
        assert warnings[0].details["window_top"] == 3

    def test_sparse_stream_stays_clean(self):
        report = check_temporal(25_000, 12_500, 8,
                                streams=[burst_stream(5)])
        assert not report.by_rule("QT702")

    def test_saturation_not_measured_on_broken_geometry(self):
        # QT701 already fired; the measurement would be meaningless.
        report = check_temporal(10_000, 20_000, 2,
                                streams=[burst_stream(100)])
        assert report.by_rule("QT701") and not report.by_rule("QT702")


class TestRealTime:
    def test_unsustainable_stride_triggers_qt703(self):
        report = check_temporal(10, 1, 8, spec=lenet_spec())
        errors = report.by_rule("QT703")
        assert errors and errors[0].details["sustainable_stride_us"] > 1

    def test_paper_stride_keeps_up(self):
        report = check_temporal(25_000, 12_500, 4, spec=lenet_spec())
        assert not report.by_rule("QT703")


class TestPrecision:
    def test_bits_mismatch_triggers_qt704(self):
        report = check_temporal(25_000, 12_500, 4, input_bits=8)
        errors = report.by_rule("QT704")
        assert errors and errors[0].details == {"signal_bits": 4, "input_bits": 8}

    def test_matching_bits_pass(self):
        report = check_temporal(25_000, 12_500, 4, input_bits=4)
        assert report.ok and len(report) == 0
