"""Tests for the ``repro check`` CLI command."""

import json

from repro.cli import build_parser, main, run_check


def _args(*extra):
    return build_parser().parse_args(["check", *extra])


class TestRunCheck:
    def test_registered_specs_are_clean(self):
        output, code = run_check(_args("--bits", "4"))
        assert code == 0
        assert "OK" in output and "FAIL" not in output
        assert "0 error(s) total" in output

    def test_exit_code_reflects_errors(self):
        output, code = run_check(_args("--bits", "4", "--max-crossbars", "1"))
        assert code == 1
        assert "FAIL" in output
        assert "QC501" in output

    def test_json_output_is_parseable(self):
        output, code = run_check(_args("--models", "lenet", "--bits", "4", "--json"))
        assert code == 0
        payload = json.loads(output)
        assert len(payload) == 1
        assert payload[0]["errors"] == 0
        assert "lenet" in payload[0]["target"]

    def test_one_report_per_model_and_bit_width(self):
        output, code = run_check(
            _args("--models", "lenet", "resnet", "--bits", "3", "4", "--json")
        )
        payload = json.loads(output)
        assert len(payload) == 4

    def test_suppress_drops_rules(self):
        _, code = run_check(
            _args("--bits", "4", "--max-crossbars", "1", "--suppress", "QC501")
        )
        assert code == 0

    def test_deep_mode_deploys_and_checks(self):
        output, code = run_check(
            _args("--models", "lenet", "--bits", "4", "--deep", "--json")
        )
        assert code == 0
        payload = json.loads(output)
        targets = [r["target"] for r in payload]
        assert any("deployed" in t for t in targets)
        assert any("spec" in t for t in targets)


class TestMainEntry:
    def test_main_returns_check_exit_code(self, capsys):
        assert main(["check", "--models", "lenet", "--bits", "4"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_main_propagates_failure(self, capsys):
        code = main(["check", "--models", "lenet", "--bits", "4",
                     "--max-crossbars", "1"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_is_listed(self, capsys):
        assert main(["list"]) == 0
        assert "check" in capsys.readouterr().out
