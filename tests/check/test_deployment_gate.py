"""Tests for the deploy-time refuse-on-error gate (core.deployment)."""

import numpy as np
import pytest

from repro.core.deployment import (
    DeploymentCheckError,
    DeploymentConfig,
    deploy_model,
)
from repro.models.lenet import LeNet
from repro.nn.modules import Linear, ReLU, Sequential


def _saturating_model(rng):
    """A model whose quantized deployment provably saturates (QS201)."""
    net = Sequential(Linear(4, 4, rng=rng), ReLU())
    net.eval()
    net.layers[0].weight.data[...] = 0.0
    net.layers[0].bias.data[...] = 100.0
    return net


# Quantize signals only: the constant bias=100 stays exactly on any grid,
# so QS201 is the *only* defect the checker can find.
_BAD_CONFIG = dict(signal_bits=4, weight_bits=None, weight_mode="none")
_CALIB = np.zeros((2, 4))


class TestRefuseOnError:
    def test_gate_refuses_saturating_network(self, rng):
        with pytest.raises(DeploymentCheckError) as excinfo:
            deploy_model(
                _saturating_model(rng),
                DeploymentConfig(**_BAD_CONFIG, static_check="error"),
                calibration_images=_CALIB,
            )
        report = excinfo.value.report
        assert report.has_errors
        assert [d.rule for d in report.errors] == ["QS201"]
        assert "QS201" in str(excinfo.value)

    def test_error_mode_is_the_default(self, rng):
        with pytest.raises(DeploymentCheckError):
            deploy_model(
                _saturating_model(rng),
                DeploymentConfig(**_BAD_CONFIG),
                calibration_images=_CALIB,
            )

    def test_warn_mode_records_but_returns(self, rng):
        deployed, info = deploy_model(
            _saturating_model(rng),
            DeploymentConfig(**_BAD_CONFIG, static_check="warn"),
            calibration_images=_CALIB,
        )
        assert deployed is not None
        assert info.check_report is not None and info.check_report.has_errors

    def test_off_mode_skips_the_check(self, rng):
        _, info = deploy_model(
            _saturating_model(rng),
            DeploymentConfig(**_BAD_CONFIG, static_check="off"),
            calibration_images=_CALIB,
        )
        assert info.check_report is None

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="static_check"):
            DeploymentConfig(static_check="maybe")


class TestCleanDeploymentsPass:
    def test_lenet_deploys_under_the_gate(self, rng):
        model = LeNet(rng=rng)
        model.eval()
        deployed, info = deploy_model(model, DeploymentConfig())
        assert deployed is not None
        assert info.check_report is not None and info.check_report.ok

    def test_structural_check_without_calibration_images(self, rng):
        # No calibration images → no input shape → structural-mode facts.
        model = LeNet(rng=rng)
        model.eval()
        _, info = deploy_model(model, DeploymentConfig())
        assert info.check_report.facts
        assert all(f.in_shape is None for f in info.check_report.facts)

    def test_full_snc_deployment_passes(self, rng):
        model = LeNet(rng=rng)
        model.eval()
        images = rng.uniform(0, 1, size=(8, 1, 28, 28))
        deployed, info = deploy_model(
            model, DeploymentConfig(input_bits=8), calibration_images=images
        )
        assert info.check_report.ok, info.check_report.summary()
