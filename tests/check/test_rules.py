"""Seeded-defect tests for the rule engine (repro.check.rules).

Each fixture plants exactly one defect class from the issue list —
activation-range overflow, mantissa-unsafe integer path, crossbar-budget
overrun, mixed M across layers — and the checker must produce exactly the
expected diagnostic (and no spurious errors on the clean twin).
"""

import numpy as np

from repro.check import CheckConfig, check_module
from repro.core.deployment import DeploymentConfig, _PrependInput, deploy_model
from repro.core.modules import InputQuantizer, QuantizedActivation
from repro.models.lenet import LeNet
from repro.nn.modules import Linear, ReLU, Sequential


def _deployed_lenet(rng):
    model = LeNet(rng=rng)
    model.eval()
    deployed, _ = deploy_model(model, DeploymentConfig())
    return deployed


def _on_grid(linear, bits, scale=1.0):
    """Snap a layer's weights onto the Eq. 6 grid and tag it."""
    step = scale / float(2 ** bits)
    half_value = scale / 2.0
    np.clip(linear.weight.data, -half_value, half_value, out=linear.weight.data)
    linear.weight.data[...] = np.rint(linear.weight.data / step) * step
    if linear.bias is not None:
        linear.bias.data[...] = np.rint(linear.bias.data / step) * step
    linear._grid_scale = scale
    linear._grid_bits = bits


class TestMixedSignalQuantizers:
    def test_mixed_m_is_qs210_error(self, rng):
        deployed = _deployed_lenet(rng)
        deployed.relu2 = QuantizedActivation(ReLU(), bits=6, gain=1.0)
        report = check_module(deployed, input_shape=(1, 28, 28))
        assert [d.rule for d in report.errors] == ["QS210"]
        assert "relu2" in report.errors[0].message

    def test_mixed_gain_is_qs210_error(self, rng):
        deployed = _deployed_lenet(rng)
        deployed.relu3 = QuantizedActivation(ReLU(), bits=4, gain=2.0)
        report = check_module(deployed, input_shape=(1, 28, 28))
        assert [d.rule for d in report.errors] == ["QS210"]

    def test_input_quantizer_bits_do_not_count(self, rng):
        # 8-bit inputs with 4-bit signals is the paper's own deployment.
        model = LeNet(rng=rng)
        model.eval()
        images = rng.uniform(0, 1, size=(8, 1, 28, 28))
        deployed, _ = deploy_model(
            model, DeploymentConfig(input_bits=8), calibration_images=images
        )
        report = check_module(deployed, input_shape=(1, 28, 28))
        assert not report.by_rule("QS210")


class TestActivationRangeOverflow:
    def test_proven_saturation_is_qs201_error(self, rng):
        net = Sequential(
            Linear(4, 4, rng=rng),
            QuantizedActivation(ReLU(), bits=4, gain=1.0),
        )
        net.eval()
        net.layers[0].weight.data[...] = 0.0
        net.layers[0].bias.data[...] = 100.0  # every output is 100 ≫ 15.5
        report = check_module(net, input_shape=(4,))
        assert [d.rule for d in report.errors] == ["QS201"]

    def test_possible_clipping_is_info_only(self, rng):
        net = Sequential(
            Linear(4, 4, rng=rng),
            QuantizedActivation(ReLU(), bits=4, gain=1.0),
        )
        net.eval()
        net.layers[0].weight.data[...] = 30.0  # hi = 120, lo = 0: clips but not always
        net.layers[0].bias.data[...] = 0.0
        report = check_module(net, input_shape=(4,))
        assert report.ok
        assert [d.rule for d in report.infos] == ["QS202"]


class TestWeightGrid:
    def test_off_grid_weights_are_qw301(self, rng):
        net = Sequential(Linear(8, 8, rng=rng))
        net.eval()
        net.layers[0]._grid_bits = 4  # claims a grid it does not sit on
        net.layers[0]._grid_scale = 1.0
        report = check_module(net, input_shape=(8,))
        assert [d.rule for d in report.errors] == ["QW301"]

    def test_mixed_n_is_qw302(self, rng):
        net = Sequential(Linear(8, 8, rng=rng), ReLU(), Linear(8, 4, rng=rng))
        net.eval()
        _on_grid(net.layers[0], bits=4)
        _on_grid(net.layers[2], bits=5)
        report = check_module(net, input_shape=(8,))
        assert [d.rule for d in report.errors] == ["QW302"]

    def test_deployed_network_is_on_grid(self, rng):
        report = check_module(_deployed_lenet(rng), input_shape=(1, 28, 28))
        assert not report.by_rule("QW301") and not report.by_rule("QW302")


class TestIntegerFastPath:
    def _int_path_net(self, rng, fan_in, m_bits, n_bits):
        """input-quant → gridded linear → act-quant: the int-path shape."""
        lin = Linear(fan_in, 10, rng=rng)
        _on_grid(lin, bits=n_bits)
        net = _PrependInput(
            InputQuantizer(bits=m_bits, offset=0.0, gain=float(2 ** m_bits - 1)),
            Sequential(lin, QuantizedActivation(ReLU(), bits=m_bits, gain=1.0),
                       Linear(10, 10, rng=rng)),
        )
        net.eval()
        return net

    def test_mantissa_unsafe_layer_is_qi401_warning(self, rng):
        # K·top·2^(N−1) = 600·255·128 ≈ 1.96e7 ≥ 2^24: float64 fallback.
        net = self._int_path_net(rng, fan_in=600, m_bits=8, n_bits=8)
        report = check_module(net, input_shape=(600,))
        assert report.ok  # warning, not error
        diags = report.by_rule("QI401")
        assert len(diags) == 1 and diags[0].severity == "warning"
        assert diags[0].details["bound"] >= 2 ** 24

    def test_mantissa_safe_layer_is_silent(self, rng):
        # 16·15·8 = 1920 ≪ 2^24: float32 carrier, nothing to report.
        net = self._int_path_net(rng, fan_in=16, m_bits=4, n_bits=4)
        report = check_module(net, input_shape=(16,))
        assert not report.by_rule("QI401")
        weight_facts = [f for f in report.facts if f.kind == "weight"]
        assert weight_facts[0].data["carrier"] == "float32"

    def test_deployed_lenet_is_mantissa_safe(self, rng):
        report = check_module(_deployed_lenet(rng), input_shape=(1, 28, 28))
        assert not report.by_rule("QI401")


class TestCrossbarFeasibility:
    def test_budget_overrun_is_qc501(self, rng):
        deployed = _deployed_lenet(rng)
        report = check_module(
            deployed, input_shape=(1, 28, 28),
            config=CheckConfig(max_crossbars=3),
        )
        diags = report.by_rule("QC501")
        assert len(diags) == 1 and diags[0].severity == "error"
        assert diags[0].details["total"] > 3

    def test_sufficient_budget_is_silent(self, rng):
        deployed = _deployed_lenet(rng)
        report = check_module(
            deployed, input_shape=(1, 28, 28),
            config=CheckConfig(max_crossbars=10_000),
        )
        assert not report.by_rule("QC501")

    def test_excess_levels_for_device_is_qc502(self, rng):
        net = Sequential(Linear(8, 8, rng=rng))
        net.eval()
        _on_grid(net.layers[0], bits=4)  # needs 9 levels
        report = check_module(
            net, input_shape=(8,), config=CheckConfig(device_levels=4),
        )
        diags = report.by_rule("QC502")
        assert len(diags) == 1 and diags[0].severity == "error"

    def test_beyond_demonstrated_levels_is_warning(self, rng):
        net = Sequential(Linear(8, 8, rng=rng))
        net.eval()
        _on_grid(net.layers[0], bits=8)  # needs 129 levels > 64 demonstrated
        report = check_module(net, input_shape=(8,))
        diags = report.by_rule("QC502")
        assert len(diags) == 1 and diags[0].severity == "warning"


class TestShiftModeFeasibility:
    """QS220/QS221: pow2-grid requantize scales (int_path="shift")."""

    def _net(self, rng, scale, gain_in, fan_in=16, m_bits=4, n_bits=4):
        lin = Linear(fan_in, 10, rng=rng)
        _on_grid(lin, bits=n_bits, scale=scale)
        net = _PrependInput(
            InputQuantizer(bits=8, offset=0.0, gain=gain_in),
            Sequential(lin, QuantizedActivation(ReLU(), bits=m_bits, gain=1.0),
                       Linear(10, 10, rng=rng)),
        )
        net.eval()
        return net

    def test_off_grid_scale_is_qs220_error(self, rng):
        # q_scale = 1/(2^4·15) = 1/240 — not a power of two.
        net = self._net(rng, scale=1.0, gain_in=15.0)
        report = check_module(
            net, input_shape=(16,),
            config=CheckConfig(require_pow2_scales=True),
        )
        diags = report.by_rule("QS220")
        assert len(diags) == 1 and diags[0].severity == "error"
        assert "power-of-two" in diags[0].message

    def test_on_grid_scale_is_silent(self, rng):
        # q_scale = 1/(2^4·16) = 2^-8 — exactly on the grid.
        net = self._net(rng, scale=1.0, gain_in=16.0)
        report = check_module(
            net, input_shape=(16,),
            config=CheckConfig(require_pow2_scales=True),
        )
        assert not report.by_rule("QS220")
        assert not report.by_rule("QS221")

    def test_negative_shift_is_qs221_error(self, rng):
        # q_scale = 32/(2^4·1) = 2 = 2^+1: on the grid but needs shift −1.
        net = self._net(rng, scale=32.0, gain_in=1.0)
        report = check_module(
            net, input_shape=(16,),
            config=CheckConfig(require_pow2_scales=True),
        )
        diags = report.by_rule("QS221")
        assert len(diags) == 1 and diags[0].severity == "error"

    def test_rules_off_by_default(self, rng):
        net = self._net(rng, scale=1.0, gain_in=15.0)
        report = check_module(net, input_shape=(16,))
        assert not report.by_rule("QS220")
        assert not report.by_rule("QS221")

    def test_snapping_clears_qs220(self, rng):
        from repro.core.pow2 import snap_scales_pow2

        net = self._net(rng, scale=1.0, gain_in=15.0)
        snap_scales_pow2(net)
        report = check_module(
            net, input_shape=(16,),
            config=CheckConfig(require_pow2_scales=True),
        )
        assert not report.by_rule("QS220")
        assert not report.by_rule("QS221")


class TestSuppression:
    def test_suppressed_rules_are_dropped(self, rng):
        deployed = _deployed_lenet(rng)
        deployed.relu2 = QuantizedActivation(ReLU(), bits=6, gain=1.0)
        report = check_module(
            deployed, input_shape=(1, 28, 28),
            config=CheckConfig(suppress=("QS210", "QS202")),
        )
        assert report.ok


class TestTrainingMode:
    def test_training_mode_is_qs103_warning(self, rng):
        from repro.nn.modules import Dropout

        net = Sequential(Linear(4, 4, rng=rng), Dropout(0.5, rng=rng))
        net.train()
        report = check_module(net, input_shape=(4,))
        assert [d.rule for d in report.warnings] == ["QS103"]
