"""Tests for the diagnostic records and check reports (repro.check.diagnostics)."""

import json

import numpy as np
import pytest

from repro.check import RULES, SEVERITIES, CheckReport, Diagnostic


class TestDiagnostic:
    def test_valid_construction(self):
        d = Diagnostic("QS201", "error", "relu2", "saturates", "lower the gain")
        assert d.rule == "QS201"
        assert d.severity == "error"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            Diagnostic("XX999", "error", "", "nope")

    def test_bad_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic("QS201", "fatal", "", "nope")

    def test_format_includes_rule_layer_and_hint(self):
        d = Diagnostic("QC501", "error", "conv1", "too many tiles", "shrink it")
        text = d.format()
        assert "QC501" in text and "conv1" in text and "shrink it" in text

    def test_network_wide_findings_render_placeholder(self):
        d = Diagnostic("QS210", "error", "", "mixed M")
        assert "<network>" in d.format()

    def test_to_dict_coerces_numpy_scalars(self):
        d = Diagnostic("QI401", "warning", "fc1", "m", details={
            "bound": np.int64(123), "values": (np.float64(1.5), 2)})
        payload = d.to_dict()
        assert payload["details"]["bound"] == 123
        assert payload["details"]["values"] == [1.5, 2]
        json.dumps(payload)  # fully serializable


class TestCheckReport:
    def _report(self):
        r = CheckReport("unit")
        r.add("QS201", "error", "a", "e1")
        r.add("QI401", "warning", "b", "w1")
        r.add("QS202", "info", "c", "i1")
        return r

    def test_severity_accessors(self):
        r = self._report()
        assert len(r.errors) == 1 and len(r.warnings) == 1 and len(r.infos) == 1
        assert r.has_errors and not r.ok
        assert len(r) == 3

    def test_ok_without_errors(self):
        r = CheckReport("unit")
        r.add("QI401", "warning", "b", "w1")
        assert r.ok and not r.has_errors

    def test_suppression_drops_rules(self):
        r = self._report().suppressed(["QS201", "QS202"])
        assert [d.rule for d in r.diagnostics] == ["QI401"]
        assert r.ok

    def test_by_rule(self):
        r = self._report()
        assert len(r.by_rule("QI401")) == 1
        assert r.by_rule("QC501") == []

    def test_extend_absorbs(self):
        r = self._report()
        other = CheckReport("other")
        other.add("QC503", "warning", "x", "w2")
        r.extend(other)
        assert len(r) == 4

    def test_summary_orders_errors_first(self):
        text = self._report().summary()
        assert text.index("QS201") < text.index("QI401") < text.index("QS202")
        assert "FAIL" in text

    def test_json_roundtrip(self):
        payload = json.loads(self._report().to_json())
        assert payload["target"] == "unit"
        assert payload["errors"] == 1
        assert len(payload["diagnostics"]) == 3


class TestRuleCatalogue:
    def test_severities_order(self):
        assert SEVERITIES == ("error", "warning", "info")

    def test_rule_ids_follow_convention(self):
        # Q*-prefixed rules verify module graphs; PL-prefixed rules verify
        # compiled plan IR (repro.check.plancheck).
        assert all(
            len(rule) == 5 and (rule[0] == "Q" or rule.startswith("PL"))
            for rule in RULES
        )
        assert any(rule.startswith("PL6") for rule in RULES)

    def test_docs_cover_every_rule(self, repo_root):
        doc = (repo_root / "docs" / "static_analysis.md").read_text()
        missing = [rule for rule in RULES if rule not in doc]
        assert not missing, f"docs/static_analysis.md missing rules: {missing}"
