"""Fixtures for the static-verifier test suite."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def repo_root() -> Path:
    """The repository root (two levels above this file)."""
    return Path(__file__).resolve().parents[2]
