"""Tests for spec-level checking (repro.check.specs)."""

import pytest

from repro.check import CheckConfig, check_spec
from repro.models.registry import available_models, get_spec
from repro.models.specs import LayerSpec, NetworkSpec


class TestRegisteredSpecsAreClean:
    @pytest.mark.parametrize("name", sorted(available_models()))
    def test_spec_has_no_errors_at_paper_bits(self, name):
        report = check_spec(get_spec(name))
        assert report.ok, report.summary()

    @pytest.mark.parametrize("bits", [3, 4, 5])
    def test_all_paper_bit_widths(self, bits):
        for name in available_models():
            report = check_spec(get_spec(name), signal_bits=bits, weight_bits=bits)
            assert report.ok, report.summary()


class TestSeededSpecDefects:
    def _spec(self, layers):
        return NetworkSpec(
            name="broken", dataset="unit", input_shape=(1, 8, 8),
            layers=tuple(layers), ideal_accuracy=0.0,
        )

    def test_conv_channel_discontinuity_is_qs101(self):
        spec = self._spec([
            LayerSpec("conv", out_features=6, in_depth=1, kernel=3),
            LayerSpec("conv", out_features=8, in_depth=7, kernel=3),  # 7 != 6
        ])
        report = check_spec(spec)
        assert [d.rule for d in report.errors] == ["QS101"]

    def test_fc_fanin_discontinuity_is_qs101(self):
        spec = self._spec([
            LayerSpec("fc", out_features=16, in_depth=64),
            LayerSpec("fc", out_features=10, in_depth=17),  # 17 != 16
        ])
        report = check_spec(spec)
        assert [d.rule for d in report.errors] == ["QS101"]

    def test_conv_to_fc_non_multiple_is_qs101(self):
        spec = self._spec([
            LayerSpec("conv", out_features=6, in_depth=1, kernel=3),
            LayerSpec("fc", out_features=10, in_depth=100),  # 100 % 6 != 0
        ])
        report = check_spec(spec)
        assert [d.rule for d in report.errors] == ["QS101"]

    def test_crossbar_budget_overrun_is_qc501(self):
        report = check_spec(get_spec("lenet"), config=CheckConfig(max_crossbars=1))
        diags = report.by_rule("QC501")
        assert len(diags) == 1 and diags[0].severity == "error"

    def test_wide_bits_trip_the_mantissa_rule(self):
        # ResNet's 3·3·512-row layers at M=N=8 overflow 2^24 worst-case.
        report = check_spec(get_spec("resnet"), signal_bits=8, weight_bits=8)
        assert report.by_rule("QI401")
        assert report.ok  # still only warnings

    def test_wide_bits_trip_the_conductance_rule(self):
        report = check_spec(get_spec("lenet"), signal_bits=4, weight_bits=8)
        diags = report.by_rule("QC502")
        assert diags and all(d.severity == "warning" for d in diags)


class TestSpecReportShape:
    def test_target_names_the_spec_and_bits(self):
        report = check_spec(get_spec("lenet"), signal_bits=4, weight_bits=4)
        assert "lenet" in report.target and "M=4" in report.target

    def test_facts_cover_every_layer(self):
        spec = get_spec("lenet")
        report = check_spec(spec)
        weights = [f for f in report.facts if f.kind == "weight"]
        assert len(weights) == len(spec.layers)
        assert all(f.data.get("crossbars") for f in weights)
