"""Tests for the abstract interpreter (repro.check.abstract).

The load-bearing property is *soundness*: real forward passes on inputs
inside the declared range must always land inside the propagated
intervals, and inferred shapes must match what the network actually
produces.
"""

import numpy as np
import pytest

from repro.check import analyze_module, check_module, structural_facts
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.modules import QuantizedActivation
from repro.models.lenet import LeNet
from repro.models.resnet import ResNetCifar
from repro.nn.modules import (
    Conv2d,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.tensor import Tensor, no_grad


def _assert_sound(module, input_shape, n_samples=64, seed=0):
    """Sampled forward outputs must lie inside the final propagated interval."""
    report = analyze_module(module, input_shape, (0.0, 1.0))
    assert report.ok, report.summary()
    final = report.facts[-1]
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, 1.0, size=(n_samples,) + tuple(input_shape))
    with no_grad():
        out = module(Tensor(x)).data
    assert out.shape[1:] == final.out_shape
    assert out.min() >= final.lo - 1e-9, (out.min(), final.lo)
    assert out.max() <= final.hi + 1e-9, (out.max(), final.hi)
    return report


class TestIntervalSoundness:
    def test_float_lenet(self, rng):
        model = LeNet(rng=rng)
        model.eval()
        _assert_sound(model, (1, 28, 28))

    def test_deployed_lenet(self, rng):
        model = LeNet(rng=rng)
        model.eval()
        deployed, _ = deploy_model(model, DeploymentConfig())
        report = _assert_sound(deployed, (1, 28, 28))
        # Quantized layers carry act-quant facts with pre-activation bounds.
        quants = [f for f in report.facts if f.kind == "act-quant"]
        assert quants and all("pre_hi" in f.data for f in quants)

    def test_residual_network(self, rng):
        model = ResNetCifar(width_multiplier=0.125, rng=rng)
        model.eval()
        _assert_sound(model, (3, 32, 32), n_samples=8)

    def test_padding_widens_interval_to_zero(self, rng):
        # All-positive inputs through a padded conv with negative weights:
        # the zero-padded border must be inside the propagated input bounds.
        conv = Conv2d(1, 1, kernel_size=3, padding=1, rng=rng)
        conv.weight.data[...] = -1.0
        conv.bias.data[...] = 0.0
        net = Sequential(conv)
        net.eval()
        report = analyze_module(net, (1, 4, 4), (0.5, 1.0))
        fact = report.facts[0]
        # Border sums see zeros, so the max is above the all-interior worst
        # case of -9·0.5; interior minimum is -9·1.0.
        assert fact.lo == pytest.approx(-9.0)
        assert fact.hi == pytest.approx(0.0)


class TestShapeInference:
    def test_shapes_per_layer(self, rng):
        model = LeNet(rng=rng)
        model.eval()
        report = analyze_module(model, (1, 28, 28))
        by_path = {f.path: f for f in report.facts}
        assert by_path["conv1"].out_shape == (6, 24, 24)
        assert by_path["pool1"].out_shape == (6, 12, 12)
        assert by_path["flatten"].out_shape == (256,)
        assert by_path["fc2"].out_shape == (10,)

    def test_channel_mismatch_is_qs101(self, rng):
        net = Sequential(Conv2d(3, 4, 3, rng=rng))
        net.eval()
        report = analyze_module(net, (1, 8, 8))
        assert [d.rule for d in report.errors] == ["QS101"]

    def test_fanin_mismatch_is_qs101(self, rng):
        net = Sequential(Flatten(), Linear(100, 10, rng=rng))
        net.eval()
        report = analyze_module(net, (4, 4))
        assert [d.rule for d in report.errors] == ["QS101"]

    def test_oversized_pool_is_qs101(self, rng):
        net = Sequential(MaxPool2d(9))
        net.eval()
        report = analyze_module(net, (1, 4, 4))
        assert [d.rule for d in report.errors] == ["QS101"]

    def test_analysis_stops_after_shape_error(self, rng):
        net = Sequential(Conv2d(3, 4, 3, rng=rng), Linear(10, 10, rng=rng))
        net.eval()
        report = analyze_module(net, (1, 8, 8))
        # The Linear is never reached; exactly one diagnostic.
        assert len(report.diagnostics) == 1

    def test_residual_branch_mismatch_is_qs101(self, rng):
        block = Residual(Conv2d(2, 3, 1, rng=rng), shortcut=Identity())
        block.eval()
        report = analyze_module(block, (2, 4, 4))
        assert [d.rule for d in report.errors] == ["QS101"]


class TestUnknownModules:
    def test_unknown_leaf_flagged_and_passed_through(self, rng):
        class Mystery(Module):
            def forward(self, x):
                return x

        net = Sequential(Linear(4, 4, rng=rng), Mystery())
        net.eval()
        report = check_module(net, input_shape=(4,))
        assert [d.rule for d in report.warnings] == ["QS102"]


class TestStructuralMode:
    def test_facts_without_shapes(self, rng):
        model = LeNet(rng=rng)
        model.eval()
        deployed, _ = deploy_model(model, DeploymentConfig())
        facts = structural_facts(deployed)
        kinds = [f.kind for f in facts]
        assert kinds.count("weight") == 4
        assert kinds.count("act-quant") == 3
        assert all(f.in_shape is None and f.lo is None for f in facts)

    def test_quant_state_threads_to_next_weight_layer(self, rng):
        net = Sequential(
            Linear(4, 4, rng=rng),
            QuantizedActivation(ReLU(), bits=4, gain=2.0),
            Linear(4, 2, rng=rng),
        )
        net.eval()
        facts = structural_facts(net)
        weights = [f for f in facts if f.kind == "weight"]
        assert weights[0].data["in_quant"] is None
        assert weights[1].data["in_quant"].bits == 4
        assert weights[1].data["in_quant"].gain == 2.0
