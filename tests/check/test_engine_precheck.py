"""Tests for the engine's pre-trace static check (runtime.engine)."""

import numpy as np

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.modules import QuantizedActivation
from repro.models.lenet import LeNet
from repro.nn.modules import ReLU
from repro.runtime.engine import EngineConfig, InferenceEngine


def _deployed_lenet(rng):
    model = LeNet(rng=rng)
    model.eval()
    deployed, _ = deploy_model(model, DeploymentConfig())
    return deployed


def _images(rng, n=4):
    return rng.uniform(0, 1, size=(n, 1, 28, 28))


class TestPrecheckDegradation:
    def test_failing_module_serves_from_graph(self, rng):
        deployed = _deployed_lenet(rng)
        deployed.relu2 = QuantizedActivation(ReLU(), bits=6, gain=1.0)  # mixed M
        engine = InferenceEngine(deployed)
        images = _images(rng)
        out = engine.run(images)
        assert engine.active_backend == "graph"
        assert engine.stats.precheck_errors > 0
        assert engine.check_report is not None and engine.check_report.has_errors
        # Graph fallback still computes the true forward pass.
        from repro.nn.tensor import Tensor, no_grad

        with no_grad():
            expected = deployed(Tensor(images)).data
        np.testing.assert_allclose(out, expected)

    def test_stats_surface_precheck_errors(self, rng):
        deployed = _deployed_lenet(rng)
        deployed.relu2 = QuantizedActivation(ReLU(), bits=6, gain=1.0)
        engine = InferenceEngine(deployed)
        engine.run(_images(rng))
        stats = engine.runtime_stats()
        assert stats["backend"] == "graph"
        assert stats["precheck_errors"] == 1


class TestPrecheckPasses:
    def test_clean_module_compiles_a_plan(self, rng):
        engine = InferenceEngine(_deployed_lenet(rng))
        engine.run(_images(rng))
        assert engine.active_backend != "graph"
        assert engine.plan is not None
        assert engine.check_report is not None and engine.check_report.ok
        assert engine.stats.precheck_errors == 0
        assert "precheck_errors" not in engine.runtime_stats()

    def test_precheck_can_be_disabled(self, rng):
        deployed = _deployed_lenet(rng)
        deployed.relu2 = QuantizedActivation(ReLU(), bits=6, gain=1.0)
        engine = InferenceEngine(deployed, EngineConfig(static_check=False))
        engine.run(_images(rng))
        assert engine.check_report is None
        assert engine.stats.precheck_errors == 0

    def test_precheck_reruns_on_retrace(self, rng):
        engine = InferenceEngine(_deployed_lenet(rng))
        engine.run(_images(rng))
        first = engine.check_report
        engine.invalidate()
        engine.run(_images(rng))
        assert engine.check_report is not first
