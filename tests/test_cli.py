"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_command


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.command == "table5"
        assert args.bits == [5, 4, 3]
        assert not args.fast

    def test_bits_and_models(self):
        args = build_parser().parse_args(
            ["table2", "--bits", "4", "--models", "lenet", "--fast"]
        )
        assert args.bits == [4]
        assert args.models == ["lenet"]
        assert args.fast

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])


class TestTrainingFreeCommands:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        out = run_command(args)
        assert "table5" in out and "fig4" in out

    def test_table5(self):
        out = run_command(build_parser().parse_args(["table5"]))
        assert "lenet" in out and "resnet" in out
        assert "speedup" in out

    def test_fig1a(self):
        out = run_command(build_parser().parse_args(["fig1a"]))
        assert "speed_mhz" in out

    def test_fig3(self):
        out = run_command(build_parser().parse_args(["fig3"]))
        assert "truncated_l1" in out

    def test_main_returns_zero(self, capsys):
        assert main(["table5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_breakdown(self):
        out = run_command(
            build_parser().parse_args(["breakdown", "--models", "lenet", "--bits", "4"])
        )
        assert "crossbars" in out
        assert out.count("lenet") == 4  # one row per LeNet layer

    def test_programming(self):
        out = run_command(
            build_parser().parse_args(
                ["programming", "--models", "lenet", "--bits", "4", "6"]
            )
        )
        assert "pulses_per_device" in out

    def test_irdrop(self):
        out = run_command(build_parser().parse_args(["irdrop"]))
        assert "relative_error_pct" in out

    def test_plan_lenet_uses_integer_fast_path(self):
        out = run_command(
            build_parser().parse_args(["plan", "--models", "lenet", "--bits", "4"])
        )
        assert "ExecutionPlan" in out
        assert "int-gemm" in out
        assert "backend=int" in out

    def test_plan_resnet_falls_back_to_graph(self):
        out = run_command(
            build_parser().parse_args(["plan", "--models", "resnet", "--bits", "4"])
        )
        assert "backend=graph" in out


def _isolated_fast_settings(tmp_path, monkeypatch):
    # Redirect the cache so the test doesn't pollute .bench_cache.
    from repro.analysis import experiments as E

    fast = E.ExperimentSettings(
        train_size=E.FAST_SETTINGS.train_size,
        test_size=E.FAST_SETTINGS.test_size,
        widths=E.FAST_SETTINGS.widths,
        epochs=E.FAST_SETTINGS.epochs,
        cache_dir=str(tmp_path),
    )
    monkeypatch.setattr(E, "FAST_SETTINGS", fast)


class TestTrainingBackedCommand:
    def test_table2_fast_lenet(self, tmp_path, monkeypatch):
        _isolated_fast_settings(tmp_path, monkeypatch)
        out = run_command(
            build_parser().parse_args(
                ["table2", "--fast", "--models", "lenet", "--bits", "3"]
            )
        )
        assert "lenet" in out and "recovered" in out

    def test_healthcheck_faulty_chip_reports_findings(self, tmp_path, monkeypatch):
        _isolated_fast_settings(tmp_path, monkeypatch)
        out = run_command(
            build_parser().parse_args(
                ["healthcheck", "--fast", "--models", "lenet", "--bits", "4",
                 "--fault-rate", "0.02", "--variation", "0.05", "--remediate"]
            )
        )
        assert "FAULTY" in out
        assert "Injected faults" in out
        assert "Remediation ladder" in out
        assert "after repair" in out

    def test_healthcheck_ideal_chip_clean_bill(self, tmp_path, monkeypatch):
        _isolated_fast_settings(tmp_path, monkeypatch)
        out = run_command(
            build_parser().parse_args(
                ["healthcheck", "--fast", "--models", "lenet", "--bits", "4",
                 "--fault-rate", "0"]
            )
        )
        assert "HEALTHY" in out
        assert "FAULTY" not in out
        assert "0/" in out
