"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, run_command


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.command == "table5"
        assert args.bits == [5, 4, 3]
        assert not args.fast

    def test_bits_and_models(self):
        args = build_parser().parse_args(
            ["table2", "--bits", "4", "--models", "lenet", "--fast"]
        )
        assert args.bits == [4]
        assert args.models == ["lenet"]
        assert args.fast

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])


class TestTrainingFreeCommands:
    def test_list(self):
        args = build_parser().parse_args(["list"])
        out = run_command(args)
        assert "table5" in out and "fig4" in out

    def test_table5(self):
        out = run_command(build_parser().parse_args(["table5"]))
        assert "lenet" in out and "resnet" in out
        assert "speedup" in out

    def test_fig1a(self):
        out = run_command(build_parser().parse_args(["fig1a"]))
        assert "speed_mhz" in out

    def test_fig3(self):
        out = run_command(build_parser().parse_args(["fig3"]))
        assert "truncated_l1" in out

    def test_main_returns_zero(self, capsys):
        assert main(["table5"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_breakdown(self):
        out = run_command(
            build_parser().parse_args(["breakdown", "--models", "lenet", "--bits", "4"])
        )
        assert "crossbars" in out
        assert out.count("lenet") == 4  # one row per LeNet layer

    def test_programming(self):
        out = run_command(
            build_parser().parse_args(
                ["programming", "--models", "lenet", "--bits", "4", "6"]
            )
        )
        assert "pulses_per_device" in out

    def test_irdrop(self):
        out = run_command(build_parser().parse_args(["irdrop"]))
        assert "relative_error_pct" in out

    def test_plan_lenet_uses_integer_fast_path(self):
        out = run_command(
            build_parser().parse_args(["plan", "--models", "lenet", "--bits", "4"])
        )
        assert "ExecutionPlan" in out
        assert "int-gemm" in out
        assert "backend=int" in out

    def test_plan_resnet_falls_back_to_graph(self):
        out = run_command(
            build_parser().parse_args(["plan", "--models", "resnet", "--bits", "4"])
        )
        assert "backend=graph" in out

    def test_stream_bench_quick(self):
        out = run_command(
            build_parser().parse_args(
                ["stream-bench", "--models", "lenet", "--bits", "4", "--quick"]
            )
        )
        assert "windows_per_s" in out
        assert "bit-exact" in out and "MISMATCH" not in out

    def test_stream_bench_rejects_non_lenet(self):
        with pytest.raises(SystemExit, match="lenet"):
            run_command(
                build_parser().parse_args(
                    ["stream-bench", "--models", "resnet", "--bits", "4", "--quick"]
                )
            )


def _isolated_fast_settings(tmp_path, monkeypatch):
    # Redirect the cache so the test doesn't pollute .bench_cache.
    from repro.analysis import experiments as E

    fast = E.ExperimentSettings(
        train_size=E.FAST_SETTINGS.train_size,
        test_size=E.FAST_SETTINGS.test_size,
        widths=E.FAST_SETTINGS.widths,
        epochs=E.FAST_SETTINGS.epochs,
        cache_dir=str(tmp_path),
    )
    monkeypatch.setattr(E, "FAST_SETTINGS", fast)


class TestTrainingBackedCommand:
    def test_table2_fast_lenet(self, tmp_path, monkeypatch):
        _isolated_fast_settings(tmp_path, monkeypatch)
        out = run_command(
            build_parser().parse_args(
                ["table2", "--fast", "--models", "lenet", "--bits", "3"]
            )
        )
        assert "lenet" in out and "recovered" in out

    def test_healthcheck_faulty_chip_reports_findings(self, tmp_path, monkeypatch):
        _isolated_fast_settings(tmp_path, monkeypatch)
        out = run_command(
            build_parser().parse_args(
                ["healthcheck", "--fast", "--models", "lenet", "--bits", "4",
                 "--fault-rate", "0.02", "--variation", "0.05", "--remediate"]
            )
        )
        assert "FAULTY" in out
        assert "Injected faults" in out
        assert "Remediation ladder" in out
        assert "after repair" in out

    def test_healthcheck_ideal_chip_clean_bill(self, tmp_path, monkeypatch):
        _isolated_fast_settings(tmp_path, monkeypatch)
        out = run_command(
            build_parser().parse_args(
                ["healthcheck", "--fast", "--models", "lenet", "--bits", "4",
                 "--fault-rate", "0"]
            )
        )
        assert "HEALTHY" in out
        assert "FAULTY" not in out
        assert "0/" in out


class TestRunCommand:
    """``repro run``: named pipelines on the checkpointed DAG runner."""

    @staticmethod
    def _toy_builder(calls):
        def builder(fast, seed):
            from repro.flow import Pipeline

            def work():
                calls["work"] = calls.get("work", 0) + 1
                return 2 + seed

            pipe = Pipeline("toy/pipeline")
            pipe.step("work", work, config={"seed": seed})
            pipe.step("double", lambda x: x * 2, inputs=("work",))
            summarize = lambda result: f"toy total={result.output('double')}"  # noqa: E731
            return pipe, summarize
        return builder

    def _install_toy(self, monkeypatch, calls):
        from repro.flow import pipelines

        monkeypatch.setitem(pipelines.PIPELINES, "toy", self._toy_builder(calls))

    def test_missing_target_lists_pipelines(self, capsys):
        assert main(["run"]) == 2
        out = capsys.readouterr().out
        assert "quantization" in out and "sweep" in out and "yield" in out

    def test_unknown_pipeline_rejected(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown pipeline" in capsys.readouterr().out

    def test_negative_retries_rejected(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "toy", "--retries", "-1", "--run-dir", str(tmp_path)])
        with pytest.raises(SystemExit, match="retries"):
            run_command(args)

    def test_run_executes_then_resumes(self, tmp_path, monkeypatch, capsys):
        calls = {}
        self._install_toy(monkeypatch, calls)
        argv = ["run", "toy", "--run-dir", str(tmp_path)]

        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "toy total=4" in first and "executed" in first
        assert "failsink: empty" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "toy total=4" in second and "cached" in second
        assert calls == {"work": 1}  # resume: nothing re-executed

    def test_force_reexecutes(self, tmp_path, monkeypatch, capsys):
        calls = {}
        self._install_toy(monkeypatch, calls)
        argv = ["run", "toy", "--run-dir", str(tmp_path)]
        assert main(argv) == 0
        assert main(argv + ["--force"]) == 0
        assert calls == {"work": 2}
        assert "executed" in capsys.readouterr().out

    def test_failed_step_reports_and_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        from repro.flow import FatalError, Pipeline, pipelines

        def broken_builder(fast, seed):
            def boom():
                raise FatalError("injected")

            pipe = Pipeline("toy/broken")
            pipe.step("boom", boom)
            return pipe, lambda result: ""

        monkeypatch.setitem(pipelines.PIPELINES, "broken", broken_builder)
        assert main(["run", "broken", "--run-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "re-run to resume" in out
