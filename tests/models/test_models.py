"""Tests for the trainable model implementations."""

import numpy as np
import pytest

from repro.models import (
    AlexNetCifar,
    LeNet,
    MODEL_DATASET,
    ResNetCifar,
    available_models,
    build_model,
    get_spec,
)
from repro.nn.modules import ReLU
from repro.nn.tensor import Tensor


class TestLeNet:
    def test_forward_shape(self, rng):
        model = LeNet(rng=rng)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_full_width_matches_paper_weight_count(self, rng):
        # Table 1: ≈7×10³ weights
        model = LeNet(width_multiplier=1.0, rng=rng)
        assert 6_000 <= model.num_parameters() <= 8_000

    def test_width_multiplier_scales(self, rng):
        small = LeNet(width_multiplier=0.5, rng=rng)
        large = LeNet(width_multiplier=2.0, rng=rng)
        assert small.num_parameters() < large.num_parameters()

    def test_num_classes(self, rng):
        model = LeNet(num_classes=7, rng=rng)
        assert model(Tensor(rng.normal(size=(1, 1, 28, 28)))).shape == (1, 7)

    def test_gradients_reach_all_parameters(self, rng):
        model = LeNet(width_multiplier=0.5, rng=rng)
        out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        out.sum().backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name

    def test_has_three_inter_layer_signals(self, rng):
        model = LeNet(rng=rng)
        relus = [m for m in model.modules() if isinstance(m, ReLU)]
        assert len(relus) == 3  # conv1, conv2, fc1 outputs


class TestAlexNet:
    def test_forward_shape(self, rng):
        model = AlexNetCifar(width_multiplier=0.2, rng=rng)
        assert model(Tensor(rng.normal(size=(2, 3, 32, 32)))).shape == (2, 10)

    def test_full_width_weight_count(self, rng):
        # Table 1: ≈3.4×10⁵
        model = AlexNetCifar(width_multiplier=1.0, rng=rng)
        assert 3.0e5 <= model.num_parameters() <= 3.8e5

    def test_seven_inter_layer_signals(self, rng):
        model = AlexNetCifar(width_multiplier=0.2, rng=rng)
        relus = [m for m in model.modules() if isinstance(m, ReLU)]
        assert len(relus) == 7  # 5 convs + 2 hidden FCs


class TestResNet:
    def test_forward_shape(self, rng):
        model = ResNetCifar(width_multiplier=0.1, rng=rng)
        assert model(Tensor(rng.normal(size=(2, 3, 32, 32)))).shape == (2, 10)

    def test_full_width_weight_count(self, rng):
        # Table 1: ≈1.2×10⁷ (count conv+fc only; BN adds a small extra)
        model = ResNetCifar(width_multiplier=1.0, rng=rng)
        assert 1.0e7 <= model.num_parameters() <= 1.3e7

    def test_seventeen_convs(self, rng):
        from repro.nn.modules import Conv2d

        model = ResNetCifar(width_multiplier=0.1, rng=rng)
        convs = [m for m in model.modules() if isinstance(m, Conv2d)]
        # 17 dataflow convs + 3 projection shortcuts
        main_convs = [c for c in convs if c.kernel_size == 3]
        assert len(main_convs) == 17

    def test_trains_one_step(self, rng):
        from repro.nn.losses import cross_entropy
        from repro.nn.optim import Adam

        model = ResNetCifar(width_multiplier=0.1, rng=rng)
        opt = Adam(model.parameters(), lr=1e-3)
        x = Tensor(rng.normal(size=(4, 3, 32, 32)))
        y = np.array([0, 1, 2, 3])
        loss_before = cross_entropy(model(x), y)
        loss_before.backward()
        opt.step()
        # One step on the same batch should not blow up.
        loss_after = cross_entropy(model(x), y)
        assert np.isfinite(loss_after.item())


class TestRegistry:
    def test_available(self):
        assert available_models() == ["alexnet", "lenet", "resnet"]

    def test_build_each(self, rng):
        for name in available_models():
            model = build_model(name, width_multiplier=0.1, rng=rng)
            assert model.num_parameters() > 0

    def test_build_unknown(self):
        with pytest.raises(KeyError):
            build_model("vgg")

    def test_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("vgg")

    def test_dataset_mapping(self):
        assert MODEL_DATASET["lenet"] == "mnist-like"
        assert MODEL_DATASET["resnet"] == "cifar-like"

    def test_deterministic_init(self):
        a = build_model("lenet", rng=np.random.default_rng(5))
        b = build_model("lenet", rng=np.random.default_rng(5))
        np.testing.assert_allclose(a.conv1.weight.data, b.conv1.weight.data)
