"""Tests for the paper's network specifications (Table 1 fidelity)."""

import pytest

from repro.models.specs import (
    LayerSpec,
    alexnet_spec,
    lenet_spec,
    paper_specs,
    resnet_spec,
)


class TestLayerSpec:
    def test_conv_rows_cols(self):
        layer = LayerSpec("conv", out_features=16, in_depth=6, kernel=5)
        assert layer.rows == 5 * 5 * 6
        assert layer.columns == 16
        assert layer.weight_count == 150 * 16

    def test_fc_rows_cols(self):
        layer = LayerSpec("fc", out_features=10, in_depth=256)
        assert layer.rows == 256
        assert layer.columns == 10

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            LayerSpec("pool", out_features=1, in_depth=1)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LayerSpec("conv", out_features=0, in_depth=1)


class TestLeNetSpec:
    def test_layer_counts_match_table1(self):
        spec = lenet_spec()
        assert len(spec.conv_layers) == 2
        assert len(spec.fc_layers) == 2
        assert spec.num_layers == 4  # Table 5 "Layer Num."

    def test_kernels_are_5x5(self):
        assert all(l.kernel == 5 for l in lenet_spec().conv_layers)

    def test_weight_total_matches_table1(self):
        # Table 1 says 7×10³
        assert 6_000 <= lenet_spec().total_weights <= 8_000

    def test_input_shape(self):
        assert lenet_spec().input_shape == (1, 28, 28)

    def test_ideal_accuracy(self):
        assert lenet_spec().ideal_accuracy == 98.16


class TestAlexNetSpec:
    def test_layer_counts(self):
        spec = alexnet_spec()
        assert len(spec.conv_layers) == 5
        assert len(spec.fc_layers) == 3
        assert spec.num_layers == 8

    def test_kernel_structure(self):
        kernels = [l.kernel for l in alexnet_spec().conv_layers]
        assert kernels == [5, 3, 3, 3, 3]  # 1×(5×5) + 4×(3×3)

    def test_weight_total(self):
        # Table 1 says 3.4×10⁵
        assert 3.0e5 <= alexnet_spec().total_weights <= 3.8e5

    def test_depth_chaining(self):
        convs = alexnet_spec().conv_layers
        for previous, current in zip(convs, convs[1:]):
            assert current.in_depth == previous.out_features


class TestResNetSpec:
    def test_layer_counts(self):
        spec = resnet_spec()
        assert len(spec.conv_layers) == 17
        assert len(spec.fc_layers) == 1
        assert spec.num_layers == 18

    def test_all_convs_3x3(self):
        assert all(l.kernel == 3 for l in resnet_spec().conv_layers)

    def test_weight_total(self):
        # Table 1 says 1.2×10⁷ (ResNet-18 scale)
        assert 1.0e7 <= resnet_spec().total_weights <= 1.3e7

    def test_stage_widths(self):
        widths = sorted({l.out_features for l in resnet_spec().conv_layers})
        assert widths == [64, 128, 256, 512]


def test_paper_specs_returns_all_three():
    names = [spec.name for spec in paper_specs()]
    assert names == ["lenet", "alexnet", "resnet"]
