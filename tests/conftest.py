"""Shared test fixtures and utilities."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``."""
    arrays = [np.array(a, dtype=np.float64) for a in inputs]
    target = arrays[wrt]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = target[index]
        target[index] = original + eps
        plus = fn(*[Tensor(a) for a in arrays]).data.sum()
        target[index] = original - eps
        minus = fn(*[Tensor(a) for a in arrays]).data.sum()
        target[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradients of ``sum(fn(*inputs))`` match central differences."""
    tensors = [Tensor(np.array(a, dtype=np.float64), requires_grad=True) for a in inputs]
    out = fn(*tensors)
    out.sum().backward() if out.data.size > 1 else out.backward()
    for i, tensor in enumerate(tensors):
        expected = numerical_gradient(fn, inputs, wrt=i)
        assert tensor.grad is not None, f"input {i} received no gradient"
        np.testing.assert_allclose(
            tensor.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
