"""Shared test fixtures and utilities."""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Callable, Sequence

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


def _live_resources() -> dict:
    """Snapshot of process-wide resources a serving test could leak."""
    from repro.serve.shm import active_segment_names

    return {
        "shm segments": set(active_segment_names()),
        "threads": {t for t in threading.enumerate() if t.is_alive()},
        "worker processes": set(multiprocessing.active_children()),
    }


def leak_guard(grace_s: float = 3.0):
    """Generator for autouse leak-check fixtures (``yield from`` it).

    Snapshots shared-memory segments, live threads, and multiprocessing
    children before the test; after the test it polls up to ``grace_s``
    seconds for the snapshot to return to baseline (close paths join
    asynchronously) and fails the test naming whatever survived.

    Baseline-relative on purpose: module-scoped servers legitimately
    hold segments, dispatcher threads, and worker processes across the
    tests that share them — higher-scoped fixtures are set up before
    this function-scoped guard, so their resources land in the baseline.
    """
    baseline = _live_resources()
    yield
    deadline = time.monotonic() + grace_s
    while True:
        current = _live_resources()
        leaked = {
            kind: current[kind] - baseline[kind]
            for kind in current
            if current[kind] - baseline[kind]
        }
        if not leaked:
            return
        if time.monotonic() >= deadline:
            break
        time.sleep(0.05)
    detail = "; ".join(
        f"{kind}: {sorted(str(item) for item in items)}"
        for kind, items in sorted(leaked.items())
    )
    pytest.fail(f"test leaked serving resources — {detail}")


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[wrt]``."""
    arrays = [np.array(a, dtype=np.float64) for a in inputs]
    target = arrays[wrt]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = target[index]
        target[index] = original + eps
        plus = fn(*[Tensor(a) for a in arrays]).data.sum()
        target[index] = original - eps
        minus = fn(*[Tensor(a) for a in arrays]).data.sum()
        target[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autograd gradients of ``sum(fn(*inputs))`` match central differences."""
    tensors = [Tensor(np.array(a, dtype=np.float64), requires_grad=True) for a in inputs]
    out = fn(*tensors)
    out.sum().backward() if out.data.size > 1 else out.backward()
    for i, tensor in enumerate(tensors):
        expected = numerical_gradient(fn, inputs, wrt=i)
        assert tensor.grad is not None, f"input {i} received no gradient"
        np.testing.assert_allclose(
            tensor.grad, expected, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
