"""Tests for the NIR-style graph interchange (repro.snc.nir)."""

import json

import numpy as np
import pytest

from repro import datasets
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.models.registry import MODEL_DATASET, available_models, build_model
from repro.nn.modules import ReLU, Sequential
from repro.nn.tensor import Tensor, no_grad
from repro.snc.nir import (
    NIR_FORMAT_VERSION,
    export_nir,
    from_nir,
    import_nir,
    load_nir,
    lower_module,
    to_nir,
    validate_nir,
)


def _deployed(name):
    maker = (
        datasets.mnist_like
        if MODEL_DATASET[name] == "mnist-like"
        else datasets.cifar_like
    )
    train_set, _ = maker(train_size=16, test_size=4, seed=0)
    images = np.asarray(train_set.images[:8], dtype=np.float64)
    model = build_model(name, width_multiplier=0.25, rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8,
                         signal_gain="auto"),
        images,
    )
    return deployed, images


@pytest.fixture(scope="module", params=available_models())
def deployment(request):
    deployed, images = _deployed(request.param)
    return request.param, deployed, images


class TestRoundTrip:
    def test_bit_exact_logits(self, deployment, tmp_path):
        name, deployed, images = deployment
        path = str(tmp_path / f"{name}.nir.npz")
        export_nir(deployed, path, model=name)
        rebuilt = import_nir(path)
        with no_grad():
            reference = deployed(Tensor(images)).data
            imported = rebuilt(Tensor(images)).data
        np.testing.assert_array_equal(imported, reference)

    def test_reexport_is_stable(self, deployment, tmp_path):
        """Export → import → export reproduces the same graph and arrays."""
        name, deployed, _ = deployment
        first = to_nir(deployed, model=name)
        path = str(tmp_path / f"{name}.nir.npz")
        first.save(path)
        second = to_nir(import_nir(path), model=name)
        assert first.meta() == second.meta()
        assert set(first.arrays) == set(second.arrays)
        for key in first.arrays:
            np.testing.assert_array_equal(first.arrays[key], second.arrays[key])

    def test_validation_passes(self, deployment):
        name, deployed, _ = deployment
        report = validate_nir(to_nir(deployed, model=name))
        assert report.ok, report.summary()


class TestFormat:
    @pytest.fixture(scope="class")
    def graph(self):
        deployed, _ = _deployed("lenet")
        return to_nir(deployed, model="lenet")

    def test_meta_is_json_serializable(self, graph):
        payload = json.dumps(graph.meta())
        parsed = json.loads(payload)
        assert parsed["format"] == "repro-nir"
        assert parsed["version"] == NIR_FORMAT_VERSION
        assert parsed["root"] == "model"

    def test_edges_reference_real_nodes(self, graph):
        junctions = {f"{n.id}#sum" for n in graph.nodes.values()
                     if n.kind == "residual"}
        for src, dst in graph.edges:
            assert src in graph.nodes or src in junctions
            assert dst in graph.nodes or dst in junctions

    def test_wrong_version_raises_clear_error(self, graph, tmp_path):
        path = str(tmp_path / "bad.nir.npz")
        bumped = to_nir(from_nir(graph))
        bumped.version = NIR_FORMAT_VERSION + 1
        bumped.save(path)
        with pytest.raises(ValueError, match="unsupported NIR format version"):
            load_nir(path)

    def test_not_a_nir_archive(self, tmp_path):
        path = str(tmp_path / "plain.npz")
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ValueError, match="missing __nir__"):
            load_nir(path)

    def test_unknown_module_rejected(self):
        class Exotic(ReLU.__mro__[1]):  # a bare Module subclass
            def forward(self, x):
                return x

        with pytest.raises(ValueError, match="not NIR-exportable"):
            to_nir(Exotic())


class TestValidation:
    @pytest.fixture()
    def graph(self):
        deployed, _ = _deployed("lenet")
        return to_nir(deployed, model="lenet")

    def test_unknown_kind_flagged(self, graph):
        next(iter(graph.nodes.values())).kind = "lif"  # not in vocabulary
        report = validate_nir(graph)
        assert any(d.rule == "QN802" for d in report.errors)

    def test_dangling_child_flagged(self, graph):
        node = graph.nodes[graph.root]
        node.children.append("model/ghost")
        report = validate_nir(graph)
        assert any(d.rule == "QN804" for d in report.errors)

    def test_missing_array_flagged(self, graph):
        key = next(k for k in graph.arrays if k.endswith(":weight"))
        del graph.arrays[key]
        report = validate_nir(graph)
        assert any(d.rule == "QN803" for d in report.errors)

    def test_shape_contradiction_flagged(self, graph):
        key = next(k for k in graph.arrays if k.endswith(":weight"))
        graph.arrays[key] = graph.arrays[key][..., :1]
        report = validate_nir(graph)
        assert any(d.rule == "QN803" for d in report.errors)

    def test_version_mismatch_flagged(self, graph):
        graph.version = 99
        report = validate_nir(graph)
        assert any(d.rule == "QN801" for d in report.errors)

    def test_mixed_bits_flagged(self, graph):
        quantizers = [n for n in graph.nodes.values()
                      if n.kind == "quantized_activation"]
        assert len(quantizers) >= 2
        quantizers[0].attrs["bits"] = 7
        report = validate_nir(graph)
        assert any(d.rule == "QN805" for d in report.warnings)


class TestLowering:
    def test_vocabulary_module_passes_through(self):
        seq = Sequential(ReLU())
        assert lower_module(seq) is seq

    def test_lenet_lowering_preserves_forward(self):
        model = build_model("lenet", width_multiplier=0.25,
                            rng=np.random.default_rng(1))
        model.eval()
        lowered = lower_module(model).eval()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 1, 28, 28)))
        with no_grad():
            np.testing.assert_array_equal(lowered(x).data, model(x).data)

    def test_resnet_lowering_preserves_forward(self):
        model = build_model("resnet", width_multiplier=0.25,
                            rng=np.random.default_rng(1))
        model.eval()
        lowered = lower_module(model).eval()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 32, 32)))
        with no_grad():
            np.testing.assert_array_equal(lowered(x).data, model(x).data)
