"""Tests for the integrate-and-fire circuit model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snc.ifc import IntegrateAndFire, ifc_for_layer
from repro.snc.spikes import encode_uniform


class TestClosedForm:
    def test_matches_round_and_clip(self):
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=15)
        charge = np.array([-3.0, 0.4, 0.5, 7.2, 99.0])
        np.testing.assert_allclose(ifc.run_total(charge), [0, 0, 1, 7, 15])

    def test_matches_signal_quantizer_exactly(self, rng):
        """IFC semantics ≡ quantize_signals — the equivalence the system
        simulation relies on."""
        from repro.core.quantizers import quantize_signals

        ifc = IntegrateAndFire(threshold=1.0, max_spikes=15)
        values = rng.uniform(-5, 25, size=500)
        np.testing.assert_allclose(ifc.run_total(values), quantize_signals(values, 4))

    def test_threshold_scales_charge(self):
        ifc = IntegrateAndFire(threshold=2.0, max_spikes=7)
        np.testing.assert_allclose(ifc.run_total(np.array([4.0])), [2])

    def test_truncation_mode(self):
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=15, round_to_nearest=False)
        np.testing.assert_allclose(ifc.run_total(np.array([1.9])), [1])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IntegrateAndFire(threshold=0.0, max_spikes=5)
        with pytest.raises(ValueError):
            IntegrateAndFire(threshold=1.0, max_spikes=0)


class TestSteppedSimulation:
    def test_matches_closed_form_for_nonnegative_streams(self, rng):
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=15)
        # Non-negative per-slot charges (excitatory-only column).
        charges = rng.uniform(0, 0.4, size=(15, 20))
        stepped = ifc.run(charges)
        closed = ifc.run_total(charges.sum(axis=0))
        np.testing.assert_allclose(stepped, closed)

    def test_spike_train_input_roundtrip(self):
        """Feeding a rate-coded integer through a unit-weight column
        reproduces the integer."""
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=15)
        values = np.arange(16)
        spike_trains = encode_uniform(values, bits=4).astype(float)
        counts = ifc.run(spike_trains)
        np.testing.assert_allclose(counts, values)

    def test_saturates_at_max(self):
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=3)
        charges = np.full((10, 1), 1.0)
        np.testing.assert_allclose(ifc.run(charges), [3])

    def test_all_negative_stream_fires_nothing(self):
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=15)
        charges = np.full((5, 2), -1.0)
        np.testing.assert_allclose(ifc.run(charges), [0, 0])

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_property_counts_bounded(self, bits):
        rng = np.random.default_rng(bits)
        max_spikes = 2 ** bits - 1
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=max_spikes)
        charges = rng.uniform(-1, 2, size=(max_spikes, 30))
        counts = ifc.run(charges)
        assert counts.min() >= 0
        assert counts.max() <= max_spikes


class TestLayerFactory:
    def test_threshold_from_scale(self):
        ifc = ifc_for_layer(signal_bits=4, weight_bits=4, scale=0.8)
        assert ifc.threshold == pytest.approx(16 / 0.8)
        assert ifc.max_spikes == 15

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ifc_for_layer(4, 4, scale=0.0)

    def test_end_to_end_column(self, rng):
        """Spike counts × crossbar column + IFC = quantized dot product."""
        from repro.core.quantizers import quantize_signals
        from repro.snc.crossbar import CrossbarArray

        bits_w, bits_s, scale = 4, 4, 0.9
        codes = rng.integers(-8, 9, size=(12, 1))
        array = CrossbarArray(codes, bits=bits_w, scale=scale)
        inputs = rng.integers(0, 16, size=(1, 12)).astype(float)

        charge_code_units = array.multiply_analog(inputs)
        ifc = ifc_for_layer(bits_s, bits_w, scale)
        # charge in code units → weight units need scale/2^N; IFC threshold
        # 2^N/scale absorbs it: spike count = round(clip(w·x)).
        counts = ifc.run_total(charge_code_units * (scale / 16) * ifc.threshold)
        expected = quantize_signals(inputs @ (scale * codes / 16), bits_s)
        np.testing.assert_allclose(counts, expected)
