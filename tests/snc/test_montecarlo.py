"""Tests for Monte-Carlo yield estimation."""

import numpy as np
import pytest

from repro.core.qat import Trainer, TrainerConfig
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.snc.montecarlo import YieldReport, estimate_yield, yield_vs_variation
from repro.snc.system import SpikingSystemConfig, build_spiking_system


@pytest.fixture(scope="module")
def deployed():
    train = generate_mnist_like(500, seed=0)
    test = generate_mnist_like(200, seed=11)
    model = LeNet(rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=8, penalty="proposed", bits=4, seed=1)).fit(model, train)
    system = build_spiking_system(
        model,
        SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8),
        train.images[:100],
    )
    return system, test


class TestYieldReport:
    def test_yield_fraction(self):
        report = YieldReport(variation_sigma=0.1, threshold=0.9,
                             accuracies=[0.95, 0.85, 0.92])
        assert report.yield_fraction == pytest.approx(2 / 3)
        assert report.worst_die == pytest.approx(0.85)
        assert "yield" in report.summary()

    def test_empty(self):
        report = YieldReport(variation_sigma=0.1, threshold=0.9)
        assert report.yield_fraction == 0.0
        assert report.mean_accuracy == 0.0


class TestEstimateYield:
    def test_zero_variation_perfect_yield(self, deployed):
        system, test = deployed
        clean_acc = system.accuracy(test.subset(100))
        report = estimate_yield(
            system, test, variation_sigma=0.0,
            threshold=clean_acc - 0.01, n_dies=3, eval_samples=100,
        )
        assert report.yield_fraction == 1.0
        # Ideal dies are all identical.
        assert np.std(report.accuracies) == 0.0

    def test_high_variation_kills_yield(self, deployed):
        system, test = deployed
        report = estimate_yield(
            system, test, variation_sigma=0.5,
            threshold=0.9, n_dies=4, eval_samples=100,
        )
        assert report.yield_fraction < 1.0

    def test_dies_differ_under_variation(self, deployed):
        system, test = deployed
        report = estimate_yield(
            system, test, variation_sigma=0.15,
            threshold=0.5, n_dies=4, eval_samples=100,
        )
        assert len(set(report.accuracies)) > 1

    def test_invalid_args(self, deployed):
        system, test = deployed
        with pytest.raises(ValueError):
            estimate_yield(system, test, 0.1, threshold=1.5)
        with pytest.raises(ValueError):
            estimate_yield(system, test, 0.1, threshold=0.9, n_dies=0)

    def test_system_not_mutated(self, deployed):
        system, test = deployed
        before = system.accuracy(test.subset(100))
        estimate_yield(system, test, 0.3, threshold=0.9, n_dies=2, eval_samples=50)
        after = system.accuracy(test.subset(100))
        assert before == after


class TestSweep:
    def test_yield_monotone_nonincreasing(self, deployed):
        system, test = deployed
        reports = yield_vs_variation(
            system, test, sigmas=[0.0, 0.3], threshold=0.9,
            n_dies=4, eval_samples=100,
        )
        assert reports[0].yield_fraction >= reports[1].yield_fraction


class TestFailurePaths:
    """A die that blows up must be skipped and recorded, not fatal."""

    def _explode_on(self, bad_seed):
        from repro.snc import montecarlo as M

        real = M.die_accuracy

        def sometimes(system, image, subset, variation_sigma, die_seed):
            if die_seed == bad_seed:
                raise RuntimeError(f"die {die_seed} hit a numeric guard")
            return real(system, image, subset, variation_sigma, die_seed)

        return sometimes

    def test_failing_die_does_not_abort_estimate(self, deployed, monkeypatch):
        from repro.flow import Failsink
        from repro.snc import montecarlo as M

        system, test = deployed
        seed, bad_die = 50, 2
        monkeypatch.setattr(M, "die_accuracy", self._explode_on(seed + bad_die))
        sink = Failsink()
        report = estimate_yield(
            system, test, variation_sigma=0.1, threshold=0.5,
            n_dies=4, seed=seed, eval_samples=50, failsink=sink,
        )
        assert report.n_dies == 3            # the other dies completed
        assert report.failed_dies == 1
        assert "1 die(s) failed" in report.summary()

        record = sink.records[0]
        assert record.step == "estimate_yield"
        assert record.index == bad_die
        # The record carries the exact seed that replays the bad die.
        assert record.seed == seed + bad_die
        assert record.error_type == "RuntimeError"

    def test_strict_mode_still_raises(self, deployed, monkeypatch):
        from repro.snc import montecarlo as M

        system, test = deployed
        monkeypatch.setattr(M, "die_accuracy", self._explode_on(1))
        with pytest.raises(RuntimeError, match="numeric guard"):
            estimate_yield(
                system, test, variation_sigma=0.1, threshold=0.5,
                n_dies=3, seed=0, eval_samples=50, on_error="raise",
            )
