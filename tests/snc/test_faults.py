"""Tests for stuck-at-fault injection and the pair-swap rescue."""

import numpy as np
import pytest

from repro.snc.crossbar import CrossbarArray
from repro.snc.faults import (
    inject_stuck_faults,
    realized_weight_error,
    rescue_by_pair_swap,
)


def make_array(rng, rows=64, cols=48, bits=4):
    codes = rng.integers(-8, 9, size=(rows, cols))
    return CrossbarArray(codes, bits=bits, size=32)


class TestInjection:
    def test_zero_rate_no_faults(self, rng):
        array = make_array(rng)
        report = inject_stuck_faults(array, rate=0.0, rng=rng)
        assert report.stuck_sa0 == report.stuck_sa1 == 0
        assert report.fault_rate == 0.0

    def test_rate_respected(self, rng):
        array = make_array(rng, rows=96, cols=96)
        report = inject_stuck_faults(array, rate=0.1, rng=rng)
        assert abs(report.fault_rate - 0.1) < 0.02

    def test_total_devices_counts_both_planes(self, rng):
        array = make_array(rng, rows=64, cols=48)
        report = inject_stuck_faults(array, rate=0.0, rng=rng)
        assert report.total_devices == 64 * 48 * 2

    def test_sa1_fraction(self, rng):
        array = make_array(rng, rows=96, cols=96)
        report = inject_stuck_faults(array, rate=0.2, sa1_fraction=1.0, rng=rng)
        assert report.stuck_sa0 == 0
        assert report.stuck_sa1 > 0

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            inject_stuck_faults(make_array(rng), rate=1.5)
        with pytest.raises(ValueError):
            inject_stuck_faults(make_array(rng), rate=0.1, sa1_fraction=-0.1)

    def test_faults_corrupt_output(self, rng):
        array = make_array(rng)
        inputs = rng.integers(0, 16, size=(4, 64)).astype(float)
        clean = array.multiply_analog(inputs)
        inject_stuck_faults(array, rate=0.2, rng=rng)
        faulty = array.multiply_analog(inputs)
        assert not np.allclose(clean, faulty)

    def test_faulted_devices_at_extremes(self, rng):
        array = make_array(rng)
        inject_stuck_faults(array, rate=1.0, sa1_fraction=0.0, rng=rng)
        for row_tiles in array.tiles:
            for tile in row_tiles:
                np.testing.assert_allclose(tile.g_plus, array.device.g_min)
                np.testing.assert_allclose(tile.g_minus, array.device.g_min)


class TestErrorMetric:
    def test_zero_for_clean_array(self, rng):
        assert realized_weight_error(make_array(rng)) < 1e-12

    def test_grows_with_fault_rate(self, rng):
        errors = []
        for rate in (0.0, 0.05, 0.3):
            array = make_array(np.random.default_rng(1))
            inject_stuck_faults(array, rate=rate, rng=np.random.default_rng(2))
            errors.append(realized_weight_error(array))
        assert errors[0] < errors[1] < errors[2]


class TestRescue:
    def test_no_swaps_on_clean_array(self, rng):
        assert rescue_by_pair_swap(make_array(rng)) == 0

    def test_rescue_never_increases_error(self, rng):
        for seed in (1, 2, 3):
            array = make_array(np.random.default_rng(seed))
            inject_stuck_faults(array, rate=0.15, rng=np.random.default_rng(seed + 10))
            before = realized_weight_error(array)
            swapped = rescue_by_pair_swap(array)
            after = realized_weight_error(array)
            assert after <= before + 1e-12
            if swapped:
                assert after < before

    def test_rescue_helps_sa1_on_magnitude_device(self, rng):
        # A pair with code +3: g⁺ carries 3, g⁻ carries 0.  SA0 on g⁺ makes
        # the realized code 0; swapping can't fix that.  But SA1 on g⁻
        # (making realized code 3 − 8 = −5) is improved by the swap when
        # |5 − 3| < |−5 − 3|.
        codes = np.full((4, 4), 3)
        array = CrossbarArray(codes, bits=4, size=32)
        tile = array.tiles[0][0]
        tile.g_minus[...] = array.device.g_max  # SA1 the whole minus plane
        before = realized_weight_error(array)
        swapped = rescue_by_pair_swap(array)
        after = realized_weight_error(array)
        assert swapped == 16
        assert after < before
