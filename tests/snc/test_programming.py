"""Tests for the memristor programming cost model."""

import pytest

from repro.models.specs import alexnet_spec, lenet_spec, resnet_spec
from repro.snc.programming import (
    ProgrammingModel,
    programming_cost,
    programming_cost_ratio,
)


class TestModel:
    def test_expected_pulses_linear_in_levels(self):
        model = ProgrammingModel(base_pulses=2.0, pulses_per_level=0.5)
        assert model.expected_pulses(9) == pytest.approx(6.5)
        assert model.expected_pulses(33) == pytest.approx(18.5)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            ProgrammingModel().expected_pulses(1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProgrammingModel(base_pulses=-1)
        with pytest.raises(ValueError):
            ProgrammingModel(pulse_width_ns=0)
        with pytest.raises(ValueError):
            ProgrammingModel(parallel_crossbars=0)


class TestCost:
    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            programming_cost(lenet_spec(), 0)

    def test_device_count_matches_crossbars(self):
        cost = programming_cost(lenet_spec(), 4)
        # 15 crossbars × 32² × 2 planes
        assert cost.total_devices == 15 * 1024 * 2

    def test_cost_grows_with_bits(self):
        costs = [programming_cost(lenet_spec(), bits) for bits in (2, 3, 4, 6, 8)]
        times = [c.time_ms for c in costs]
        energies = [c.energy_uj for c in costs]
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_papers_six_bit_objection(self):
        """6-bit devices cost ≈3× the write time of 4-bit — the Sec. 1
        argument for modest precision despite [16]'s 64-level devices."""
        ratio = programming_cost_ratio(lenet_spec(), 6, 4)
        assert ratio > 2.0

    def test_larger_networks_cost_more(self):
        small = programming_cost(lenet_spec(), 4).time_ms
        medium = programming_cost(alexnet_spec(), 4).time_ms
        large = programming_cost(resnet_spec(), 4).time_ms
        assert small < medium < large

    def test_parallelism_reduces_time_not_energy(self):
        serial = programming_cost(
            alexnet_spec(), 4, ProgrammingModel(parallel_crossbars=1)
        )
        parallel = programming_cost(
            alexnet_spec(), 4, ProgrammingModel(parallel_crossbars=16)
        )
        assert parallel.time_ms < serial.time_ms
        assert parallel.energy_uj == pytest.approx(serial.energy_uj)

    def test_total_pulses_consistent(self):
        cost = programming_cost(lenet_spec(), 4)
        assert cost.total_pulses == pytest.approx(
            cost.pulses_per_device * cost.total_devices
        )
