"""Tests for the cycle-level pipeline simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.specs import lenet_spec, paper_specs
from repro.snc.cost import PAPER_SPEED_PROFILES
from repro.snc.pipeline_sim import (
    mixed_precision_speed_mhz,
    simulate_pipeline,
    uniform_pipeline_speed_mhz,
    window_cycles,
)


class TestSimulation:
    def test_single_stage(self):
        stats = simulate_pipeline([10], num_inferences=8)
        assert stats.first_latency == 10
        assert stats.total_cycles == 80
        assert stats.throughput == pytest.approx(0.1)

    def test_uniform_stages(self):
        stats = simulate_pipeline([5, 5, 5], num_inferences=16)
        assert stats.first_latency == 15
        # Steady state: one completion every 5 cycles.
        assert stats.throughput == pytest.approx(1 / 5)

    def test_bottleneck_dominates(self):
        stats = simulate_pipeline([2, 20, 2], num_inferences=16)
        assert stats.throughput == pytest.approx(1 / 20)
        assert stats.bottleneck_layer == 1

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            simulate_pipeline([], num_inferences=4)
        with pytest.raises(ValueError):
            simulate_pipeline([0, 5], num_inferences=4)
        with pytest.raises(ValueError):
            simulate_pipeline([5], num_inferences=1)

    @given(
        st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_throughput_is_inverse_bottleneck(self, windows):
        stats = simulate_pipeline(windows, num_inferences=32)
        assert stats.throughput == pytest.approx(1.0 / max(windows))

    @given(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_first_latency_is_sum(self, windows):
        stats = simulate_pipeline(windows, num_inferences=4)
        assert stats.first_latency == sum(windows)

    @given(
        st.lists(st.integers(min_value=1, max_value=25), min_size=1, max_size=6),
        st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scalar_recurrence(self, windows, num_inferences):
        """The cummax vectorization must reproduce the textbook flow-shop
        recurrence start/finish tables exactly (integer arithmetic)."""
        finish = [[0] * num_inferences for _ in windows]
        for layer, w in enumerate(windows):
            for i in range(num_inferences):
                upstream = finish[layer - 1][i] if layer > 0 else 0
                previous = finish[layer][i - 1] if i > 0 else 0
                finish[layer][i] = max(upstream, previous) + w

        stats = simulate_pipeline(windows, num_inferences)
        assert stats.first_latency == finish[-1][0]
        assert stats.total_cycles == finish[-1][-1]
        if num_inferences >= 2:
            assert stats.throughput == pytest.approx(
                1.0 / (finish[-1][-1] - finish[-1][-2])
            )


class TestWindowCycles:
    def test_values(self):
        assert window_cycles(4) == 15
        assert window_cycles(4, overhead_cycles=2.6) == 18

    def test_invalid(self):
        with pytest.raises(ValueError):
            window_cycles(0)


class TestAgainstAnalyticModel:
    def test_uniform_simulation_matches_cost_model(self):
        """The simulated uniform pipeline must reproduce the calibrated
        analytic speeds for every network and bit width."""
        for spec in paper_specs():
            profile = PAPER_SPEED_PROFILES[spec.name]
            for bits in (3, 4, 8):
                simulated = uniform_pipeline_speed_mhz(spec, bits, profile)
                analytic = profile.speed_mhz(bits)
                assert simulated == pytest.approx(analytic, rel=0.05), (
                    f"{spec.name}@{bits}: sim {simulated} vs analytic {analytic}"
                )


class TestMixedPrecision:
    def test_shape_check(self):
        with pytest.raises(ValueError):
            mixed_precision_speed_mhz(lenet_spec(), [4, 4])

    def test_one_slow_layer_caps_throughput(self):
        """Lowering precision everywhere except one layer buys ~nothing —
        the argument for the paper's uniform bit width."""
        spec = lenet_spec()
        uniform_8 = mixed_precision_speed_mhz(spec, [8, 8, 8, 8])
        one_slow = mixed_precision_speed_mhz(spec, [8, 3, 3, 3])
        uniform_3 = mixed_precision_speed_mhz(spec, [3, 3, 3, 3])
        assert one_slow == pytest.approx(uniform_8, rel=0.02)
        assert uniform_3 > 5 * one_slow

    def test_mixed_between_uniform_bounds(self):
        spec = lenet_spec()
        mixed = mixed_precision_speed_mhz(spec, [5, 4, 4, 3])
        low = mixed_precision_speed_mhz(spec, [5, 5, 5, 5])
        high = mixed_precision_speed_mhz(spec, [3, 3, 3, 3])
        assert low <= mixed <= high
