"""Tests for rate coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.snc.spikes import (
    decode_counts,
    encode_bernoulli,
    encode_uniform,
    encoding_is_lossless,
    window_length,
)


class TestWindow:
    def test_lengths(self):
        assert window_length(4) == 15
        assert window_length(8) == 255

    def test_invalid(self):
        with pytest.raises(ValueError):
            window_length(0)


class TestUniformEncoding:
    def test_exact_roundtrip(self):
        values = np.arange(16)
        spikes = encode_uniform(values, bits=4)
        np.testing.assert_allclose(decode_counts(spikes), values)

    def test_shape(self):
        spikes = encode_uniform(np.zeros((3, 4)), bits=3)
        assert spikes.shape == (7, 3, 4)

    def test_saturation(self):
        spikes = encode_uniform(np.array([100]), bits=4)
        assert decode_counts(spikes)[0] == 15

    def test_negative_clamps(self):
        spikes = encode_uniform(np.array([-5]), bits=4)
        assert decode_counts(spikes)[0] == 0

    def test_spikes_evenly_spread(self):
        # value 5 in window 15: gaps between spikes differ by at most 1 slot.
        spikes = encode_uniform(np.array([5]), bits=4)[:, 0]
        positions = np.where(spikes)[0]
        gaps = np.diff(positions)
        assert gaps.max() - gaps.min() <= 1

    def test_full_value_fires_every_slot(self):
        spikes = encode_uniform(np.array([15]), bits=4)[:, 0]
        assert spikes.all()

    @given(
        hnp.arrays(
            dtype=np.int64,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=6),
            elements=st.integers(min_value=0, max_value=255),
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_lossless_within_window(self, values, bits):
        assert encoding_is_lossless(values, bits)

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_property_every_integer_roundtrips(self, bits):
        values = np.arange(window_length(bits) + 1)
        decoded = decode_counts(encode_uniform(values, bits))
        np.testing.assert_allclose(decoded, values)


class TestBernoulliEncoding:
    def test_expectation_correct(self):
        rng = np.random.default_rng(0)
        values = np.full(4000, 7)
        spikes = encode_bernoulli(values, bits=4, rng=rng)
        mean_count = decode_counts(spikes).mean()
        assert abs(mean_count - 7) < 0.15

    def test_stochastic_not_exact(self):
        """The point of deterministic rate coding: Bernoulli is lossy."""
        rng = np.random.default_rng(0)
        values = np.full(200, 7)
        decoded = decode_counts(encode_bernoulli(values, bits=4, rng=rng))
        assert not np.all(decoded == 7)

    def test_zero_never_fires(self):
        spikes = encode_bernoulli(np.zeros(10), bits=4, rng=np.random.default_rng(0))
        assert decode_counts(spikes).sum() == 0
