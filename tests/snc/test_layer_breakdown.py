"""Tests for the per-layer cost decomposition."""

import numpy as np
import pytest

from repro.models.specs import alexnet_spec, lenet_spec, resnet_spec
from repro.snc.cost import evaluate_system_cost, layer_breakdown


class TestLayerBreakdown:
    def test_one_row_per_layer(self):
        rows = layer_breakdown(lenet_spec(), 4)
        assert len(rows) == 4
        assert [r["kind"] for r in rows] == ["conv", "conv", "fc", "fc"]

    def test_sums_match_totals(self):
        for spec in (lenet_spec(), alexnet_spec()):
            for bits in (3, 4, 8):
                rows = layer_breakdown(spec, bits)
                total = evaluate_system_cost(spec, bits)
                assert sum(r["energy_uj"] for r in rows) == pytest.approx(
                    total.energy_uj, rel=1e-9
                )
                assert sum(r["area_mm2"] for r in rows) == pytest.approx(
                    total.area_mm2, rel=1e-9
                )

    def test_lenet_fc1_dominates_crossbars(self):
        # LeNet's fc1 (256×16) needs 8 of the 15 crossbars.
        rows = layer_breakdown(lenet_spec(), 4)
        fc1 = rows[2]
        assert fc1["crossbars"] == max(r["crossbars"] for r in rows)

    def test_resnet_late_stages_dominate_area(self):
        rows = layer_breakdown(resnet_spec(), 4)
        first_half = sum(r["area_mm2"] for r in rows[:9])
        second_half = sum(r["area_mm2"] for r in rows[9:])
        assert second_half > first_half  # 256/512-wide stages dominate

    def test_conv_layers_dominate_spike_events(self):
        # Spatial reuse makes conv layers the spike-traffic hotspots.
        rows = layer_breakdown(alexnet_spec(), 4)
        conv_events = sum(r["output_events"] for r in rows if r["kind"] == "conv")
        fc_events = sum(r["output_events"] for r in rows if r["kind"] == "fc")
        assert conv_events > 10 * fc_events

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            layer_breakdown(lenet_spec(), 0)


class TestTrainerEarlyStopping:
    def test_patience_stops_early(self, rng):
        from repro.core.qat import Trainer, TrainerConfig
        from repro.nn.data import Dataset
        from repro import nn

        images = rng.normal(size=(40, 1, 4, 4))
        labels = rng.integers(0, 2, size=40)  # unlearnable noise labels
        data = Dataset(images, labels)
        model = nn.Sequential(
            nn.Flatten(), nn.Linear(16, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng)
        )
        history = Trainer(
            TrainerConfig(epochs=30, patience=2, seed=0)
        ).fit(model, data, data)
        assert len(history.losses) < 30

    def test_restore_best_keeps_peak_weights(self, rng):
        from repro.analysis.metrics import evaluate_accuracy
        from repro.core.qat import Trainer, TrainerConfig
        from repro.nn.data import Dataset
        from repro import nn

        half = 30
        images = np.zeros((60, 1, 4, 4))
        images[:half] = rng.normal(-1, 0.4, size=(half, 1, 4, 4))
        images[half:] = rng.normal(1, 0.4, size=(half, 1, 4, 4))
        labels = np.array([0] * half + [1] * half)
        data = Dataset(images, labels)
        model = nn.Sequential(
            nn.Flatten(), nn.Linear(16, 4, rng=rng), nn.ReLU(), nn.Linear(4, 2, rng=rng)
        )
        history = Trainer(
            TrainerConfig(epochs=10, lr=1e-2, restore_best=True, seed=0)
        ).fit(model, data, data)
        final = evaluate_accuracy(model, data)
        assert final == pytest.approx(max(history.eval_accuracies), abs=1e-9)
