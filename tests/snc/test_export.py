"""Tests for the chip programming image export/load/install cycle."""

import numpy as np
import pytest

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.surgery import clone_module
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.snc.export import (
    export_programming_image,
    install_chip,
    load_programming_image,
    program_chip,
)
from repro.snc.mapping import map_network


@pytest.fixture(scope="module")
def mapped(rng_module=np.random.default_rng(5)):
    model = LeNet(width_multiplier=0.5, rng=rng_module)
    deployed, info = deploy_model(
        model, DeploymentConfig(signal_bits=4, weight_bits=4, weight_mode="clustered")
    )
    hardware = clone_module(deployed)
    map_network(hardware, info.clustering)
    return hardware


class TestExportLoad:
    def test_roundtrip_codes(self, mapped, tmp_path):
        path = str(tmp_path / "chip.npz")
        meta = export_programming_image(mapped, path)
        assert set(meta) == {"conv1", "conv2", "fc1", "fc2"}
        image = load_programming_image(path)
        for name, layer in image.items():
            assert layer.bits == 4
            assert layer.codes.dtype == np.int64
            assert np.abs(layer.codes[: layer.codes.shape[0] - layer.bias_rows]).max() <= 8

    def test_unmapped_network_rejected(self, tmp_path):
        model = LeNet(width_multiplier=0.5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            export_programming_image(model, str(tmp_path / "x.npz"))

    def test_export_creates_directories(self, mapped, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "chip.npz")
        export_programming_image(mapped, path)
        import os

        assert os.path.exists(path)


class TestProgramAndInstall:
    def test_ideal_chip_preserves_outputs(self, mapped, tmp_path, rng):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        chip = program_chip(image, variation_sigma=0.0)

        x = Tensor(rng.normal(size=(4, 1, 28, 28)))
        with no_grad():
            before = mapped(x).data
        target = clone_module(mapped)
        installed = install_chip(target, chip)
        assert installed == 4
        with no_grad():
            after = target(x).data
        np.testing.assert_allclose(after, before, atol=1e-8)

    def test_different_dies_differ(self, mapped, tmp_path, rng):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        die_a = program_chip(image, variation_sigma=0.1, seed=1)
        die_b = program_chip(image, variation_sigma=0.1, seed=2)

        x = Tensor(rng.normal(size=(2, 1, 28, 28)))
        net_a = clone_module(mapped)
        net_b = clone_module(mapped)
        install_chip(net_a, die_a)
        install_chip(net_b, die_b)
        with no_grad():
            out_a = net_a(x).data
            out_b = net_b(x).data
        assert not np.allclose(out_a, out_b)

    def test_missing_layer_raises(self, mapped, tmp_path):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        image.pop("conv1")
        chip = program_chip(image)
        with pytest.raises(KeyError):
            install_chip(clone_module(mapped), chip)
