"""Tests for the chip programming image export/load/install cycle."""

import json

import numpy as np
import pytest

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.surgery import clone_module
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.snc.export import (
    FORMAT_VERSION,
    export_programming_image,
    install_chip,
    load_programming_image,
    program_chip,
)
from repro.snc.mapping import SpikingConv2d, SpikingLinear, map_network


@pytest.fixture(scope="module")
def mapped(rng_module=np.random.default_rng(5)):
    model = LeNet(width_multiplier=0.5, rng=rng_module)
    deployed, info = deploy_model(
        model, DeploymentConfig(signal_bits=4, weight_bits=4, weight_mode="clustered")
    )
    hardware = clone_module(deployed)
    map_network(hardware, info.clustering)
    return hardware


class TestExportLoad:
    def test_roundtrip_codes(self, mapped, tmp_path):
        path = str(tmp_path / "chip.npz")
        meta = export_programming_image(mapped, path)
        assert set(meta) == {"conv1", "conv2", "fc1", "fc2"}
        image = load_programming_image(path)
        for name, layer in image.items():
            assert layer.bits == 4
            assert layer.codes.dtype == np.int64
            assert np.abs(layer.codes[: layer.codes.shape[0] - layer.bias_rows]).max() <= 8

    def test_unmapped_network_rejected(self, tmp_path):
        model = LeNet(width_multiplier=0.5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            export_programming_image(model, str(tmp_path / "x.npz"))

    def test_export_creates_directories(self, mapped, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "chip.npz")
        export_programming_image(mapped, path)
        import os

        assert os.path.exists(path)


class TestRoundTripProperty:
    """The image is a faithful, versioned serialization.

    Property: for any mapped network, export → load preserves every
    layer's codes / scale / bits / bias rows bit-exactly; realizing the
    image is deterministic given (sigma, seed); and the format version
    is checked explicitly, never silently ignored.
    """

    @pytest.mark.parametrize("seed", [0, 23])
    def test_every_layer_field_survives_roundtrip(self, tmp_path, seed):
        model = LeNet(width_multiplier=0.25, rng=np.random.default_rng(seed))
        deployed, info = deploy_model(
            model,
            DeploymentConfig(signal_bits=4, weight_bits=4, weight_mode="clustered"),
        )
        hardware = clone_module(deployed)
        map_network(hardware, info.clustering)
        path = str(tmp_path / "chip.npz")
        export_programming_image(hardware, path)
        image = load_programming_image(path)

        modules = {
            name: module
            for name, module in hardware.named_modules()
            if isinstance(module, (SpikingConv2d, SpikingLinear))
        }
        assert set(image) == set(modules)
        for name, layer in image.items():
            array = modules[name].array
            assert np.array_equal(layer.codes, array.weight_codes)
            assert layer.scale == array.scale
            assert layer.bits == array.bits
            assert layer.bias_rows == modules[name]._n_bias_rows

    def test_same_die_programs_identically(self, mapped, tmp_path, rng):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        die_a = program_chip(image, variation_sigma=0.1, seed=3)
        die_b = program_chip(image, variation_sigma=0.1, seed=3)

        x = Tensor(rng.normal(size=(2, 1, 28, 28)))
        net_a = clone_module(mapped)
        net_b = clone_module(mapped)
        install_chip(net_a, die_a)
        install_chip(net_b, die_b)
        with no_grad():
            out_a = net_a(x).data
            out_b = net_b(x).data
        assert np.array_equal(out_a, out_b)

    def test_version_mismatch_raises_clear_error(self, mapped, tmp_path):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        meta = json.loads(payload["__meta__"].tobytes().decode())
        meta["version"] = FORMAT_VERSION + 1
        payload["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="unsupported image version"):
            load_programming_image(path)


class TestProgramAndInstall:
    def test_ideal_chip_preserves_outputs(self, mapped, tmp_path, rng):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        chip = program_chip(image, variation_sigma=0.0)

        x = Tensor(rng.normal(size=(4, 1, 28, 28)))
        with no_grad():
            before = mapped(x).data
        target = clone_module(mapped)
        installed = install_chip(target, chip)
        assert installed == 4
        with no_grad():
            after = target(x).data
        np.testing.assert_allclose(after, before, atol=1e-8)

    def test_different_dies_differ(self, mapped, tmp_path, rng):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        die_a = program_chip(image, variation_sigma=0.1, seed=1)
        die_b = program_chip(image, variation_sigma=0.1, seed=2)

        x = Tensor(rng.normal(size=(2, 1, 28, 28)))
        net_a = clone_module(mapped)
        net_b = clone_module(mapped)
        install_chip(net_a, die_a)
        install_chip(net_b, die_b)
        with no_grad():
            out_a = net_a(x).data
            out_b = net_b(x).data
        assert not np.allclose(out_a, out_b)

    def test_missing_layer_raises(self, mapped, tmp_path):
        path = str(tmp_path / "chip.npz")
        export_programming_image(mapped, path)
        image = load_programming_image(path)
        image.pop("conv1")
        chip = program_chip(image)
        with pytest.raises(KeyError):
            install_chip(clone_module(mapped), chip)
