"""Tests for crossbar tiles, arrays, and the Eq. 1 partitioning rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snc.crossbar import Crossbar, CrossbarArray, crossbars_required
from repro.snc.memristor import MemristorModel


class TestEquation1:
    def test_exact_fit(self):
        assert crossbars_required(32, 32, 32) == 1

    def test_row_overflow(self):
        assert crossbars_required(33, 32, 32) == 2

    def test_column_overflow(self):
        assert crossbars_required(32, 33, 32) == 2

    def test_both_overflow(self):
        assert crossbars_required(100, 100, 32) == 4 * 4

    def test_paper_example_conv_layer(self):
        # AlexNet conv2: J=32 filters, s=3, d=32 → rows 288, cols 32
        assert crossbars_required(3 * 3 * 32, 32, 32) == 9

    def test_lenet_fc1(self):
        # 256 rows × 16 cols on 32×32 crossbars → 8×1
        assert crossbars_required(256, 16, 32) == 8

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            crossbars_required(0, 5, 32)
        with pytest.raises(ValueError):
            crossbars_required(5, 5, 0)

    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_matches_ceil_formula(self, rows, cols, size):
        expected = int(np.ceil(cols / size)) * int(np.ceil(rows / size))
        assert crossbars_required(rows, cols, size) == expected

    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_capacity_sufficient(self, rows, cols):
        count = crossbars_required(rows, cols, 32)
        assert count * 32 * 32 >= rows * cols


class TestCrossbarTile:
    def test_differential_mvm(self, rng):
        g_plus = rng.uniform(1e-6, 2e-5, size=(4, 3))
        g_minus = rng.uniform(1e-6, 2e-5, size=(4, 3))
        tile = Crossbar(g_plus, g_minus)
        v = rng.normal(size=(2, 4))
        np.testing.assert_allclose(tile.multiply(v), v @ (g_plus - g_minus))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            Crossbar(np.ones((2, 2)), np.ones((3, 2)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            Crossbar(np.ones(4), np.ones(4))


class TestCrossbarArray:
    def test_analog_equals_integer_mvm(self, rng):
        codes = rng.integers(-8, 9, size=(70, 40))
        array = CrossbarArray(codes, bits=4, size=32)
        inputs = rng.integers(0, 16, size=(5, 70)).astype(float)
        np.testing.assert_allclose(
            array.multiply_analog(inputs), array.multiply_codes(inputs), atol=1e-6
        )

    def test_num_crossbars_matches_eq1(self, rng):
        codes = rng.integers(-8, 9, size=(70, 40))
        array = CrossbarArray(codes, bits=4, size=32)
        assert array.num_crossbars == crossbars_required(70, 40, 32)

    def test_single_tile(self, rng):
        codes = rng.integers(-2, 3, size=(10, 10))
        array = CrossbarArray(codes, bits=2, size=32)
        assert array.num_crossbars == 1

    def test_code_range_validated(self):
        with pytest.raises(ValueError):
            CrossbarArray(np.array([[10]]), bits=3)  # |code| > 4

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            CrossbarArray(np.zeros(5), bits=4)

    def test_input_dim_check(self, rng):
        array = CrossbarArray(rng.integers(-1, 2, size=(6, 3)), bits=2)
        with pytest.raises(ValueError):
            array.multiply_analog(np.ones((2, 7)))

    def test_weights_reconstruction(self, rng):
        codes = rng.integers(-8, 9, size=(5, 4))
        array = CrossbarArray(codes, bits=4, scale=0.7)
        np.testing.assert_allclose(array.weights(), 0.7 * codes / 16)

    def test_variation_perturbs_output(self, rng):
        codes = rng.integers(-8, 9, size=(20, 10))
        device = MemristorModel(levels=9, variation_sigma=0.1)
        ideal = CrossbarArray(codes, bits=4, size=32)
        noisy = CrossbarArray(codes, bits=4, size=32, device=device,
                              rng=np.random.default_rng(0))
        inputs = rng.integers(0, 16, size=(3, 20)).astype(float)
        exact = ideal.multiply_analog(inputs)
        perturbed = noisy.multiply_analog(inputs)
        assert not np.allclose(exact, perturbed)
        # ... but remains correlated (differential pairs cancel offsets)
        correlation = np.corrcoef(exact.ravel(), perturbed.ravel())[0, 1]
        assert correlation > 0.9

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=12, deadline=None)
    def test_property_zero_codes_zero_output(self, bits):
        array = CrossbarArray(np.zeros((8, 4), dtype=int), bits=bits)
        out = array.multiply_analog(np.ones((2, 8)))
        np.testing.assert_allclose(out, 0.0, atol=1e-9)

    def test_negative_weights_supported(self):
        codes = np.array([[-4, 4], [2, -2]])
        array = CrossbarArray(codes, bits=3)
        out = array.multiply_analog(np.array([1.0, 1.0]))
        np.testing.assert_allclose(out, [-2.0, 2.0], atol=1e-9)
