"""Tests for the test-vector health probe (repro.snc.diagnosis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snc.crossbar import CrossbarArray
from repro.snc.diagnosis import (
    DEFAULT_CODE_TOLERANCE,
    HARD_FAULT_THRESHOLD,
    HealthReport,
    diagnose,
    probe_array,
)
from repro.snc.faults import inject_stuck_faults
from repro.snc.memristor import MemristorModel


def make_array(rng, rows=64, cols=48, bits=4, sigma=0.0, seed=0):
    codes = rng.integers(-8, 9, size=(rows, cols))
    device = MemristorModel(levels=2 ** (bits - 1) + 1, variation_sigma=sigma)
    return CrossbarArray(
        codes, bits=bits, size=32, device=device, rng=np.random.default_rng(seed)
    )


class TestProbeArray:
    def test_ideal_array_is_healthy(self, rng):
        health = probe_array(make_array(rng), layer="l0", seed=0)
        assert health.passed
        assert health.deviating_pairs == 0
        assert health.estimated_stuck == health.estimated_drift == 0
        assert health.max_code_error < DEFAULT_CODE_TOLERANCE
        assert health.functional_max_error < 1e-9
        assert health.failing_tiles == []

    def test_total_pairs_counts_every_weight(self, rng):
        health = probe_array(make_array(rng, rows=40, cols=24), layer="l0", seed=0)
        assert health.total_pairs == 40 * 24

    def test_stuck_faults_detected_as_hard(self, rng):
        array = make_array(rng)
        inject_stuck_faults(array, rate=0.05, seed=3)
        health = probe_array(array, layer="l0", seed=0)
        assert not health.passed
        assert health.deviating_pairs > 0
        # A stuck extreme conductance moves the realized code by whole codes.
        assert health.estimated_stuck > 0
        assert health.max_code_error >= HARD_FAULT_THRESHOLD
        assert health.failing_tiles

    def test_drift_detected_as_soft(self, rng):
        array = make_array(rng, sigma=0.08, seed=11)
        health = probe_array(array, layer="l0", seed=0)
        assert not health.passed
        # Lognormal drift mostly lands under one full code at this sigma.
        assert health.estimated_drift > health.estimated_stuck

    def test_functional_probe_flags_faults(self, rng):
        array = make_array(rng)
        inject_stuck_faults(array, rate=0.1, seed=3)
        health = probe_array(array, layer="l0", n_functional=4, seed=0)
        assert health.functional_max_error > 0

    def test_tolerance_widens_pass_band(self, rng):
        array = make_array(rng, sigma=0.05, seed=11)
        strict = probe_array(array, layer="l0", code_tolerance=0.05, seed=0)
        loose = probe_array(array, layer="l0", code_tolerance=10.0, seed=0)
        assert strict.deviating_pairs > loose.deviating_pairs
        assert loose.passed

    def test_seed_and_rng_are_exclusive(self, rng):
        with pytest.raises(ValueError):
            probe_array(make_array(rng), layer="l0", seed=0, rng=np.random.default_rng(0))


class TestHealthReport:
    def test_summary_mentions_verdict_and_layers(self, rng):
        array = make_array(rng)
        inject_stuck_faults(array, rate=0.05, seed=3)
        report = HealthReport(
            code_tolerance=DEFAULT_CODE_TOLERANCE,
            layers=[
                probe_array(make_array(rng), layer="clean", seed=0),
                probe_array(array, layer="dirty", seed=0),
            ],
        )
        assert not report.healthy
        assert report.worst_layer == "dirty"
        text = report.summary()
        assert "FAULTY" in text
        assert "clean" in text and "dirty" in text

    def test_healthy_summary(self, rng):
        report = HealthReport(
            code_tolerance=DEFAULT_CODE_TOLERANCE,
            layers=[probe_array(make_array(rng), layer="l0", seed=0)],
        )
        assert report.healthy
        assert report.worst_layer is None
        assert "HEALTHY" in report.summary()

    def test_totals_aggregate_layers(self, rng):
        a = make_array(rng, rows=32, cols=32)
        b = make_array(rng, rows=64, cols=32)
        report = HealthReport(
            code_tolerance=DEFAULT_CODE_TOLERANCE,
            layers=[
                probe_array(a, layer="a", seed=0),
                probe_array(b, layer="b", seed=0),
            ],
        )
        assert report.total_pairs == 32 * 32 + 64 * 32


class TestIdealAlwaysHealthyProperty:
    @given(
        rows=st.integers(2, 48),
        cols=st.integers(2, 48),
        bits=st.sampled_from([3, 4, 5]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_ideal_array_never_flags(self, rows, cols, bits, seed):
        rng = np.random.default_rng(seed)
        half = 2 ** (bits - 1)
        codes = rng.integers(-half, half + 1, size=(rows, cols))
        array = CrossbarArray(codes, bits=bits, size=32)
        health = probe_array(array, layer="l0", seed=seed)
        assert health.passed
        assert health.deviating_pairs == 0
        assert health.functional_max_error < 1e-9


class TestDiagnoseSystem:
    def test_requires_mapped_layers(self):
        class Dummy:
            network = None

        from repro.nn.modules import Sequential

        dummy = Dummy()
        dummy.network = Sequential()
        with pytest.raises(ValueError):
            diagnose(dummy)
