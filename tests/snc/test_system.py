"""Tests for the end-to-end spiking system (LeNet-scale, kept fast)."""

import numpy as np
import pytest

from repro.core.qat import Trainer, TrainerConfig
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.snc.system import SpikingSystemConfig, build_spiking_system


@pytest.fixture(scope="module")
def trained_lenet():
    train = generate_mnist_like(600, seed=0)
    model = LeNet(width_multiplier=1.0, rng=np.random.default_rng(7))
    Trainer(TrainerConfig(epochs=8, penalty="proposed", bits=4, seed=1)).fit(model, train)
    return model, train


@pytest.fixture(scope="module")
def system(trained_lenet):
    model, train = trained_lenet
    config = SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8)
    return build_spiking_system(model, config, train.images[:100])


class TestEquivalence:
    def test_bit_exact_against_software(self, system, trained_lenet):
        _, train = trained_lenet
        assert system.verify_equivalence(train.images[:40])

    def test_predictions_shape(self, system, trained_lenet):
        _, train = trained_lenet
        predictions = system.predict(train.images[:10])
        assert predictions.shape == (10,)
        assert set(np.unique(predictions)) <= set(range(10))

    def test_accuracy_reasonable(self, system):
        test = generate_mnist_like(150, seed=42)
        accuracy = system.accuracy(test)
        assert accuracy > 0.5  # trained briefly, deployed fully quantized

    def test_hardware_accuracy_close_to_software(self, system):
        from repro.analysis.metrics import evaluate_accuracy

        test = generate_mnist_like(150, seed=42)
        hw = system.accuracy(test)
        sw = evaluate_accuracy(system.software_reference, test)
        assert abs(hw - sw) < 1e-9  # identical by bit-exactness


class TestVariation:
    def test_variation_breaks_equivalence(self, trained_lenet):
        model, train = trained_lenet
        config = SpikingSystemConfig(
            signal_bits=4, weight_bits=4, input_bits=8, variation_sigma=0.2, seed=5
        )
        noisy = build_spiking_system(model, config, train.images[:100])
        assert not noisy.verify_equivalence(train.images[:40])

    def test_small_variation_degrades_gracefully(self, trained_lenet, system):
        model, train = trained_lenet
        test = generate_mnist_like(150, seed=42)
        clean_acc = system.accuracy(test)
        config = SpikingSystemConfig(
            signal_bits=4, weight_bits=4, input_bits=8, variation_sigma=0.02, seed=5
        )
        noisy = build_spiking_system(model, config, train.images[:100])
        assert noisy.accuracy(test) > clean_acc - 0.15


class TestSpikeStatistics:
    def test_counts_positive_and_window_correct(self, system, trained_lenet):
        _, train = trained_lenet
        stats = system.spike_statistics(train.images[:20])
        assert stats.window == 15
        assert stats.total_mean_spikes > 0
        assert len(stats.per_layer_counts) == 3  # three quantized activations

    def test_spike_counts_bounded_by_capacity(self, system, trained_lenet):
        _, train = trained_lenet
        stats = system.spike_statistics(train.images[:20])
        for layer, count in stats.per_layer_counts.items():
            assert count >= 0


class TestMappingIntegration:
    def test_crossbar_counts_present(self, system):
        assert system.mapping.total_crossbars > 0
        assert len(system.mapping.layers) == 4
