"""Tests for the memristor device model."""

import numpy as np
import pytest

from repro.snc.memristor import (
    MemristorModel,
    levels_for_bits,
    model_for_bits,
)


class TestModelBasics:
    def test_paper_resistance_window(self):
        model = MemristorModel()
        assert model.g_max == pytest.approx(1 / 50_000)
        assert model.g_min == pytest.approx(1 / 1_000_000)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MemristorModel(r_on=1e6, r_off=5e4)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            MemristorModel(levels=1)

    def test_invalid_variation(self):
        with pytest.raises(ValueError):
            MemristorModel(variation_sigma=-0.1)

    def test_level_conductances_linear(self):
        model = MemristorModel(levels=9)
        levels = model.level_conductances()
        assert len(levels) == 9
        np.testing.assert_allclose(np.diff(levels), model.g_step)
        assert levels[0] == pytest.approx(model.g_min)
        assert levels[-1] == pytest.approx(model.g_max)


class TestProgramming:
    def test_ideal_programming_exact(self):
        model = MemristorModel(levels=5)
        levels = np.array([0, 2, 4])
        g = model.program(levels)
        np.testing.assert_allclose(g, model.g_min + levels * model.g_step)

    def test_out_of_range_level(self):
        model = MemristorModel(levels=4)
        with pytest.raises(ValueError):
            model.program(np.array([4]))
        with pytest.raises(ValueError):
            model.program(np.array([-1]))

    def test_variation_is_lognormal_multiplicative(self):
        model = MemristorModel(levels=5, variation_sigma=0.1)
        rng = np.random.default_rng(0)
        levels = np.full(20_000, 3)
        g = model.program(levels, rng)
        ideal = model.g_min + 3 * model.g_step
        ratios = np.log(g / ideal)
        assert abs(ratios.mean()) < 0.01
        assert abs(ratios.std() - 0.1) < 0.01

    def test_variation_deterministic_with_seed(self):
        model = MemristorModel(levels=5, variation_sigma=0.2)
        a = model.program(np.array([1, 2]), np.random.default_rng(7))
        b = model.program(np.array([1, 2]), np.random.default_rng(7))
        np.testing.assert_allclose(a, b)

    def test_read_current_ohms_law(self):
        i = MemristorModel.read_current(np.array([2e-6]), np.array([0.5]))
        np.testing.assert_allclose(i, [1e-6])


class TestLevelsForBits:
    def test_counts(self):
        assert levels_for_bits(1) == 2
        assert levels_for_bits(4) == 9
        assert levels_for_bits(6) == 33

    def test_within_hp_labs_capability(self):
        """[16]: real devices afford 64 levels; 4-bit needs only 9."""
        assert levels_for_bits(4) <= 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            levels_for_bits(0)

    def test_model_for_bits(self):
        model = model_for_bits(4, variation_sigma=0.05)
        assert model.levels == 9
        assert model.variation_sigma == 0.05
