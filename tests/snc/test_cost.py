"""Tests for the Table 5 cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.specs import alexnet_spec, lenet_spec, paper_specs, resnet_spec
from repro.snc.cost import (
    PAPER_SPEED_PROFILES,
    PAPER_TABLE5,
    RequantEnergyParameters,
    SpeedProfile,
    aggregate_network,
    evaluate_system_cost,
    generic_speed_profile,
    requant_energy_delta,
    table5_row,
)


class TestAggregates:
    def test_lenet_crossbar_count(self):
        # conv1 (25×6): 1, conv2 (150×16): 5, fc1 (256×16): 8, fc2 (16×10): 1
        assert aggregate_network(lenet_spec()).num_crossbars == 15

    def test_cells_are_differential(self):
        agg = aggregate_network(lenet_spec())
        assert agg.num_cells == 15 * 1024 * 2

    def test_resnet_much_larger_than_lenet(self):
        lenet = aggregate_network(lenet_spec())
        resnet = aggregate_network(resnet_spec())
        assert resnet.num_crossbars > 100 * lenet.num_crossbars


class TestSpeedProfiles:
    def test_paper_8bit_speeds_reproduced(self):
        for name, profile in PAPER_SPEED_PROFILES.items():
            paper_speed = PAPER_TABLE5[name][8][0]
            assert profile.speed_mhz(8) == pytest.approx(paper_speed, rel=0.01)

    def test_paper_4bit_speeds_reproduced(self):
        for name, profile in PAPER_SPEED_PROFILES.items():
            paper_speed = PAPER_TABLE5[name][4][0]
            assert profile.speed_mhz(4) == pytest.approx(paper_speed, rel=0.01)

    def test_3bit_speed_predicted_within_3_percent(self):
        """The 3-bit row is a *prediction* — the model's validation."""
        for name, profile in PAPER_SPEED_PROFILES.items():
            paper_speed = PAPER_TABLE5[name][3][0]
            assert profile.speed_mhz(3) == pytest.approx(paper_speed, rel=0.03)

    def test_speed_monotone_decreasing_in_bits(self):
        profile = PAPER_SPEED_PROFILES["lenet"]
        speeds = [profile.speed_mhz(bits) for bits in range(2, 9)]
        assert all(a > b for a, b in zip(speeds, speeds[1:]))

    def test_roughly_halves_per_extra_bit(self):
        """Fig. 1a's shape: window doubles with every bit."""
        profile = PAPER_SPEED_PROFILES["lenet"]
        ratio = profile.speed_mhz(5) / profile.speed_mhz(6)
        assert 1.7 < ratio < 2.1

    def test_generic_profile(self):
        profile = generic_speed_profile(num_layers=4)
        assert profile.speed_mhz(4) > profile.speed_mhz(8)
        with pytest.raises(ValueError):
            generic_speed_profile(0)


class TestCostModel:
    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            evaluate_system_cost(lenet_spec(), 0)

    def test_energy_within_35_percent_of_paper(self):
        for spec in paper_specs():
            for bits in (8, 4, 3):
                cost = evaluate_system_cost(spec, bits)
                paper_energy = PAPER_TABLE5[spec.name][bits][1]
                assert cost.energy_uj == pytest.approx(paper_energy, rel=0.35)

    def test_area_within_12_percent_of_paper(self):
        for spec in paper_specs():
            for bits in (8, 4, 3):
                cost = evaluate_system_cost(spec, bits)
                paper_area = PAPER_TABLE5[spec.name][bits][2]
                assert cost.area_mm2 == pytest.approx(paper_area, rel=0.12)

    def test_area_savings_match_paper_exactly(self):
        """30% at 4 bits and 37.5% at 3 bits, for any network."""
        for spec in paper_specs():
            base = evaluate_system_cost(spec, 8)
            assert evaluate_system_cost(spec, 4).area_saving_over(base) == pytest.approx(0.30)
            assert evaluate_system_cost(spec, 3).area_saving_over(base) == pytest.approx(0.375)

    def test_headline_claims(self):
        """Abstract: ≥9.8× speedup, ≥89.1%-ish energy saving, 30% area."""
        for spec in paper_specs():
            base = evaluate_system_cost(spec, 8)
            ours = evaluate_system_cost(spec, 4)
            assert ours.speedup_over(base) >= 9.8
            assert ours.energy_saving_over(base) >= 0.85
            assert ours.area_saving_over(base) == pytest.approx(0.30)

    def test_energy_monotone_in_bits(self):
        for spec in paper_specs():
            energies = [evaluate_system_cost(spec, b).energy_uj for b in range(2, 9)]
            assert all(a < b for a, b in zip(energies, energies[1:]))

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_property_more_bits_never_faster_or_cheaper(self, bits_a, bits_b):
        spec = alexnet_spec()
        low, high = sorted((bits_a, bits_b))
        cost_low = evaluate_system_cost(spec, low)
        cost_high = evaluate_system_cost(spec, high)
        assert cost_low.speed_mhz >= cost_high.speed_mhz
        assert cost_low.energy_uj <= cost_high.energy_uj
        assert cost_low.area_mm2 <= cost_high.area_mm2

    def test_activity_aware_energy(self):
        sparse = evaluate_system_cost(lenet_spec(), 4, mean_activity=0.1)
        dense = evaluate_system_cost(lenet_spec(), 4, mean_activity=0.9)
        assert sparse.energy_uj < dense.energy_uj


class TestTable5Row:
    def test_row_fields(self):
        row = table5_row(lenet_spec(), 4)
        assert row["model"] == "lenet"
        assert row["speedup"] > 1.0
        assert 0 < row["energy_saving"] < 1
        assert row["area_saving"] == pytest.approx(0.30)

    def test_baseline_row_ratios_are_unity(self):
        row = table5_row(lenet_spec(), 8)
        assert row["speedup"] == pytest.approx(1.0)
        assert row["energy_saving"] == pytest.approx(0.0)


class TestRequantEnergyDelta:
    """engine_shift's multiplier-less requantize, priced per inference."""

    def test_lenet_delta(self):
        delta = requant_energy_delta(lenet_spec())
        # One requantize per fast-path output event per window.
        assert delta.requant_ops == aggregate_network(
            lenet_spec()
        ).output_events_per_window
        assert delta.shift_uj < delta.multiply_uj
        assert delta.saving_uj == pytest.approx(
            delta.multiply_uj - delta.shift_uj
        )
        # Horowitz ISSCC'14 figures: 1 − (0.13+0.1)/(3.1+0.1) ≈ 0.928.
        assert delta.saving_fraction == pytest.approx(0.928125)

    def test_parameters_flow_through(self):
        params = RequantEnergyParameters(
            e_mult32_pj=4.0, e_add32_pj=0.0, e_shift32_pj=1.0
        )
        delta = requant_energy_delta(lenet_spec(), params=params)
        assert delta.saving_fraction == pytest.approx(0.75)

    def test_scales_with_network_size(self):
        assert (
            requant_energy_delta(alexnet_spec()).saving_uj
            > requant_energy_delta(lenet_spec()).saving_uj
        )
