"""Tests for the tiered repair ladder (repro.snc.remediation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snc.crossbar import CrossbarArray
from repro.snc.diagnosis import probe_array
from repro.snc.faults import inject_stuck_faults
from repro.snc.memristor import MemristorModel
from repro.snc.remediation import (
    RemediationConfig,
    repair_tile_closed_loop,
    run_remediation_ladder,
)


def make_array(rng, rows=64, cols=48, bits=4, sigma=0.0, seed=0, spares=0):
    codes = rng.integers(-8, 9, size=(rows, cols))
    device = MemristorModel(levels=2 ** (bits - 1) + 1, variation_sigma=sigma)
    array = CrossbarArray(
        codes, bits=bits, size=32, device=device, rng=np.random.default_rng(seed)
    )
    if spares:
        array.provision_spares(spares)
    return array


def snapshot(array):
    """All mutable device state of an array, for idempotency comparisons."""
    planes = []
    for row_tiles in array.tiles:
        for tile in row_tiles:
            planes.append(tile.g_plus.copy())
            planes.append(tile.g_minus.copy())
    return planes, array.spare_tiles_remaining, list(array.remapped_tiles)


def assert_same_state(before, after):
    planes_a, spares_a, remapped_a = before
    planes_b, spares_b, remapped_b = after
    assert spares_a == spares_b
    assert remapped_a == remapped_b
    assert len(planes_a) == len(planes_b)
    for a, b in zip(planes_a, planes_b):
        np.testing.assert_array_equal(a, b)


class TestClosedLoopRepair:
    def test_ideal_array_needs_no_writes(self, rng):
        array = make_array(rng)
        config = RemediationConfig()
        written, repaired, pulses = repair_tile_closed_loop(array, 0, 0, config)
        assert written == repaired == 0
        assert pulses == 0.0

    def test_drift_repaired_exactly_with_ideal_writes(self, rng):
        # sigma=0 at repair time: the rewrite lands exactly on target.
        array = make_array(rng, sigma=0.0)
        tile = array.tiles[0][0]
        tile.ensure_stuck_masks()
        tile.g_plus *= 1.4  # uniform drift
        assert not probe_array(array, seed=0).passed
        config = RemediationConfig()
        for tr in range(len(array.tiles)):
            for tc in range(len(array.tiles[tr])):
                repair_tile_closed_loop(array, tr, tc, config)
        assert probe_array(array, seed=0).passed

    def test_single_stuck_device_is_compensated(self):
        # Pair intends code +3 (g⁺ active).  SA1 on g⁻ pins it at g_max;
        # the repair must raise g⁺ to g_max + 3·step... which is out of
        # window — infeasible.  Use SA0 on g⁻ instead: g⁻ stuck at g_min is
        # exactly where it should be, and g⁺ is writable, so after drift on
        # g⁺ the pair is recoverable.
        codes = np.full((4, 4), 3)
        array = make_array(np.random.default_rng(0), rows=4, cols=4)
        array.weight_codes = codes
        tile = array.tiles[0][0]
        step = array.device.g_step
        tile.ensure_stuck_masks()
        tile.g_plus[...] = array.device.g_min + 3 * step
        tile.g_minus[...] = array.device.g_min
        tile.g_plus[0, 0] = array.device.g_min + 7 * step  # drifted device
        tile.stuck_minus[0, 0] = True                      # its partner is stuck
        written, repaired, _ = repair_tile_closed_loop(array, 0, 0, RemediationConfig())
        assert written == repaired == 1
        assert probe_array(array, seed=0).passed

    def test_both_stuck_is_infeasible(self):
        array = make_array(np.random.default_rng(0), rows=4, cols=4)
        tile = array.tiles[0][0]
        tile.ensure_stuck_masks()
        tile.g_plus[0, 0] = array.device.g_max
        tile.stuck_plus[0, 0] = True
        tile.stuck_minus[0, 0] = True
        written, repaired, _ = repair_tile_closed_loop(array, 0, 0, RemediationConfig())
        assert written == repaired == 0

    def test_stuck_devices_never_rewritten(self, rng):
        array = make_array(rng, sigma=0.05, seed=7)
        inject_stuck_faults(array, rate=0.05, seed=3)
        stuck_values = []
        for row_tiles in array.tiles:
            for tile in row_tiles:
                stuck_values.append(
                    (tile.g_plus[tile.stuck_plus].copy(),
                     tile.g_minus[tile.stuck_minus].copy())
                )
        config = RemediationConfig()
        for tr in range(len(array.tiles)):
            for tc in range(len(array.tiles[tr])):
                repair_tile_closed_loop(array, tr, tc, config)
        for (plus_before, minus_before), row_tiles in zip(
            stuck_values,
            [tile for row in array.tiles for tile in row],
        ):
            np.testing.assert_array_equal(
                row_tiles.g_plus[row_tiles.stuck_plus], plus_before
            )
            np.testing.assert_array_equal(
                row_tiles.g_minus[row_tiles.stuck_minus], minus_before
            )


class TestLadder:
    def test_healthy_array_short_circuits(self, rng):
        array = make_array(rng)
        report = run_remediation_ladder(array)
        assert report.spec_met
        assert report.tiers == []
        assert report.pairs_recovered == 0

    def test_ladder_reduces_deviations(self, rng):
        array = make_array(rng, rows=96, cols=96, sigma=0.05, seed=9, spares=2)
        inject_stuck_faults(array, rate=0.01, seed=4)
        report = run_remediation_ladder(array, RemediationConfig(seed=0))
        assert report.final.deviating_pairs < report.initial.deviating_pairs
        assert report.pairs_recovered > 0
        assert report.total_pulses > 0
        tier_names = [tier.tier for tier in report.tiers]
        assert tier_names[0] == "reprogram"

    def test_ladder_never_worsens(self, rng):
        for seed in (1, 2, 3):
            array = make_array(
                np.random.default_rng(seed), sigma=0.08, seed=seed, spares=1
            )
            inject_stuck_faults(array, rate=0.05, seed=seed + 10)
            report = run_remediation_ladder(array, RemediationConfig(seed=0))
            for tier in report.tiers:
                assert tier.deviating_after <= tier.deviating_before

    def test_spare_tier_consumes_spares(self, rng):
        array = make_array(rng, sigma=0.0, seed=0, spares=4)
        # Dense stuck faults that reprogramming cannot compensate.
        inject_stuck_faults(array, rate=0.2, seed=5)
        report = run_remediation_ladder(array, RemediationConfig(seed=0))
        spare_tiers = [t for t in report.tiers if t.tier == "spare_remap"]
        assert spare_tiers and spare_tiers[0].actions > 0
        assert array.spare_tiles_remaining < 4
        assert array.remapped_tiles
        # Remapped tiles are pristine: with sigma=0 they reprogram exactly.
        assert report.final.deviating_pairs < report.initial.deviating_pairs

    def test_tiers_can_be_disabled(self, rng):
        array = make_array(rng, sigma=0.05, seed=9, spares=2)
        inject_stuck_faults(array, rate=0.05, seed=4)
        report = run_remediation_ladder(
            array, RemediationConfig(seed=0, use_pair_swap=False, use_spares=False)
        )
        assert [tier.tier for tier in report.tiers] == ["reprogram"]

    def test_summary_mentions_tiers(self, rng):
        array = make_array(rng, sigma=0.05, seed=9)
        inject_stuck_faults(array, rate=0.02, seed=4)
        text = run_remediation_ladder(array, RemediationConfig(seed=0)).summary()
        assert "Remediation ladder" in text
        assert "reprogram" in text


class TestIdempotencyProperty:
    @given(
        sigma=st.floats(0.0, 0.12),
        fault_rate=st.floats(0.0, 0.08),
        seed=st.integers(0, 2**16),
        spares=st.integers(0, 2),
    )
    @settings(max_examples=15, deadline=None)
    def test_second_run_changes_nothing(self, sigma, fault_rate, seed, spares):
        array = make_array(
            np.random.default_rng(seed), rows=48, cols=40,
            sigma=sigma, seed=seed, spares=spares,
        )
        if fault_rate:
            inject_stuck_faults(array, rate=fault_rate, seed=seed + 1)
        config = RemediationConfig(seed=17)
        first = run_remediation_ladder(array, config)
        state = snapshot(array)
        second = run_remediation_ladder(array, config)
        assert_same_state(state, snapshot(array))
        assert second.initial.deviating_pairs == first.final.deviating_pairs
        assert second.final.deviating_pairs == first.final.deviating_pairs


class TestConfigValidation:
    def test_default_config_used_when_none(self, rng):
        array = make_array(rng)
        report = run_remediation_ladder(array, None)
        assert report.spec_met

    def test_unmapped_system_raises(self):
        from repro.nn.modules import Sequential

        with pytest.raises(ValueError):
            run_remediation_ladder(Sequential())
