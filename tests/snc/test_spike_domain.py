"""Full spike-domain validation: slot-by-slot trains through a real layer.

The system simulator uses the charge-equivalent fast path (integrate the
whole window, then fire).  These tests run an actual mapped layer on
explicit spike trains, slot by slot, and characterize how the *streaming*
IFC relates to the closed form:

- exact agreement when column charges are non-negative every slot,
- bounded, rare deviation (≤1 spike) for mixed-sign columns, where a
  causal neuron cannot "unfire" after early positive charge — the known
  streaming artifact, quantified here.
"""

import numpy as np

from repro import nn
from repro.core.quantizers import quantize_signals
from repro.core.weight_clustering import cluster_weights
from repro.snc.ifc import IntegrateAndFire, ifc_for_layer
from repro.snc.mapping import SpikingLinear
from repro.snc.spikes import encode_uniform, window_length


def quantized_linear(rng, in_features=24, out_features=10, bits=4):
    layer = nn.Linear(in_features, out_features, rng=rng)
    result = cluster_weights(layer.weight.data, bits=bits)
    layer.weight.data[...] = result.quantized
    step = result.scale / (2 ** bits)
    layer.bias.data[...] = np.rint(layer.bias.data / step) * step
    return layer, result.scale


class TestFullLayerSpikeDomain:
    def test_closed_form_matches_software_quantizer(self, rng):
        """Whole layer: crossbar charge + closed-form IFC ≡ software path."""
        bits_w = bits_s = 4
        layer, scale = quantized_linear(rng)
        spiking = SpikingLinear(layer, bits=bits_w, scale=scale)
        counts_in = rng.integers(0, 16, size=(6, 24)).astype(float)

        # Software reference: relu+round+clip of the dense linear output.
        reference = quantize_signals(
            np.maximum(counts_in @ layer.weight.data.T + layer.bias.data, 0), bits_s
        )

        # Hardware: analog crossbar output (weight units) → IFC closed form.
        charge = spiking(nn.Tensor(counts_in)).data
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=window_length(bits_s))
        np.testing.assert_allclose(ifc.run_total(charge), reference)

    def test_streamed_spike_trains_close_to_closed_form(self, rng):
        """Slot-by-slot streaming through real spike trains: deviations are
        rare and never exceed one spike."""
        bits_w = bits_s = 4
        layer, scale = quantized_linear(rng, in_features=32, out_features=16)
        spiking = SpikingLinear(layer, bits=bits_w, scale=scale)
        counts_in = rng.integers(0, 16, size=(8, 32))
        window = window_length(bits_s)

        # Spike trains: (window, batch, features) booleans.
        trains = encode_uniform(counts_in, bits_s).astype(float)
        # Bias rows are driven every slot at 1/window so the window total
        # integrates to the full bias contribution.
        per_slot_charge = np.stack(
            [
                spiking(nn.Tensor(trains[t] * 1.0)).data
                - (1.0 - 1.0 / window) * layer.bias.data  # correct bias over-drive
                for t in range(window)
            ]
        )

        ifc = IntegrateAndFire(threshold=1.0, max_spikes=window)
        streamed = ifc.run(per_slot_charge)
        closed = ifc.run_total(per_slot_charge.sum(axis=0))

        deviation = np.abs(streamed - closed)
        assert deviation.max() <= 1, "streaming IFC deviated by more than one spike"
        assert (deviation > 0).mean() < 0.25, "streaming artifact too common"

    def test_streaming_exact_for_nonnegative_columns(self, rng):
        """Columns whose weights are all non-negative can never see a
        negative slot charge, so streaming must be exact there."""
        bits_s = 4
        layer, scale = quantized_linear(rng, in_features=16, out_features=8)
        layer.weight.data[...] = np.abs(layer.weight.data)
        layer.bias.data[...] = np.abs(layer.bias.data)
        spiking = SpikingLinear(layer, bits=4, scale=scale)
        counts_in = rng.integers(0, 16, size=(4, 16))
        window = window_length(bits_s)
        trains = encode_uniform(counts_in, bits_s).astype(float)
        per_slot_charge = np.stack(
            [
                spiking(nn.Tensor(trains[t])).data
                - (1.0 - 1.0 / window) * layer.bias.data
                for t in range(window)
            ]
        )
        ifc = IntegrateAndFire(threshold=1.0, max_spikes=window)
        streamed = ifc.run(per_slot_charge)
        closed = ifc.run_total(per_slot_charge.sum(axis=0))
        np.testing.assert_allclose(streamed, closed)

    def test_ifc_for_layer_consistency(self, rng):
        """ifc_for_layer's threshold converts code units correctly for a
        whole mapped layer."""
        bits_w = bits_s = 4
        layer, scale = quantized_linear(rng, in_features=20, out_features=6)
        spiking = SpikingLinear(layer, bits=bits_w, scale=scale)
        counts_in = rng.integers(0, 16, size=(5, 20)).astype(float)

        # Raw code-unit charge from the crossbar (undo the value scaling).
        value_out = spiking(nn.Tensor(counts_in)).data
        code_units = value_out * (2 ** bits_w) / scale

        ifc = ifc_for_layer(bits_s, bits_w, scale)
        # run_total divides by threshold = 2^N/scale: code_units/threshold
        # equals the weight-unit sum, so this must equal the software path.
        counts = ifc.run_total(code_units)
        reference = quantize_signals(
            np.maximum(counts_in @ layer.weight.data.T + layer.bias.data, 0), bits_s
        )
        np.testing.assert_allclose(counts, reference)
