"""Tests for the crossbar IR-drop nodal analysis."""

import numpy as np
import pytest

from repro.snc.irdrop import (
    IRDropResult,
    ir_drop_error_vs_size,
    solve_crossbar_currents,
)


class TestSolver:
    def test_zero_wire_resistance_is_ideal(self, rng):
        g = rng.uniform(1e-6, 2e-5, size=(6, 5))
        v = rng.uniform(0, 1, size=6)
        result = solve_crossbar_currents(g, v, wire_resistance=0.0)
        np.testing.assert_allclose(result.actual_currents, result.ideal_currents)
        assert result.relative_error == 0.0

    def test_single_cell_voltage_divider(self):
        """1×1 crossbar: cell in series with one wire segment? — with our
        topology the driver sits directly on R(0,0) and the sense on
        C(0,0), so the only element between them is the memristor: the
        current must equal g·v exactly."""
        g = np.array([[1e-5]])
        v = np.array([0.8])
        result = solve_crossbar_currents(g, v, wire_resistance=2.5)
        np.testing.assert_allclose(
            result.actual_currents, [1e-5 * 0.8], rtol=1e-6
        )

    def test_actual_never_exceeds_ideal_much(self, rng):
        """Wire resistance only loses voltage; columns can't gain current."""
        g = rng.uniform(1e-6, 2e-5, size=(16, 16))
        v = rng.uniform(0, 1, size=16)
        result = solve_crossbar_currents(g, v, wire_resistance=2.5)
        assert np.all(result.actual_currents <= result.ideal_currents * (1 + 1e-6))

    def test_error_grows_with_wire_resistance(self, rng):
        g = rng.uniform(5e-6, 2e-5, size=(16, 16))
        v = np.ones(16)
        errors = [
            solve_crossbar_currents(g, v, wire_resistance=r).relative_error
            for r in (0.5, 2.5, 10.0)
        ]
        assert errors[0] < errors[1] < errors[2]

    def test_error_grows_with_conductance(self):
        v = np.ones(16)
        low = solve_crossbar_currents(np.full((16, 16), 2e-6), v).relative_error
        high = solve_crossbar_currents(np.full((16, 16), 2e-5), v).relative_error
        assert low < high

    def test_input_shape_check(self, rng):
        with pytest.raises(ValueError):
            solve_crossbar_currents(np.ones((4, 4)) * 1e-6, np.ones(5))

    def test_negative_wire_resistance(self, rng):
        with pytest.raises(ValueError):
            solve_crossbar_currents(np.ones((2, 2)) * 1e-6, np.ones(2), -1.0)

    def test_zero_input_zero_output(self):
        result = solve_crossbar_currents(
            np.full((8, 8), 1e-5), np.zeros(8), wire_resistance=2.5
        )
        np.testing.assert_allclose(result.actual_currents, 0.0, atol=1e-12)
        assert result.relative_error == 0.0


class TestSizeSweep:
    def test_error_monotone_in_size(self):
        results = ir_drop_error_vs_size([8, 16, 32])
        errors = [e for _, e in results]
        assert errors[0] < errors[1] < errors[2]

    def test_paper_size_is_reasonable(self):
        """At the paper's t=32 and full conductance the worst-corner error
        stays within a few percent — large arrays would not."""
        results = dict(ir_drop_error_vs_size([32, 128]))
        assert results[32] < 0.05
        assert results[128] > results[32] * 3


class TestResultMetrics:
    def test_relative_error_zero_denominator(self):
        result = IRDropResult(
            ideal_currents=np.zeros(3), actual_currents=np.zeros(3)
        )
        assert result.relative_error == 0.0
        assert result.worst_column_error == 0.0

    def test_worst_column(self):
        result = IRDropResult(
            ideal_currents=np.array([1.0, 2.0]),
            actual_currents=np.array([1.0, 1.0]),
        )
        assert result.worst_column_error == pytest.approx(0.5)
