"""Tests for the Fig. 2 network-to-crossbar mapping."""

import numpy as np
import pytest

from repro import nn
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.nn.tensor import Tensor, no_grad
from repro.snc.mapping import (
    SpikingConv2d,
    SpikingLinear,
    map_network,
    weight_codes_from_quantized,
)


class TestCodeReconstruction:
    def test_roundtrip(self, rng):
        codes = rng.integers(-8, 9, size=(4, 6))
        weights = 0.7 * codes / 16
        recovered = weight_codes_from_quantized(weights, bits=4, scale=0.7)
        np.testing.assert_allclose(recovered, codes)

    def test_rejects_off_grid(self, rng):
        with pytest.raises(ValueError):
            weight_codes_from_quantized(rng.normal(size=(3, 3)), bits=4, scale=1.0)


def quantized_lenet(rng):
    """A weight-clustered LeNet plus its clustering report."""
    from repro.models import LeNet

    model = LeNet(width_multiplier=0.5, rng=rng)
    deployed, info = deploy_model(
        model, DeploymentConfig(signal_bits=4, weight_bits=4, weight_mode="clustered")
    )
    return deployed, info.clustering


class TestSpikingLayers:
    def test_spiking_linear_matches_dense(self, rng):
        linear = nn.Linear(20, 8, rng=rng)
        from repro.core.weight_clustering import cluster_weights

        result = cluster_weights(linear.weight.data, bits=4)
        linear.weight.data[...] = result.quantized
        step = result.scale / 16
        linear.bias.data[...] = np.rint(linear.bias.data / step) * step

        spiking = SpikingLinear(linear, bits=4, scale=result.scale)
        x = Tensor(rng.integers(0, 16, size=(5, 20)).astype(float))
        expected = linear(x).data
        np.testing.assert_allclose(spiking(x).data, expected, atol=1e-8)

    def test_spiking_conv_matches_dense(self, rng):
        conv = nn.Conv2d(3, 6, 3, stride=1, padding=1, rng=rng)
        from repro.core.weight_clustering import cluster_weights

        result = cluster_weights(conv.weight.data, bits=4)
        conv.weight.data[...] = result.quantized
        step = result.scale / 16
        conv.bias.data[...] = np.rint(conv.bias.data / step) * step

        spiking = SpikingConv2d(conv, bits=4, scale=result.scale)
        x = Tensor(rng.integers(0, 16, size=(2, 3, 8, 8)).astype(float))
        np.testing.assert_allclose(spiking(x).data, conv(x).data, atol=1e-8)

    def test_large_bias_split_across_rows(self, rng):
        linear = nn.Linear(4, 3, rng=rng)
        scale = 1.0
        step = scale / 16
        # Bias code 40 exceeds the ±8 device range at 4 bits → needs 5 rows.
        linear.weight.data[...] = np.rint(linear.weight.data / step) * step
        linear.weight.data[...] = np.clip(linear.weight.data, -0.5, 0.5)
        linear.bias.data[...] = np.array([40, -20, 3]) * step
        spiking = SpikingLinear(linear, bits=4, scale=scale)
        assert spiking._n_bias_rows == 5
        x = Tensor(rng.integers(0, 4, size=(2, 4)).astype(float))
        np.testing.assert_allclose(spiking(x).data, linear(x).data, atol=1e-8)


class TestMapNetwork:
    def test_replaces_all_weight_layers(self, rng):
        deployed, clustering = quantized_lenet(rng)
        report = map_network(deployed, clustering)
        spiking = [
            m for m in deployed.modules() if isinstance(m, (SpikingConv2d, SpikingLinear))
        ]
        assert len(spiking) == 4
        assert len(report.layers) == 4

    def test_mapped_network_matches_software(self, rng):
        deployed, clustering = quantized_lenet(rng)
        x = Tensor(rng.normal(size=(3, 1, 28, 28)))
        with no_grad():
            expected = deployed(x).data
        # Map a fresh copy (map_network mutates).
        from repro.core.surgery import clone_module

        hardware = clone_module(deployed)
        map_network(hardware, clustering)
        with no_grad():
            actual = hardware(x).data
        np.testing.assert_allclose(actual, expected, atol=1e-6)

    def test_mapping_report_totals(self, rng):
        deployed, clustering = quantized_lenet(rng)
        report = map_network(deployed, clustering)
        assert report.total_crossbars == sum(l.crossbars for l in report.layers)
        assert report.total_crossbars >= 4
        text = report.summary()
        assert "total:" in text

    def test_missing_clustering_key_raises(self, rng):
        deployed, clustering = quantized_lenet(rng)
        clustering.results.pop("conv1.weight")
        with pytest.raises(KeyError):
            map_network(deployed, clustering)

    def test_layer_kinds_recorded(self, rng):
        deployed, clustering = quantized_lenet(rng)
        report = map_network(deployed, clustering)
        kinds = [layer.kind for layer in report.layers]
        assert kinds == ["conv", "conv", "fc", "fc"]
