"""Tests for temporal (event-windowed) inference (repro.snc.temporal)."""

import numpy as np
import pytest

from repro.datasets.event_stream import generate_event_streams
from repro.models import LeNet
from repro.models.specs import lenet_spec
from repro.snc.system import SpikingSystemConfig, build_spiking_system
from repro.snc.temporal import (
    TemporalConfig,
    infer_stream,
    replay_frames,
    stream_accuracy,
    stream_timing,
    stream_to_frames,
    window_groups,
)

SIGNAL_BITS = 4


@pytest.fixture(scope="module")
def streams():
    return generate_event_streams(6, seed=11).streams


@pytest.fixture(scope="module")
def system(streams):
    # Untrained weights are fine: the temporal path's contracts are about
    # determinism and bit-exact window replay, not accuracy.
    model = LeNet(width_multiplier=0.25, rng=np.random.default_rng(3))
    config = SpikingSystemConfig(
        signal_bits=SIGNAL_BITS, weight_bits=4, input_bits=SIGNAL_BITS,
        signal_gain="auto",
    )
    calibration = stream_to_frames(streams[0], TemporalConfig(signal_bits=SIGNAL_BITS))
    return build_spiking_system(model, config, calibration)


class TestTemporalConfig:
    def test_defaults_valid(self):
        TemporalConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(window_us=0), "positive"),
            (dict(stride_us=30_000, window_us=20_000), "exceed"),
            (dict(signal_bits=0), "signal_bits"),
            (dict(decision="spike"), "decision"),
            (dict(latency_margin=0.0), "latency_margin"),
            (dict(batch_windows=0), "batch_windows"),
        ],
    )
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TemporalConfig(**kwargs)


class TestStreamToFrames:
    def test_shape_and_range(self, streams):
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        frames = stream_to_frames(streams[0], config)
        assert frames.ndim == 4 and frames.shape[1] == 1
        assert frames.dtype == np.float64
        assert frames.min() >= 0.0 and frames.max() <= 1.0


class TestInferStream:
    def test_rate_decision_runs_every_window(self, system, streams):
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        result = infer_stream(system, streams[0], config)
        assert result.per_window_logits.shape == (result.total_windows, 10)
        assert result.decision_window == result.total_windows - 1
        assert result.label == streams[0].label
        assert 0 <= result.prediction < 10

    def test_deterministic(self, system, streams):
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        a = infer_stream(system, streams[1], config)
        b = infer_stream(system, streams[1], config)
        np.testing.assert_array_equal(a.per_window_logits, b.per_window_logits)
        assert a.prediction == b.prediction

    def test_replay_matches_infer_stream_same_grouping(self, system, streams):
        """Direct replay with the canonical grouping is bit-identical."""
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        result = infer_stream(system, streams[2], config)
        frames = stream_to_frames(streams[2], config)
        replay = replay_frames(system.engine(), frames, config.batch_windows)
        np.testing.assert_array_equal(result.per_window_logits, replay)

    def test_single_window_grouping_matches_per_window_runs(self, system, streams):
        config = TemporalConfig(signal_bits=SIGNAL_BITS, batch_windows=1)
        frames = stream_to_frames(streams[2], config)
        replay = replay_frames(system.engine(), frames, 1)
        engine = system.engine()
        for k in range(len(frames)):
            np.testing.assert_array_equal(replay[k], engine.run(frames[k:k + 1])[0])

    def test_different_groupings_agree_to_float_rounding(self, system, streams):
        frames = stream_to_frames(streams[2], TemporalConfig(signal_bits=SIGNAL_BITS))
        engine = system.engine()
        a = replay_frames(engine, frames, 1)
        b = replay_frames(engine, frames, len(frames))
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_window_groups_tile_the_range(self):
        groups = window_groups(7, 3)
        assert [(g.start, g.stop) for g in groups] == [(0, 3), (3, 6), (6, 7)]
        with pytest.raises(ValueError):
            window_groups(0, 3)

    def test_latency_decision_stops_early_with_tiny_margin(self, system, streams):
        config = TemporalConfig(
            signal_bits=SIGNAL_BITS, decision="latency", latency_margin=1e-9,
            batch_windows=1,
        )
        result = infer_stream(system, streams[0], config)
        assert result.decision_window == 0
        assert result.windows_used == 1
        assert len(result.per_window_logits) == 1

    def test_latency_decision_agrees_with_rate_prefix(self, system, streams):
        """A latency decision equals rate aggregation over the windows it ran."""
        config = TemporalConfig(
            signal_bits=SIGNAL_BITS, decision="latency", latency_margin=0.5
        )
        result = infer_stream(system, streams[3], config)
        rate = TemporalConfig(signal_bits=SIGNAL_BITS)
        full = infer_stream(system, streams[3], rate)
        ran = len(result.per_window_logits)
        assert ran >= result.windows_used
        np.testing.assert_array_equal(
            result.per_window_logits, full.per_window_logits[:ran]
        )
        used = result.windows_used
        expected = int(full.per_window_logits[:used].sum(axis=0).argmax())
        assert result.prediction == expected

    def test_huge_margin_consumes_all_windows(self, system, streams):
        config = TemporalConfig(
            signal_bits=SIGNAL_BITS, decision="latency", latency_margin=1e12
        )
        result = infer_stream(system, streams[0], config)
        assert result.windows_used == result.total_windows

    def test_system_method_delegates(self, system, streams):
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        direct = infer_stream(system, streams[4], config)
        via_method = system.infer_stream(streams[4], config)
        np.testing.assert_array_equal(
            direct.per_window_logits, via_method.per_window_logits
        )


class TestStreamAccuracy:
    def test_accuracy_in_unit_interval(self, system, streams):
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        acc = stream_accuracy(system, streams[:3], config)
        assert 0.0 <= acc <= 1.0

    def test_empty_rejected(self, system):
        with pytest.raises(ValueError, match="non-empty"):
            stream_accuracy(system, [])


class TestStreamTiming:
    def test_rate_and_latency_consistent(self):
        spec = lenet_spec()
        config = TemporalConfig(signal_bits=SIGNAL_BITS)
        timing = stream_timing(spec, config, total_windows=16)
        assert timing.first_window_us > 0
        assert timing.total_us >= timing.first_window_us
        assert timing.windows_per_second > 0
        assert timing.keeps_up_with == pytest.approx(1e6 / timing.windows_per_second)

    def test_more_bits_is_slower(self):
        spec = lenet_spec()
        slow = stream_timing(spec, TemporalConfig(signal_bits=8), 16)
        fast = stream_timing(spec, TemporalConfig(signal_bits=3), 16)
        assert fast.windows_per_second > slow.windows_per_second

    def test_too_few_windows_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            stream_timing(lenet_spec(), TemporalConfig(), 1)
