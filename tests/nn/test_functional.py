"""Gradient and behaviour tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients


class TestRelu:
    def test_forward(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_gradient(self, rng):
        check_gradients(F.relu, [rng.normal(size=(4, 5)) + 0.1])

    def test_gradient_zero_below(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        F.relu(x).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])


class TestLeakyRelu:
    def test_forward(self):
        out = F.leaky_relu(Tensor([-10.0, 10.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-1.0, 10.0])

    def test_gradient(self, rng):
        check_gradients(
            lambda x: F.leaky_relu(x, 0.2), [rng.normal(size=(6,)) + 0.05]
        )


class TestSigmoidTanh:
    def test_sigmoid_range(self, rng):
        out = F.sigmoid(Tensor(rng.normal(size=(10,)) * 5))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_sigmoid_gradient(self, rng):
        check_gradients(F.sigmoid, [rng.normal(size=(5,))])

    def test_tanh_gradient(self, rng):
        check_gradients(F.tanh, [rng.normal(size=(5,))])


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        out = F.dropout(x, p=0.5, training=False)
        assert out is x

    def test_zero_p_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10,)))
        assert F.dropout(x, p=0.0, training=True) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), p=1.5, training=True)

    def test_scaling_preserves_expectation(self, rng):
        x = Tensor(np.ones(100_00))
        out = F.dropout(x, p=0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_gradient_matches_mask(self, rng):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, p=0.5, training=True, rng=rng)
        out.sum().backward()
        # Gradient is the same mask applied in forward.
        np.testing.assert_allclose(x.grad, out.data)


class TestLinear:
    def test_shapes(self, rng):
        x = Tensor(rng.normal(size=(8, 3)))
        w = Tensor(rng.normal(size=(5, 3)))
        b = Tensor(rng.normal(size=(5,)))
        assert F.linear(x, w, b).shape == (8, 5)

    def test_gradient(self, rng):
        check_gradients(
            F.linear,
            [rng.normal(size=(4, 3)), rng.normal(size=(2, 3)), rng.normal(size=(2,))],
        )

    def test_no_bias(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        w = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(F.linear(x, w).data, x.data @ w.data.T)


class TestConv2d:
    def test_output_shape_basic(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        assert F.conv2d(x, w).shape == (2, 4, 6, 6)

    def test_output_shape_padding(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        assert F.conv2d(x, w, padding=1).shape == (2, 4, 8, 8)

    def test_output_shape_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 9, 9)))
        w = Tensor(rng.normal(size=(2, 1, 3, 3)))
        assert F.conv2d(x, w, stride=2).shape == (1, 2, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        w = Tensor(rng.normal(size=(1, 3, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_against_direct_convolution(self, rng):
        """Compare im2col result with a naive loop implementation."""
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1).data

        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for f in range(4):
                for i in range(6):
                    for j in range(6):
                        patch = xp[n, :, i : i + 3, j : j + 3]
                        expected[n, f, i, j] = (patch * w[f]).sum() + b[f]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_gradient_x_w_b(self, rng):
        check_gradients(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [
                rng.normal(size=(2, 2, 5, 5)),
                rng.normal(size=(3, 2, 3, 3)),
                rng.normal(size=(3,)),
            ],
        )

    def test_gradient_stride2(self, rng):
        check_gradients(
            lambda x, w: F.conv2d(x, w, stride=2),
            [rng.normal(size=(1, 2, 7, 7)), rng.normal(size=(2, 2, 3, 3))],
        )

    def test_gradient_5x5_kernel(self, rng):
        check_gradients(
            lambda x, w: F.conv2d(x, w, padding=2),
            [rng.normal(size=(1, 1, 7, 7)), rng.normal(size=(2, 1, 5, 5))],
        )

    def test_1x1_convolution(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out, expected, atol=1e-10)


class TestPooling:
    def test_max_pool_forward(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient(self, rng):
        check_gradients(
            lambda x: F.max_pool2d(x, 2),
            # Small noise keeps maxima unique so numerical grad is stable.
            [rng.normal(size=(2, 2, 4, 4)) * 10],
        )

    def test_max_pool_overlapping_stride(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        assert F.max_pool2d(x, 3, stride=1).shape == (1, 1, 3, 3)

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 1), (2, 1)])
    def test_max_pool_backward_matches_scatter_reference(self, rng, kernel, stride):
        """The bincount scatter must equal a per-window np.add.at reference."""
        x_data = rng.normal(size=(3, 4, 7, 7))
        upstream = rng.normal(size=F.max_pool2d(Tensor(x_data), kernel, stride).shape)

        x = Tensor(x_data, requires_grad=True)
        out = F.max_pool2d(x, kernel, stride)
        out.backward(upstream)

        expected = np.zeros_like(x_data)
        b_n, c_n, oh, ow = out.shape
        for b in range(b_n):
            for c in range(c_n):
                for i in range(oh):
                    for j in range(ow):
                        window = x_data[b, c, i * stride : i * stride + kernel,
                                        j * stride : j * stride + kernel]
                        ki, kj = np.unravel_index(np.argmax(window), window.shape)
                        expected[b, c, i * stride + ki, j * stride + kj] += upstream[b, c, i, j]
        np.testing.assert_allclose(x.grad, expected, atol=1e-12)

    def test_avg_pool_forward(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self, rng):
        check_gradients(lambda x: F.avg_pool2d(x, 2), [rng.normal(size=(2, 2, 4, 4))])

    def test_avg_pool_gradient_overlap(self, rng):
        check_gradients(
            lambda x: F.avg_pool2d(x, 2, stride=1), [rng.normal(size=(1, 1, 4, 4))]
        )

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestBatchNorm:
    def _setup(self, rng, shape=(8, 3, 4, 4)):
        x = Tensor(rng.normal(size=shape) * 2 + 1, requires_grad=True)
        gamma = Tensor(np.ones(shape[1]), requires_grad=True)
        beta = Tensor(np.zeros(shape[1]), requires_grad=True)
        running_mean = np.zeros(shape[1])
        running_var = np.ones(shape[1])
        return x, gamma, beta, running_mean, running_var

    def test_training_normalizes(self, rng):
        x, gamma, beta, rm, rv = self._setup(rng)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        mean = out.data.mean(axis=(0, 2, 3))
        var = out.data.var(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(3), atol=1e-10)
        np.testing.assert_allclose(var, np.ones(3), atol=1e-3)

    def test_running_stats_updated(self, rng):
        x, gamma, beta, rm, rv = self._setup(rng)
        F.batch_norm(x, gamma, beta, rm, rv, training=True, momentum=1.0)
        np.testing.assert_allclose(rm, x.data.mean(axis=(0, 2, 3)))

    def test_eval_uses_running_stats(self, rng):
        x, gamma, beta, rm, rv = self._setup(rng)
        rm[:] = 1.0
        rv[:] = 4.0
        out = F.batch_norm(x, gamma, beta, rm, rv, training=False)
        np.testing.assert_allclose(out.data, (x.data - 1.0) / np.sqrt(4.0 + 1e-5))

    def test_2d_input(self, rng):
        x, gamma, beta, rm, rv = self._setup(rng, shape=(16, 3))
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(3), atol=1e-10)

    def test_3d_input_raises(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        with pytest.raises(ValueError):
            F.batch_norm(
                x, Tensor(np.ones(3)), Tensor(np.zeros(3)), np.zeros(3), np.ones(3), True
            )

    def test_gradient_training_mode(self, rng):
        rm = np.zeros(2)
        rv = np.ones(2)

        def fn(x, gamma, beta):
            return F.batch_norm(
                x, gamma, beta, rm.copy(), rv.copy(), training=True
            )

        check_gradients(
            fn,
            [rng.normal(size=(6, 2, 3, 3)), np.array([1.3, 0.7]), np.array([0.1, -0.2])],
            atol=1e-4,
        )

    def test_gradient_eval_mode(self, rng):
        rm = np.array([0.5, -0.5])
        rv = np.array([2.0, 3.0])

        def fn(x, gamma, beta):
            return F.batch_norm(x, gamma, beta, rm, rv, training=False)

        check_gradients(
            fn,
            [rng.normal(size=(4, 2, 2, 2)), np.array([1.3, 0.7]), np.array([0.1, -0.2])],
        )


class TestSoftmax:
    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5))

    def test_softmax_stability(self):
        out = F.softmax(Tensor([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 4))
        ls = F.log_softmax(Tensor(x)).data
        np.testing.assert_allclose(ls, np.log(F.softmax(Tensor(x)).data), atol=1e-12)

    def test_softmax_gradient(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda x: F.softmax(x) * weights, [rng.normal(size=(3, 4))])

    def test_log_softmax_gradient(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda x: F.log_softmax(x) * weights, [rng.normal(size=(3, 4))])


class TestPadFlatten:
    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        assert F.flatten(x).shape == (2, 48)

    def test_pad2d_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 3, 3)))
        assert F.pad2d(x, 2).shape == (1, 1, 7, 7)

    def test_pad2d_gradient(self, rng):
        check_gradients(lambda x: F.pad2d(x, 1) * 2, [rng.normal(size=(1, 2, 3, 3))])
