"""Tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, CosineLR, StepLR
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    """A single parameter with loss x², so grad = 2x."""
    return Tensor(np.array([start]), requires_grad=True)


def step_once(optimizer, param):
    optimizer.zero_grad()
    (param * param).sum().backward()
    optimizer.step()


class TestSGD:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(50):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-3

    def test_basic_update_rule(self):
        p = quadratic_param(1.0)
        opt = SGD([p], lr=0.5)
        step_once(opt, p)  # grad = 2 → 1 - 0.5*2 = 0
        np.testing.assert_allclose(p.data, [0.0])

    def test_momentum_accelerates(self):
        plain, momentum = quadratic_param(), quadratic_param()
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            step_once(opt_plain, plain)
            step_once(opt_momentum, momentum)
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_at_zero_grad(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)  # no data gradient, only decay
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_nesterov(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(40):
            step_once(opt, p)
        assert abs(p.data[0]) < 0.1

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward → no grad → no change
        np.testing.assert_allclose(p.data, [5.0])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, momentum=1.0)

    def test_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_descends_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.2)
        for _ in range(100):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-2

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ≈ lr·sign(grad).
        p = quadratic_param(3.0)
        opt = Adam([p], lr=0.1)
        step_once(opt, p)
        np.testing.assert_allclose(p.data, [2.9], atol=1e-6)

    def test_weight_decay(self):
        p = Tensor(np.array([2.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 2.0

    def test_zero_grad_clears(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        (p * p).sum().backward()
        opt.zero_grad()
        assert p.grad is None


class TestSchedules:
    def test_step_lr(self):
        p = quadratic_param()
        opt = SGD([p], lr=1.0)
        schedule = StepLR(opt, step_size=2, gamma=0.1)
        schedule.step()
        assert opt.lr == 1.0
        schedule.step()
        assert np.isclose(opt.lr, 0.1)

    def test_step_lr_invalid(self):
        with pytest.raises(ValueError):
            StepLR(SGD([quadratic_param()], lr=1.0), step_size=0)

    def test_cosine_reaches_min(self):
        opt = SGD([quadratic_param()], lr=1.0)
        schedule = CosineLR(opt, total_epochs=10, min_lr=0.05)
        for _ in range(10):
            schedule.step()
        assert np.isclose(opt.lr, 0.05)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([quadratic_param()], lr=1.0)
        schedule = CosineLR(opt, total_epochs=5)
        lrs = []
        for _ in range(5):
            schedule.step()
            lrs.append(opt.lr)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_saturates_past_total(self):
        opt = SGD([quadratic_param()], lr=1.0)
        schedule = CosineLR(opt, total_epochs=2)
        for _ in range(5):
            schedule.step()
        assert np.isclose(opt.lr, 0.0)
