"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concatenate, no_grad, stack, unbroadcast
from tests.conftest import check_gradients


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_array_casts_dtype(self):
        t = Tensor(np.array([1, 2], dtype=np.int32))
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert Tensor([[2.5]]).item() == 2.5

    def test_item_non_scalar_raises(self):
        with pytest.raises(Exception):
            Tensor([1.0, 2.0]).item()

    def test_detach_shares_data(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 5.0
        assert t.data[0] == 5.0

    def test_copy_is_independent(self):
        t = Tensor([1.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0
        assert c.requires_grad


class TestBackwardMechanics:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_grad_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones((3,)))

    def test_gradient_accumulates_across_backwards(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3).sum().backward()
        (t * 3).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x has gradient 4x.
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        b = x * x
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_node_in_graph(self):
        # z = (x + 1); loss = z*z → dloss/dx = 2(x+1)
        x = Tensor([2.0], requires_grad=True)
        z = x + 1.0
        (z * z).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_no_grad_restores_on_exception(self):
        from repro.nn.tensor import is_grad_enabled
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()

    def test_interior_grad_freed_leaf_kept(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        mid = x * 2
        out = mid.sum()
        out.backward()
        assert mid.grad is None
        assert x.grad is not None


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradients(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(3, 4))])

    def test_add_broadcast(self, rng):
        check_gradients(lambda a, b: a + b, [rng.normal(size=(3, 4)), rng.normal(size=(4,))])

    def test_sub(self, rng):
        check_gradients(lambda a, b: a - b, [rng.normal(size=(2, 3)), rng.normal(size=(2, 3))])

    def test_rsub_scalar(self, rng):
        check_gradients(lambda a: 1.0 - a, [rng.normal(size=(5,))])

    def test_mul(self, rng):
        check_gradients(lambda a, b: a * b, [rng.normal(size=(3,)), rng.normal(size=(3,))])

    def test_mul_broadcast_scalar_tensor(self, rng):
        check_gradients(lambda a, b: a * b, [rng.normal(size=(2, 2)), rng.normal(size=(1,))])

    def test_div(self, rng):
        check_gradients(
            lambda a, b: a / b,
            [rng.normal(size=(3,)), rng.normal(size=(3,)) + 3.0],
        )

    def test_rdiv_scalar(self, rng):
        check_gradients(lambda a: 2.0 / a, [rng.normal(size=(3,)) + 3.0])

    def test_neg(self, rng):
        check_gradients(lambda a: -a, [rng.normal(size=(3,))])

    def test_pow(self, rng):
        check_gradients(lambda a: a ** 3, [rng.normal(size=(4,))])

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul(self, rng):
        check_gradients(
            lambda a, b: a @ b, [rng.normal(size=(3, 4)), rng.normal(size=(4, 5))]
        )

    def test_matmul_batched(self, rng):
        check_gradients(
            lambda a, b: a @ b, [rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 5))]
        )


class TestReductionsAndShapes:
    def test_sum_all(self, rng):
        check_gradients(lambda a: a.sum(), [rng.normal(size=(3, 4))])

    def test_sum_axis(self, rng):
        check_gradients(lambda a: a.sum(axis=1), [rng.normal(size=(3, 4))])

    def test_sum_keepdims(self, rng):
        check_gradients(lambda a: a.sum(axis=0, keepdims=True), [rng.normal(size=(3, 4))])

    def test_mean_all(self, rng):
        check_gradients(lambda a: a.mean(), [rng.normal(size=(3, 4))])

    def test_mean_axis_tuple(self, rng):
        check_gradients(lambda a: a.mean(axis=(1, 2)), [rng.normal(size=(2, 3, 4))])

    def test_reshape(self, rng):
        check_gradients(lambda a: a.reshape(6, 2) * 2, [rng.normal(size=(3, 4))])

    def test_reshape_infers(self, rng):
        t = Tensor(rng.normal(size=(3, 4)))
        assert t.reshape(-1).shape == (12,)

    def test_transpose(self, rng):
        check_gradients(lambda a: a.transpose(1, 0) * 3, [rng.normal(size=(3, 4))])

    def test_transpose_3d(self, rng):
        check_gradients(lambda a: a.transpose(2, 0, 1).sum(), [rng.normal(size=(2, 3, 4))])

    def test_T_property(self, rng):
        t = Tensor(rng.normal(size=(3, 4)))
        assert t.T.shape == (4, 3)

    def test_getitem(self, rng):
        check_gradients(lambda a: a[1:3], [rng.normal(size=(5, 2))])

    def test_getitem_fancy_repeated_index_accumulates(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        picked = x[np.array([0, 0, 2])]
        picked.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestElementwiseFunctions:
    def test_abs(self, rng):
        check_gradients(lambda a: a.abs(), [rng.normal(size=(4,)) + 0.5])

    def test_exp(self, rng):
        check_gradients(lambda a: a.exp(), [rng.normal(size=(4,))])

    def test_log(self, rng):
        check_gradients(lambda a: a.log(), [rng.random(4) + 0.5])

    def test_sqrt(self, rng):
        check_gradients(lambda a: a.sqrt(), [rng.random(4) + 0.5])

    def test_clip_values(self):
        t = Tensor([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(t.clip(0.0, 1.0).data, [0.0, 0.5, 1.0])

    def test_clip_gradient_zero_outside(self):
        t = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum(self, rng):
        check_gradients(
            lambda a, b: a.maximum(b),
            [rng.normal(size=(4,)), rng.normal(size=(4,)) + 0.01],
        )


class TestStackConcat:
    def test_stack_forward(self):
        a, b = Tensor([1.0, 2.0]), Tensor([3.0, 4.0])
        out = stack([a, b])
        assert out.shape == (2, 2)

    def test_stack_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = Tensor(rng.normal(size=(3,)), requires_grad=True)
        stack([x, y], axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(3))
        np.testing.assert_allclose(y.grad, np.ones(3))

    def test_concatenate_forward(self):
        a, b = Tensor([[1.0], [2.0]]), Tensor([[3.0]])
        assert concatenate([a, b], axis=0).shape == (3, 1)

    def test_concatenate_gradient_uneven(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        y = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        (concatenate([x, y], axis=0) * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(y.grad, np.full((1, 3), 2.0))


class TestUnbroadcast:
    def test_no_change(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_leading_axis(self):
        g = np.ones((4, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 3)), np.full((2, 3), 4.0))

    def test_size_one_axis(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(unbroadcast(g, (2, 1)), np.full((2, 1), 3.0))

    def test_combined(self):
        g = np.ones((5, 2, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), np.full((1, 3), 10.0))


class TestAsTensor:
    def test_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_coerces_array(self):
        out = as_tensor(np.array([1.0, 2.0]))
        assert isinstance(out, Tensor)
