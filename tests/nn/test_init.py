"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        assert init._fan_in_out((8, 4)) == (4, 8)

    def test_conv_shape(self):
        # (out=16, in=3, k=5, k=5): fan_in = 3·25, fan_out = 16·25
        assert init._fan_in_out((16, 3, 5, 5)) == (75, 400)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            init._fan_in_out((3,))


class TestDistributions:
    def test_kaiming_normal_std(self, rng):
        w = init.kaiming_normal((1000, 50), rng)
        expected = np.sqrt(2.0 / 50)
        assert abs(w.std() - expected) / expected < 0.05

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((100, 30), rng)
        bound = np.sqrt(6.0 / 30)
        assert np.abs(w).max() <= bound

    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((60, 40), rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self, rng):
        w = init.xavier_normal((500, 500), rng)
        expected = np.sqrt(2.0 / 1000)
        assert abs(w.std() - expected) / expected < 0.1

    def test_deterministic_given_seed(self):
        a = init.kaiming_normal((5, 5), np.random.default_rng(1))
        b = init.kaiming_normal((5, 5), np.random.default_rng(1))
        np.testing.assert_allclose(a, b)

    def test_zeros_ones(self):
        np.testing.assert_allclose(init.zeros((3,)), 0.0)
        np.testing.assert_allclose(init.ones((3,)), 1.0)
