"""Tests for model state save/load."""

import os

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import StateDictError, load_state, save_state
from repro.nn.tensor import Tensor


def test_roundtrip_preserves_outputs(tmp_path, rng):
    model = nn.Sequential(nn.Linear(4, 6, rng=rng), nn.ReLU(), nn.Linear(6, 2, rng=rng))
    path = str(tmp_path / "model.npz")
    save_state(model, path)

    clone = nn.Sequential(
        nn.Linear(4, 6, rng=np.random.default_rng(777)),
        nn.ReLU(),
        nn.Linear(6, 2, rng=np.random.default_rng(778)),
    )
    load_state(clone, path)
    x = Tensor(rng.normal(size=(3, 4)))
    np.testing.assert_allclose(model(x).data, clone(x).data)


def test_roundtrip_includes_buffers(tmp_path, rng):
    bn = nn.BatchNorm2d(3)
    bn(Tensor(rng.normal(size=(8, 3, 2, 2)) + 4))  # update running stats
    path = str(tmp_path / "bn.npz")
    save_state(bn, path)

    fresh = nn.BatchNorm2d(3)
    load_state(fresh, path)
    np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
    np.testing.assert_allclose(fresh.running_var, bn.running_var)


def test_save_creates_directories(tmp_path, rng):
    model = nn.Linear(2, 2, rng=rng)
    path = str(tmp_path / "deep" / "nested" / "model.npz")
    save_state(model, path)
    assert os.path.exists(path)


class TestAtomicSave:
    def test_exact_path_even_without_npz_suffix(self, tmp_path, rng):
        # np.savez normally appends ".npz" silently; save_state must not.
        model = nn.Linear(2, 2, rng=rng)
        path = str(tmp_path / "checkpoint")
        save_state(model, path)
        assert os.path.exists(path)
        assert not os.path.exists(path + ".npz")

    def test_no_temp_files_left_behind(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        save_state(model, str(tmp_path / "model.npz"))
        assert sorted(os.listdir(tmp_path)) == ["model.npz"]

    def test_failed_save_leaves_previous_archive_intact(self, tmp_path, rng, monkeypatch):
        model = nn.Linear(2, 2, rng=rng)
        path = str(tmp_path / "model.npz")
        save_state(model, path)
        good = open(path, "rb").read()

        from repro.nn import serialization

        def exploding_savez(handle, **arrays):
            raise OSError("disk full")

        monkeypatch.setattr(serialization.np, "savez", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            save_state(model, path)
        assert open(path, "rb").read() == good
        assert sorted(os.listdir(tmp_path)) == ["model.npz"]

    def test_overwrite_existing(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        path = str(tmp_path / "model.npz")
        save_state(model, path)
        model.weight.data = model.weight.data + 1.0
        save_state(model, path)
        fresh = nn.Linear(2, 2, rng=np.random.default_rng(9))
        load_state(fresh, path)
        np.testing.assert_allclose(fresh.weight.data, model.weight.data)

    def test_saved_state_honors_umask(self, tmp_path, rng):
        # mkstemp creates 0600 temp files regardless of umask; the published
        # archive must carry the permissions a plain open() would have given.
        import stat

        model = nn.Linear(2, 2, rng=rng)
        path = str(tmp_path / "model.npz")
        old = os.umask(0o022)
        try:
            save_state(model, path)
        finally:
            os.umask(old)
        assert stat.S_IMODE(os.stat(path).st_mode) == 0o644

    def test_saved_state_respects_strict_umask(self, tmp_path, rng):
        import stat

        model = nn.Linear(2, 2, rng=rng)
        path = str(tmp_path / "model.npz")
        old = os.umask(0o027)
        try:
            save_state(model, path)
        finally:
            os.umask(old)
        assert stat.S_IMODE(os.stat(path).st_mode) == 0o640


class TestLoadErrors:
    def test_load_tolerates_appended_suffix(self, tmp_path, rng):
        model = nn.Linear(2, 2, rng=rng)
        np.savez(str(tmp_path / "legacy"), **model.state_dict())  # lands at legacy.npz
        fresh = nn.Linear(2, 2, rng=np.random.default_rng(9))
        load_state(fresh, str(tmp_path / "legacy"))
        np.testing.assert_allclose(fresh.weight.data, model.weight.data)

    def test_missing_file_names_both_candidates(self, tmp_path, rng):
        with pytest.raises(FileNotFoundError, match=r"\.npz"):
            load_state(nn.Linear(2, 2, rng=rng), str(tmp_path / "nope"))

    def test_corrupt_archive_raises_state_dict_error(self, tmp_path, rng):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(StateDictError, match="not a readable"):
            load_state(nn.Linear(2, 2, rng=rng), str(path))

    def test_missing_and_unexpected_keys_all_reported(self, tmp_path, rng):
        saved = nn.Sequential(nn.Linear(2, 3, rng=rng))
        path = str(tmp_path / "state.npz")
        save_state(saved, path)
        target = nn.Sequential(nn.Linear(2, 3, rng=rng), nn.Linear(3, 2, rng=rng))
        with pytest.raises(StateDictError) as excinfo:
            load_state(target, path)
        message = str(excinfo.value)
        assert "missing keys" in message
        assert "1.weight" in message and "1.bias" in message

    def test_unexpected_keys_reported(self, tmp_path, rng):
        saved = nn.Sequential(nn.Linear(2, 3, rng=rng), nn.Linear(3, 2, rng=rng))
        path = str(tmp_path / "state.npz")
        save_state(saved, path)
        target = nn.Sequential(nn.Linear(2, 3, rng=rng))
        with pytest.raises(StateDictError, match="unexpected keys"):
            load_state(target, path)

    def test_shape_mismatches_reported_with_both_shapes(self, tmp_path, rng):
        saved = nn.Linear(2, 3, rng=rng)
        path = str(tmp_path / "state.npz")
        save_state(saved, path)
        target = nn.Linear(4, 3, rng=rng)
        with pytest.raises(StateDictError, match="shape mismatch") as excinfo:
            load_state(target, path)
        message = str(excinfo.value)
        assert "(3, 4)" in message or "(4, 3)" in message  # module side
        assert "(3, 2)" in message or "(2, 3)" in message  # file side

    def test_module_untouched_on_mismatch(self, tmp_path, rng):
        saved = nn.Linear(2, 3, rng=rng)
        path = str(tmp_path / "state.npz")
        save_state(saved, path)
        target = nn.Linear(4, 3, rng=np.random.default_rng(9))
        before = target.weight.data.copy()
        with pytest.raises(StateDictError):
            load_state(target, path)
        np.testing.assert_allclose(target.weight.data, before)


class TestBlobs:
    """Digest-framed pickle blobs (the flow checkpoint payload format)."""

    def test_roundtrip_returns_matching_digest(self, tmp_path):
        from repro.nn.serialization import load_blob, save_blob

        path = str(tmp_path / "value.blob")
        obj = {"arr": np.arange(5.0), "n": 3}
        digest = save_blob(path, obj)
        value, loaded_digest = load_blob(path)
        assert loaded_digest == digest and len(digest) == 64
        assert value["n"] == 3
        np.testing.assert_array_equal(value["arr"], np.arange(5.0))

    def test_expected_digest_enforced(self, tmp_path):
        from repro.nn.serialization import BlobError, load_blob, save_blob

        path = str(tmp_path / "value.blob")
        digest = save_blob(path, [1, 2, 3])
        load_blob(path, expected_digest=digest)  # matching: fine
        with pytest.raises(BlobError, match="digest"):
            load_blob(path, expected_digest="0" * 64)

    def test_flipped_payload_byte_detected(self, tmp_path):
        from repro.nn.serialization import BlobError, load_blob, save_blob

        path = tmp_path / "value.blob"
        save_blob(str(path), list(range(100)))
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(BlobError):
            load_blob(str(path))

    def test_truncation_detected(self, tmp_path):
        from repro.nn.serialization import BlobError, load_blob, save_blob

        path = tmp_path / "value.blob"
        save_blob(str(path), list(range(100)))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(BlobError):
            load_blob(str(path))

    def test_wrong_magic_rejected(self, tmp_path):
        from repro.nn.serialization import BlobError, load_blob

        path = tmp_path / "value.blob"
        path.write_bytes(b"NOT-A-BLOB\n" + b"0" * 64 + b"\n")
        with pytest.raises(BlobError, match="magic"):
            load_blob(str(path))

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        from repro.nn.serialization import save_blob

        save_blob(str(tmp_path / "value.blob"), {"k": 1})
        assert sorted(os.listdir(tmp_path)) == ["value.blob"]

    def test_blob_honors_umask(self, tmp_path):
        import stat

        from repro.nn.serialization import save_blob

        path = tmp_path / "value.blob"
        old = os.umask(0o022)
        try:
            save_blob(str(path), {"k": 1})
        finally:
            os.umask(old)
        assert stat.S_IMODE(os.stat(path).st_mode) == 0o644

    def test_atomic_write_text_replaces_existing(self, tmp_path):
        from repro.nn.serialization import atomic_write_text

        path = tmp_path / "report.json"
        atomic_write_text(str(path), "first")
        atomic_write_text(str(path), "second")
        assert path.read_text() == "second"
        assert sorted(os.listdir(tmp_path)) == ["report.json"]
