"""Tests for model state save/load."""

import os

import numpy as np

from repro import nn
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


def test_roundtrip_preserves_outputs(tmp_path, rng):
    model = nn.Sequential(nn.Linear(4, 6, rng=rng), nn.ReLU(), nn.Linear(6, 2, rng=rng))
    path = str(tmp_path / "model.npz")
    save_state(model, path)

    clone = nn.Sequential(
        nn.Linear(4, 6, rng=np.random.default_rng(777)),
        nn.ReLU(),
        nn.Linear(6, 2, rng=np.random.default_rng(778)),
    )
    load_state(clone, path)
    x = Tensor(rng.normal(size=(3, 4)))
    np.testing.assert_allclose(model(x).data, clone(x).data)


def test_roundtrip_includes_buffers(tmp_path, rng):
    bn = nn.BatchNorm2d(3)
    bn(Tensor(rng.normal(size=(8, 3, 2, 2)) + 4))  # update running stats
    path = str(tmp_path / "bn.npz")
    save_state(bn, path)

    fresh = nn.BatchNorm2d(3)
    load_state(fresh, path)
    np.testing.assert_allclose(fresh.running_mean, bn.running_mean)
    np.testing.assert_allclose(fresh.running_var, bn.running_var)


def test_save_creates_directories(tmp_path, rng):
    model = nn.Linear(2, 2, rng=rng)
    path = str(tmp_path / "deep" / "nested" / "model.npz")
    save_state(model, path)
    assert os.path.exists(path)
