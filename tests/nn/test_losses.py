"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import cross_entropy, mse_loss, nll_loss
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import check_gradients


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.arange(4))
        np.testing.assert_allclose(loss.item(), np.log(10), atol=1e-10)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_gradient(self, rng):
        targets = np.array([0, 2, 1])
        check_gradients(
            lambda logits: cross_entropy(logits, targets),
            [rng.normal(size=(3, 4))],
        )

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        targets = np.array([1, 0])
        cross_entropy(logits, targets).backward()
        softmax = F.softmax(Tensor(logits.data)).data
        onehot = np.eye(3)[targets]
        np.testing.assert_allclose(logits.grad, (softmax - onehot) / 2, atol=1e-12)

    def test_accepts_tensor_targets(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)))
        loss = cross_entropy(logits, Tensor(np.array([0.0, 1.0])))
        assert np.isfinite(loss.item())

    def test_rejects_2d_targets(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), np.zeros((2, 3)))

    def test_rejects_batch_mismatch(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 3))), np.zeros(5))

    def test_extreme_logits_stable(self):
        logits = Tensor(np.array([[1e4, -1e4]]))
        loss = cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())


class TestMSE:
    def test_zero_for_equal(self, rng):
        x = rng.normal(size=(3, 2))
        assert mse_loss(Tensor(x), x).item() == 0.0

    def test_value(self):
        loss = mse_loss(Tensor([1.0, 3.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 5.0)

    def test_gradient(self, rng):
        target = rng.normal(size=(4,))
        check_gradients(lambda x: mse_loss(x, target), [rng.normal(size=(4,))])

    def test_accepts_tensor_target(self, rng):
        x = rng.normal(size=(3,))
        assert mse_loss(Tensor(x), Tensor(x)).item() == 0.0


class TestNLL:
    def test_matches_cross_entropy(self, rng):
        logits = rng.normal(size=(5, 4))
        targets = np.array([0, 1, 2, 3, 0])
        ce = cross_entropy(Tensor(logits), targets).item()
        nll = nll_loss(F.log_softmax(Tensor(logits)), targets).item()
        np.testing.assert_allclose(ce, nll, atol=1e-12)

    def test_gradient(self, rng):
        targets = np.array([1, 0])
        check_gradients(
            lambda lp: nll_loss(F.log_softmax(lp), targets),
            [rng.normal(size=(2, 3))],
        )
