"""Tests for Dataset / DataLoader."""

import numpy as np
import pytest

from repro.nn.data import DataLoader, Dataset


def make_dataset(n=20, classes=4):
    images = np.arange(n * 1 * 2 * 2, dtype=float).reshape(n, 1, 2, 2)
    labels = np.arange(n) % classes
    return Dataset(images, labels)


class TestDataset:
    def test_len_and_getitem(self):
        ds = make_dataset()
        assert len(ds) == 20
        image, label = ds[3]
        assert image.shape == (1, 2, 2)
        assert label == 3

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_non_4d_images_raise(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 4)), np.zeros(3))

    def test_num_classes(self):
        assert make_dataset(classes=4).num_classes == 4

    def test_input_shape(self):
        assert make_dataset().input_shape == (1, 2, 2)

    def test_subset_leading(self):
        sub = make_dataset().subset(5)
        assert len(sub) == 5
        np.testing.assert_allclose(sub.labels, [0, 1, 2, 3, 0])

    def test_subset_random_no_duplicates(self):
        rng = np.random.default_rng(0)
        sub = make_dataset().subset(10, rng=rng)
        # images encode their original index uniquely
        firsts = sub.images[:, 0, 0, 0]
        assert len(np.unique(firsts)) == 10

    def test_subset_larger_than_dataset_clamps(self):
        assert len(make_dataset(5).subset(100)) == 5

    def test_split_partitions(self):
        rng = np.random.default_rng(0)
        a, b = make_dataset().split(0.75, rng)
        assert len(a) == 15 and len(b) == 5
        combined = np.sort(np.concatenate([a.images[:, 0, 0, 0], b.images[:, 0, 0, 0]]))
        np.testing.assert_allclose(combined, make_dataset().images[:, 0, 0, 0])

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_dataset().split(1.5, np.random.default_rng(0))


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(make_dataset(), batch_size=8, shuffle=False)
        batches = list(loader)
        assert [len(b[1]) for b in batches] == [8, 8, 4]

    def test_len_with_remainder(self):
        assert len(DataLoader(make_dataset(), batch_size=8)) == 3

    def test_len_drop_last(self):
        assert len(DataLoader(make_dataset(), batch_size=8, drop_last=True)) == 2

    def test_drop_last_iteration(self):
        loader = DataLoader(make_dataset(), batch_size=8, shuffle=False, drop_last=True)
        assert [len(b[1]) for b in loader] == [8, 8]

    def test_covers_every_sample_once(self):
        loader = DataLoader(make_dataset(), batch_size=7, rng=np.random.default_rng(1))
        seen = np.concatenate([images[:, 0, 0, 0] for images, _ in loader])
        assert len(seen) == 20
        assert len(np.unique(seen)) == 20

    def test_shuffle_reproducible(self):
        order_a = [
            labels.tolist()
            for _, labels in DataLoader(make_dataset(), 5, rng=np.random.default_rng(3))
        ]
        order_b = [
            labels.tolist()
            for _, labels in DataLoader(make_dataset(), 5, rng=np.random.default_rng(3))
        ]
        assert order_a == order_b

    def test_no_shuffle_is_sequential(self):
        loader = DataLoader(make_dataset(), batch_size=20, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_allclose(labels, np.arange(20) % 4)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)
