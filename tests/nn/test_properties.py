"""Hypothesis property tests for the nn framework invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


@st.composite
def conv_case(draw):
    batch = draw(st.integers(1, 3))
    in_ch = draw(st.integers(1, 3))
    out_ch = draw(st.integers(1, 4))
    kernel = draw(st.sampled_from([1, 3]))
    size = draw(st.integers(kernel, kernel + 4))
    stride = draw(st.sampled_from([1, 2]))
    padding = draw(st.integers(0, 1))
    seed = draw(st.integers(0, 2**31 - 1))
    return batch, in_ch, out_ch, kernel, size, stride, padding, seed


class TestConvProperties:
    @given(conv_case())
    @settings(max_examples=30, deadline=None)
    def test_matches_naive_convolution(self, case):
        batch, in_ch, out_ch, kernel, size, stride, padding, seed = case
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(batch, in_ch, size, size))
        w = rng.normal(size=(out_ch, in_ch, kernel, kernel))
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding).data

        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        out_h = (size + 2 * padding - kernel) // stride + 1
        expected = np.zeros((batch, out_ch, out_h, out_h))
        for n in range(batch):
            for f in range(out_ch):
                for i in range(out_h):
                    for j in range(out_h):
                        patch = xp[
                            n, :, i * stride : i * stride + kernel,
                            j * stride : j * stride + kernel,
                        ]
                        expected[n, f, i, j] = (patch * w[f]).sum()
        np.testing.assert_allclose(out, expected, atol=1e-9)

    @given(conv_case())
    @settings(max_examples=20, deadline=None)
    def test_linearity_in_input(self, case):
        batch, in_ch, out_ch, kernel, size, stride, padding, seed = case
        rng = np.random.default_rng(seed)
        x1 = rng.normal(size=(batch, in_ch, size, size))
        x2 = rng.normal(size=(batch, in_ch, size, size))
        w = Tensor(rng.normal(size=(out_ch, in_ch, kernel, kernel)))
        sum_out = F.conv2d(Tensor(x1 + x2), w, stride=stride, padding=padding).data
        sep_out = (
            F.conv2d(Tensor(x1), w, stride=stride, padding=padding).data
            + F.conv2d(Tensor(x2), w, stride=stride, padding=padding).data
        )
        np.testing.assert_allclose(sum_out, sep_out, atol=1e-9)


class TestActivationProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_softmax_shift_invariant(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(4, 7))
        shifted = F.softmax(Tensor(x + 5.0)).data
        np.testing.assert_allclose(shifted, F.softmax(Tensor(x)).data, atol=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_relu_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(10,)))
        once = F.relu(x)
        twice = F.relu(once)
        np.testing.assert_allclose(once.data, twice.data)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_max_pool_dominates_avg_pool(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)))
        max_out = F.max_pool2d(x, 2).data
        avg_out = F.avg_pool2d(x, 2).data
        assert np.all(max_out >= avg_out - 1e-12)


class TestAutogradProperties:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_gradient_linearity(self, seed):
        """grad of (a·f + b·g) = a·grad(f) + b·grad(g)."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(5,))

        def grad_of(scale_f, scale_g):
            x = Tensor(data.copy(), requires_grad=True)
            out = scale_f * (x * x).sum() + scale_g * x.sum()
            out.backward()
            return x.grad

        combined = grad_of(2.0, 3.0)
        separate = 2.0 * grad_of(1.0, 0.0) + 3.0 * grad_of(0.0, 1.0)
        np.testing.assert_allclose(combined, separate, atol=1e-10)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_chain_rule_through_reshape_transpose(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = x.reshape(4, 3).transpose(1, 0) * 2.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((3, 4), 2.0))
