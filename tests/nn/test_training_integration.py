"""Integration: the framework can actually learn."""

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


def two_blob_dataset(rng, n=200):
    """Two Gaussian blobs in 2-D, linearly separable."""
    half = n // 2
    x = np.vstack(
        [rng.normal([-2, -2], 0.5, size=(half, 2)), rng.normal([2, 2], 0.5, size=(half, 2))]
    )
    y = np.array([0] * half + [1] * half)
    order = rng.permutation(n)
    return x[order], y[order]


def test_mlp_learns_blobs(rng):
    x, y = two_blob_dataset(rng)
    model = nn.Sequential(nn.Linear(2, 8, rng=rng), nn.ReLU(), nn.Linear(8, 2, rng=rng))
    opt = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    for _ in range(60):
        loss = nn.cross_entropy(model(Tensor(x)), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
    accuracy = (model(Tensor(x)).data.argmax(1) == y).mean()
    assert accuracy > 0.98


def test_convnet_learns_orientation(rng):
    """Tiny convnet separates horizontal from vertical bars."""
    n = 120
    images = np.zeros((n, 1, 8, 8))
    labels = np.zeros(n, dtype=int)
    for i in range(n):
        pos = rng.integers(1, 7)
        if i % 2 == 0:
            images[i, 0, pos, :] = 1.0
        else:
            images[i, 0, :, pos] = 1.0
            labels[i] = 1
    images += rng.normal(0, 0.05, images.shape)

    model = nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 4 * 4, 2, rng=rng),
    )
    opt = nn.Adam(model.parameters(), lr=5e-3)
    for _ in range(40):
        loss = nn.cross_entropy(model(Tensor(images)), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()
    accuracy = (model(Tensor(images)).data.argmax(1) == labels).mean()
    assert accuracy > 0.95


def test_batchnorm_network_trains(rng):
    x, y = two_blob_dataset(rng, n=100)
    model = nn.Sequential(
        nn.Linear(2, 8, rng=rng),
        nn.ReLU(),
        nn.Linear(8, 2, rng=rng),
    )
    # Insert BN via a wrapper network over 4-D reshaped data is overkill;
    # instead verify a conv+BN stack decreases its loss.
    images = rng.normal(size=(32, 2, 4, 4))
    labels = (images.mean(axis=(1, 2, 3)) > 0).astype(int)
    net = nn.Sequential(
        nn.Conv2d(2, 4, 3, padding=1, rng=rng),
        nn.BatchNorm2d(4),
        nn.ReLU(),
        nn.Flatten(),
        nn.Linear(4 * 16, 2, rng=rng),
    )
    opt = nn.Adam(net.parameters(), lr=1e-2)
    first_loss = None
    for step in range(30):
        loss = nn.cross_entropy(net(Tensor(images)), labels)
        if first_loss is None:
            first_loss = loss.item()
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert loss.item() < first_loss * 0.5


def test_gradients_flow_through_residual(rng):
    from repro.models.resnet import BasicBlock

    block = BasicBlock(3, 6, stride=2, rng=rng)
    x = Tensor(rng.normal(size=(2, 3, 8, 8)), requires_grad=True)
    block(x).sum().backward()
    assert x.grad is not None
    for name, param in block.named_parameters():
        if "bn" in name or "1" == name[-1]:
            continue
        assert param.grad is not None, f"{name} got no gradient"
