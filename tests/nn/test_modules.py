"""Tests for the module system: registration, traversal, state dicts, hooks."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def small_mlp(rng):
    return nn.Sequential(
        nn.Linear(4, 8, rng=rng),
        nn.ReLU(),
        nn.Linear(8, 3, rng=rng),
    )


class TestRegistration:
    def test_parameters_found(self, rng):
        model = small_mlp(rng)
        names = [name for name, _ in model.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]

    def test_num_parameters(self, rng):
        model = small_mlp(rng)
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_modules_traversal(self, rng):
        model = small_mlp(rng)
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds == ["Sequential", "Linear", "ReLU", "Linear"]

    def test_nested_module_names(self, rng):
        class Wrapper(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = nn.Linear(2, 2, rng=rng)

            def forward(self, x):
                return self.inner(x)

        model = Wrapper()
        assert dict(model.named_parameters()).keys() == {"inner.weight", "inner.bias"}

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(3)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_non_grad_tensor_not_registered_as_parameter(self):
        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.constant = Tensor([1.0])  # requires_grad False

            def forward(self, x):
                return x

        assert Holder().parameters() == []


class TestTrainEval:
    def test_mode_propagates(self, rng):
        model = small_mlp(rng)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        model = small_mlp(rng)
        out = model(Tensor(rng.normal(size=(2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self, rng):
        model_a = small_mlp(rng)
        model_b = small_mlp(np.random.default_rng(99))
        state = model_a.state_dict()
        model_b.load_state_dict(state)
        x = Tensor(rng.normal(size=(2, 4)))
        np.testing.assert_allclose(model_a(x).data, model_b(x).data)

    def test_state_dict_is_copy(self, rng):
        model = small_mlp(rng)
        state = model.state_dict()
        state["0.weight"][...] = 0.0
        assert not np.allclose(model.layers[0].weight.data, 0.0)

    def test_unknown_key_raises(self, rng):
        model = small_mlp(rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"nonexistent": np.zeros(3)})

    def test_shape_mismatch_raises(self, rng):
        model = small_mlp(rng)
        with pytest.raises(ValueError):
            model.load_state_dict({"0.weight": np.zeros((2, 2))})

    def test_batchnorm_buffers_in_state(self):
        bn = nn.BatchNorm2d(2)
        bn.running_mean[:] = 5.0
        state = bn.state_dict()
        assert np.allclose(state["running_mean"], 5.0)


class TestForwardHooks:
    def test_hook_fires_with_output(self, rng):
        model = small_mlp(rng)
        seen = []
        model.layers[1].register_forward_hook(lambda m, i, o: seen.append(o))
        model(Tensor(rng.normal(size=(2, 4))))
        assert len(seen) == 1
        assert seen[0].shape == (2, 8)

    def test_hook_remover(self, rng):
        model = small_mlp(rng)
        seen = []
        remove = model.layers[1].register_forward_hook(lambda m, i, o: seen.append(1))
        remove()
        model(Tensor(rng.normal(size=(2, 4))))
        assert seen == []

    def test_clear_forward_hooks(self, rng):
        model = small_mlp(rng)
        seen = []
        model.layers[1].register_forward_hook(lambda m, i, o: seen.append(1))
        model.layers[1].clear_forward_hooks()
        model(Tensor(rng.normal(size=(2, 4))))
        assert seen == []


class TestLayerBehaviour:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(5, 7, rng=rng)
        assert layer(Tensor(rng.normal(size=(3, 5)))).shape == (3, 7)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(5, 7, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, padding=1, rng=rng)
        assert layer(Tensor(rng.normal(size=(2, 3, 10, 10)))).shape == (2, 8, 10, 10)

    def test_conv_stride(self, rng):
        layer = nn.Conv2d(1, 1, 3, stride=2, rng=rng)
        assert layer(Tensor(rng.normal(size=(1, 1, 9, 9)))).shape == (1, 1, 4, 4)

    def test_batchnorm_running_stats_only_in_train(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)) + 10)
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, 0.0)
        bn.train()
        bn(x)
        assert not np.allclose(bn.running_mean, 0.0)

    def test_dropout_eval_identity(self, rng):
        layer = nn.Dropout(0.9, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(5,)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        assert nn.Identity()(x) is x

    def test_flatten(self, rng):
        assert nn.Flatten()(Tensor(rng.normal(size=(2, 3, 4)))).shape == (2, 12)

    def test_residual_identity_shortcut(self, rng):
        body = nn.Linear(4, 4, rng=rng)
        block = nn.Residual(body)
        x = Tensor(rng.normal(size=(2, 4)))
        expected = np.maximum(body(x).data + x.data, 0.0)
        np.testing.assert_allclose(block(x).data, expected)

    def test_residual_projection_shortcut(self, rng):
        body = nn.Linear(4, 6, rng=rng)
        shortcut = nn.Linear(4, 6, rng=rng)
        block = nn.Residual(body, shortcut)
        x = Tensor(rng.normal(size=(2, 4)))
        assert block(x).shape == (2, 6)

    def test_sequential_iteration_and_indexing(self, rng):
        model = small_mlp(rng)
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)
        assert [type(m).__name__ for m in model] == ["Linear", "ReLU", "Linear"]

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        out = nn.GlobalAvgPool2d()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))

    def test_pool_repr_and_forward(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        assert nn.MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 1, 2, 2)
