"""Tests for guarded serving (repro.runtime.guard)."""

import numpy as np
import pytest

from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.guard import GuardConfig, GuardedSpikingSystem, RuntimeCounters
from repro.snc.faults import inject_faults_into_network
from repro.snc.system import SpikingSystemConfig, build_spiking_system


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(80, seed=0).images


def fresh_system(images, **overrides):
    """An (untrained) LeNet deployed on an ideal chip — fast to build."""
    settings = dict(signal_bits=4, weight_bits=4, input_bits=8, seed=0)
    settings.update(overrides)
    model = LeNet(rng=np.random.default_rng(3))
    return build_spiking_system(model, SpikingSystemConfig(**settings), images[:40])


def software_logits(guard, batch):
    with no_grad():
        return guard.software_twin(Tensor(batch)).data


class TestHealthyServing:
    def test_analog_path_used_when_healthy(self, images):
        system = fresh_system(images)
        guard = GuardedSpikingSystem(system, GuardConfig(probe_every=1))
        logits = guard.infer(images[:8])
        np.testing.assert_allclose(logits, system.infer(images[:8]))
        assert guard.serving_path == "analog"
        assert not guard.counters.fallback_engaged
        assert guard.counters.requests_analog == 1
        assert guard.counters.requests_software == 0
        assert guard.last_report is not None and guard.last_report.healthy

    def test_probe_cadence(self, images):
        system = fresh_system(images)
        guard = GuardedSpikingSystem(system, GuardConfig(probe_every=2))
        for i in range(5):
            guard.infer(images[i : i + 1])
        # Probe before request 1, then before requests 3 and 5.
        assert guard.counters.probes_run == 3
        assert guard.counters.probe_latency_total_s > 0

    def test_probe_every_zero_never_probes_implicitly(self, images):
        system = fresh_system(images)
        guard = GuardedSpikingSystem(system, GuardConfig(probe_every=0))
        guard.infer(images[:4])
        assert guard.counters.probes_run == 0
        guard.check_health()  # on-demand still works
        assert guard.counters.probes_run == 1


class TestFallback:
    def test_faulty_chip_engages_fallback_and_equals_twin(self, images):
        system = fresh_system(images)
        inject_faults_into_network(system.network, rate=0.1, seed=5)
        guard = GuardedSpikingSystem(
            system,
            GuardConfig(probe_every=1, max_deviating_fraction=0.0, auto_remediate=False),
        )
        batch = images[:10]
        logits = guard.infer(batch)
        assert guard.counters.fallback_engaged
        assert guard.serving_path == "software"
        assert guard.counters.requests_software == 1
        assert guard.counters.requests_analog == 0
        np.testing.assert_allclose(logits, software_logits(guard, batch))

    def test_fallback_output_differs_from_damaged_analog(self, images):
        system = fresh_system(images)
        inject_faults_into_network(system.network, rate=0.1, seed=5)
        guard = GuardedSpikingSystem(
            system,
            GuardConfig(probe_every=1, max_deviating_fraction=0.0, auto_remediate=False),
        )
        batch = images[:10]
        guarded = guard.infer(batch)
        assert not np.allclose(guarded, system.infer(batch))

    def test_auto_remediation_heals_and_clears_fallback(self, images):
        # Full spare provisioning + ideal writes: the ladder heals the
        # chip completely, so serving returns to the analog path.
        system = fresh_system(images, spare_tile_fraction=1.0)
        inject_faults_into_network(system.network, rate=0.02, seed=5)
        guard = GuardedSpikingSystem(
            system, GuardConfig(probe_every=1, max_deviating_fraction=0.0)
        )
        guard.infer(images[:4])
        assert guard.counters.repairs_attempted == 1
        assert guard.counters.repairs_succeeded == 1
        assert not guard.counters.fallback_engaged
        assert guard.serving_path == "analog"
        assert guard.last_report.deviating_pairs == 0

    def test_health_log_records_episodes(self, images):
        system = fresh_system(images)
        inject_faults_into_network(system.network, rate=0.1, seed=5)
        guard = GuardedSpikingSystem(
            system, GuardConfig(max_deviating_fraction=0.0, auto_remediate=False)
        )
        guard.check_health()
        assert len(guard.health_log) == 1
        event = guard.health_log[0]
        assert not event.healthy
        assert event.deviating_pairs > 0
        assert not event.remediated


class TestTransientRetry:
    def test_transient_failure_retried_then_served_analog(self, images):
        system = fresh_system(images)
        failures = {"left": 1}
        analog_infer = system.infer

        def flaky(batch):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient spike-path glitch")
            return analog_infer(batch)

        system.infer = flaky
        guard = GuardedSpikingSystem(system, GuardConfig(max_retries=2))
        logits = guard.infer(images[:4])
        np.testing.assert_allclose(logits, analog_infer(images[:4]))
        assert guard.counters.transient_failures == 1
        assert guard.counters.transient_retries == 1
        assert guard.counters.requests_analog == 1

    def test_persistent_failure_serves_software_without_condemning(self, images):
        system = fresh_system(images)

        def broken(batch):
            raise RuntimeError("dead link")

        system.infer = broken
        guard = GuardedSpikingSystem(system, GuardConfig(max_retries=2))
        batch = images[:4]
        logits = guard.infer(batch)
        np.testing.assert_allclose(logits, software_logits(guard, batch))
        assert guard.counters.transient_failures == 3  # initial try + 2 retries
        assert guard.counters.requests_software == 1
        # One bad request does not engage the persistent fallback path.
        assert not guard.counters.fallback_engaged


class TestObservability:
    def test_runtime_stats_consistent(self, images):
        system = fresh_system(images)
        inject_faults_into_network(system.network, rate=0.1, seed=5)
        guard = GuardedSpikingSystem(
            system,
            GuardConfig(probe_every=2, max_deviating_fraction=0.0, auto_remediate=False),
        )
        for i in range(4):
            guard.infer(images[i : i + 1])
        stats = guard.runtime_stats()
        assert stats["requests_total"] == 4
        assert stats["requests_analog"] + stats["requests_software"] == 4
        assert stats["serving_path"] == "software"
        assert stats["fallback_engaged"] is True
        assert stats["health_checks_logged"] == stats["probes_run"]
        assert stats["probe_latency_mean_s"] >= 0
        for key in RuntimeCounters.__dataclass_fields__:
            assert key in stats

    def test_accuracy_runs_through_guard(self, images):
        system = fresh_system(images)
        guard = GuardedSpikingSystem(system)
        dataset = generate_mnist_like(30, seed=1)
        accuracy = guard.accuracy(dataset, batch_size=10)
        assert 0.0 <= accuracy <= 1.0
        assert guard.counters.requests_total == 3


class TestConfigValidation:
    def test_negative_probe_every_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(probe_every=-1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            GuardConfig(max_retries=-1)

    def test_system_guarded_helper(self, images):
        system = fresh_system(images)
        guard = system.guarded()
        assert isinstance(guard, GuardedSpikingSystem)


class TestConcurrentCallers:
    """Regression: guard counters and probe scheduling are lock-protected.

    Before the serving layer, GuardedSpikingSystem was only ever called
    from one thread; repro.serve routes degraded replicas through a
    shared guard, so concurrent infer() must neither lose counter
    increments nor double-probe.
    """

    def test_counters_exact_under_concurrent_infer(self, images):
        import threading

        system = fresh_system(images)
        guard = GuardedSpikingSystem(system, GuardConfig(probe_every=0))
        per_thread, threads_n = 8, 4
        errors = []

        def caller(index):
            try:
                for i in range(per_thread):
                    batch = images[(index + i) % 16 : (index + i) % 16 + 2]
                    logits = guard.infer(batch)
                    assert logits.shape[0] == 2
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=caller, args=(i,)) for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert errors == []
        total = per_thread * threads_n
        assert guard.counters.requests_total == total
        assert (
            guard.counters.requests_analog + guard.counters.requests_software
            == total
        )

    def test_probe_cadence_exact_under_concurrent_infer(self, images):
        import threading

        system = fresh_system(images)
        guard = GuardedSpikingSystem(system, GuardConfig(probe_every=2))
        barrier = threading.Barrier(4)

        def caller():
            barrier.wait(10.0)
            for i in range(4):
                guard.infer(images[i : i + 1])

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        # 16 requests at probe_every=2 → exactly one probe per 2 requests
        # (requests 1, 3, 5, ... trigger), never a lost or doubled probe.
        assert guard.counters.requests_total == 16
        assert guard.counters.probes_run == 8
