"""The fused integer fast path and its multiplier-less shift variant.

Covers the PR-level contracts that `test_plan.py` does not:

- ``shift_requantize`` is *exactly* the multiply-based requantize whenever
  the scale sits on the power-of-two grid — proven against an
  arbitrary-precision (``fractions.Fraction``) reference over the full
  uint8-counts accumulator range with per-channel shifts.
- ``describe()`` reports the dtypes that actually flow through the GEMM
  (the honest-labels satellite): the stated carrier is the real dtype of
  the weight operand, and the stated counts dtypes are the real dtypes of
  the buffers the plan produces.
- Engine-level variant semantics: kernel selection, the shift backend
  label, and graceful graph degradation when snapping is impossible.
"""

import copy
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
)
from repro.core.pow2 import snap_scales_pow2
from repro.core.weight_clustering import _stamp_grid
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.modules import Conv2d
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.engine import EngineConfig
from repro.runtime.plan import compile_plan, shift_requantize


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(48, seed=0).images


def _deploy(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return deployed


@pytest.fixture(scope="module")
def deployed_lenet(images):
    return _deploy(images)


def graph_logits(module, batch):
    with no_grad():
        return module(Tensor(batch)).data


# ---------------------------------------------------------------------------
# shift_requantize == multiply requantize (exact, property-based)
# ---------------------------------------------------------------------------

@st.composite
def requantize_case(draw):
    channels = draw(st.integers(1, 6))
    rows = draw(st.integers(1, 12))
    top = draw(st.sampled_from([15, 31, 255]))
    # Per-channel shifts over the grid the engine actually emits.
    shifts = np.array(
        draw(st.lists(st.integers(0, 24), min_size=channels, max_size=channels)),
        dtype=np.int64,
    )
    # Accumulators spanning the full uint8-counts × int8-codes range:
    # K taps of counts in [0, 255] against codes in [-128, 127].
    bound = 64 * 255 * 128
    acc = np.array(
        draw(
            st.lists(
                st.lists(st.integers(-bound, bound), min_size=channels,
                         max_size=channels),
                min_size=rows, max_size=rows,
            )
        ),
        dtype=np.int64,
    )
    # Arbitrary folded offsets (bias·gain + ½ in production) — any float.
    q_offset = np.array(
        draw(
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
                min_size=channels, max_size=channels,
            )
        ),
        dtype=np.float64,
    )
    return acc, shifts, q_offset, top


class TestShiftRequantize:
    @given(requantize_case())
    @settings(max_examples=60, deadline=None)
    def test_matches_multiply_requantize_exactly(self, case):
        """clip((acc + ⌊q_offset·2^s⌋) >> s) == clip(⌊2^-s·acc + q_offset⌋).

        The right side is evaluated in arbitrary precision: the engine's
        shift epilogue must agree with the *mathematical* multiply
        requantize for every pow2-grid scale, not merely with a float64
        evaluation of it.
        """
        acc, shifts, q_offset, top = case
        offsets = np.floor(q_offset * np.exp2(shifts)).astype(np.int64)
        out = np.empty(acc.shape, dtype=np.uint8 if top <= 255 else np.uint16)
        shift_requantize(acc.copy(), shifts[np.newaxis, :],
                         offsets[np.newaxis, :], top, out)
        for i in range(acc.shape[0]):
            for j in range(acc.shape[1]):
                q_scale = Fraction(1, 2 ** int(shifts[j]))
                exact = q_scale * acc[i, j] + Fraction(q_offset[j])
                want = min(max(exact.numerator // exact.denominator, 0), top)
                assert out[i, j] == want, (
                    f"acc={acc[i, j]} shift={shifts[j]} "
                    f"q_offset={q_offset[j]!r}: shift path gave {out[i, j]}, "
                    f"exact multiply requantize gives {want}"
                )

    def test_full_uint8_single_tap_sweep(self):
        """Deterministic exhaustive sweep: every uint8 count, one weight."""
        counts = np.arange(256, dtype=np.int64)
        for code in (-128, -1, 1, 127):
            for shift in (0, 3, 7):
                acc = counts * code
                offsets = np.full_like(acc, 5)
                out = np.empty(acc.shape, dtype=np.uint8)
                shift_requantize(acc.copy(), shift, offsets, 255, out)
                want = np.clip((counts * code + 5) >> shift, 0, 255)
                np.testing.assert_array_equal(out, want)


# ---------------------------------------------------------------------------
# describe() honesty: stated dtypes are the dtypes actually used
# ---------------------------------------------------------------------------

class TestDescribeHonesty:
    def test_labels_match_real_gemm_operands_and_buffers(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        text = plan.describe()
        int_steps = [s for s in plan.steps if hasattr(s, "_gemm_label")]
        assert len(int_steps) == 3
        for step in int_steps:
            label = step._gemm_label()
            assert label in text
            # The stated carrier is the dtype of the real weight operand.
            assert step.codes_t.dtype == step.carrier
            assert step.carrier.name in label
            assert step.in_dtype.name in label
            assert step.code_dtype.name in label
        # The stated counts dtypes are the dtypes the plan really produces:
        # replay step by step and compare each output to its producer's claim.
        x = images[:2]
        for step in plan.steps:
            x = step.run(x, plan.pool)
            if hasattr(step, "out_dtype"):
                assert x.dtype == step.out_dtype, (
                    f"step {step.index} ({step.kind}) describes itself as "
                    f"emitting {step.out_dtype} but produced {x.dtype}"
                )

    def test_shift_mode_reports_accumulator_and_shift(self, images):
        deployed = _deploy(images)
        snap_scales_pow2(deployed)
        plan = compile_plan(deployed, images[:2],
                            EngineConfig(int_path="shift"))
        text = plan.describe()
        int_steps = [s for s in plan.steps if hasattr(s, "_gemm_label")]
        for step in int_steps:
            assert step.shift is not None
            assert f"acc={step.acc_int_dtype.name} >>{step.shift}" in text


# ---------------------------------------------------------------------------
# Engine-level variant semantics
# ---------------------------------------------------------------------------

class TestEngineVariants:
    def test_rejects_invalid_kernel_and_path_combinations(self):
        with pytest.raises(ValueError):
            EngineConfig(int_kernels="vectorized")
        with pytest.raises(ValueError):
            EngineConfig(int_path="pow2")
        with pytest.raises(ValueError):
            EngineConfig(int_path="shift", int_kernels="legacy")

    def test_legacy_kernels_bit_exact(self, deployed_lenet, images):
        reference = graph_logits(deployed_lenet, np.asarray(images[:16], dtype=np.float64))
        engine = make_inference_engine(
            deployed_lenet, dtype=np.float64, int_kernels="legacy"
        )
        logits = engine.run(images[:16])
        assert engine.active_backend == "int"
        np.testing.assert_array_equal(logits, reference)

    def test_shift_backend_label_and_argmax(self, images):
        deployed = _deploy(images)
        engine = make_inference_engine(deployed, dtype=np.float64, int_path="shift")
        logits = engine.run(images[:16])
        assert engine.active_backend == "shift"
        # The engine snapped its module in place: the snapped graph is the
        # conformance reference, and predictions must agree exactly.
        reference = graph_logits(deployed, np.asarray(images[:16], dtype=np.float64))
        np.testing.assert_array_equal(
            np.argmax(logits, axis=1), np.argmax(reference, axis=1)
        )

    def test_unsnappable_module_degrades_to_graph(self, images):
        deployed = copy.deepcopy(_deploy(images))
        # Force an off-range shift: a huge weight scale makes q_scale > 1,
        # which would need a *left* shift the engine refuses to prove.
        conv = next(m for m in deployed.modules() if isinstance(m, Conv2d))
        _stamp_grid(conv, 1e9, conv._grid_bits)
        engine = make_inference_engine(deployed, dtype=np.float64, int_path="shift")
        logits = engine.run(images[:8])
        assert engine.active_backend == "graph"
        np.testing.assert_array_equal(
            logits, graph_logits(deployed, np.asarray(images[:8], dtype=np.float64))
        )
