"""Tests for the compiled inference engine (repro.runtime.engine)."""

import numpy as np
import pytest

from repro.core.deployment import (
    DeploymentConfig,
    deploy_dynamic_fixed_point,
    deploy_model,
    make_inference_engine,
)
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.models.alexnet import AlexNetCifar
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.engine import EngineConfig, InferenceEngine
from repro.snc.faults import inject_faults_into_network
from repro.snc.system import SpikingSystemConfig, build_spiking_system


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(80, seed=0).images


@pytest.fixture(scope="module")
def deployed_lenet(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return deployed


def graph_logits(module, batch):
    with no_grad():
        return module(Tensor(batch)).data


class TestIntegerFastPath:
    @pytest.mark.parametrize("batch_size", [1, 7, 32])
    def test_lenet_bit_exact_across_batch_sizes(self, deployed_lenet, images, batch_size):
        engine = InferenceEngine(deployed_lenet)
        batch = images[:batch_size]
        out = engine.run(batch)
        assert engine.active_backend == "int"
        np.testing.assert_array_equal(out, graph_logits(deployed_lenet, batch))

    def test_alexnet_style_bit_exact(self, images):
        model = AlexNetCifar(width_multiplier=0.25, rng=np.random.default_rng(1))
        model.eval()
        rgb = np.random.default_rng(1).normal(size=(48, 3, 32, 32)) * 0.3
        deployed, _ = deploy_model(
            model,
            DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
            rgb[:32],
        )
        engine = InferenceEngine(deployed)
        out = engine.run(rgb[:12])
        assert engine.active_backend == "int"
        np.testing.assert_array_equal(out, graph_logits(deployed, rgb[:12]))

    def test_sparsity_pruning_is_exact(self, deployed_lenet, images):
        pruned = InferenceEngine(deployed_lenet, EngineConfig(exploit_sparsity=True))
        dense = InferenceEngine(deployed_lenet, EngineConfig(exploit_sparsity=False))
        batch = images[:16]
        np.testing.assert_array_equal(pruned.run(batch), dense.run(batch))
        stats = pruned.runtime_stats()
        assert any(
            entry["pruned_runs"] > 0 for entry in stats.get("sparsity", {}).values()
        )

    def test_int_path_off_forces_float_plan(self, deployed_lenet, images):
        engine = InferenceEngine(
            deployed_lenet, EngineConfig(dtype=np.float64, int_path="off")
        )
        out = engine.run(images[:8])
        assert engine.active_backend == "float64"
        np.testing.assert_array_equal(out, graph_logits(deployed_lenet, images[:8]))


class TestFloatBackend:
    def test_float32_accuracy_matches_float64(self, deployed_lenet, images):
        fast = InferenceEngine(
            deployed_lenet, EngineConfig(dtype=np.float32, int_path="off")
        )
        exact = InferenceEngine(
            deployed_lenet, EngineConfig(dtype=np.float64, int_path="off")
        )
        batch = images[:48]
        out32 = fast.run(batch)
        out64 = exact.run(batch)
        assert fast.active_backend == "float32"
        np.testing.assert_allclose(out32, out64, rtol=1e-4, atol=1e-4)
        assert (out32.argmax(axis=1) == out64.argmax(axis=1)).mean() > 0.95

    def test_dynamic_fixed_point_deployment(self, images):
        model = LeNet(rng=np.random.default_rng(2))
        model.eval()
        deployed, _ = deploy_dynamic_fixed_point(model, images[:32], bits=8)
        engine = InferenceEngine(deployed, EngineConfig(dtype=np.float64))
        out = engine.run(images[:8])
        np.testing.assert_array_equal(out, graph_logits(deployed, images[:8]))


class TestLifecycle:
    def test_retrace_on_weight_mutation(self, images):
        model = LeNet(rng=np.random.default_rng(3))
        model.eval()
        engine = InferenceEngine(model, EngineConfig(dtype=np.float64))
        engine.run(images[:4])
        model.fc2.weight.data *= 1.5
        out = engine.run(images[:4])
        assert engine.stats.retraces == 1
        np.testing.assert_array_equal(out, graph_logits(model, images[:4]))

    def test_invalidate_drops_plan(self, images):
        model = LeNet(rng=np.random.default_rng(4))
        model.eval()
        engine = InferenceEngine(model, EngineConfig(dtype=np.float64))
        engine.run(images[:4])
        assert engine.plan is not None
        engine.invalidate()
        assert engine.plan is None
        engine.run(images[:4])
        assert engine.plan is not None

    def test_batched_streaming_matches_single_run(self, deployed_lenet, images):
        engine = InferenceEngine(deployed_lenet)
        streamed = engine.infer_batched(images[:50], batch_size=16)
        np.testing.assert_array_equal(streamed, engine.run(images[:50]))

    def test_predict(self, deployed_lenet, images):
        engine = InferenceEngine(deployed_lenet)
        preds = engine.predict(images[:8])
        assert preds.shape == (8,)
        np.testing.assert_array_equal(
            preds, graph_logits(deployed_lenet, images[:8]).argmax(axis=1)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(int_path="maybe")
        with pytest.raises(ValueError):
            EngineConfig(trace_batch=0)
        with pytest.raises(ValueError):
            EngineConfig(batch_size=0)

    def test_runtime_stats_keys(self, deployed_lenet, images):
        engine = InferenceEngine(deployed_lenet)
        engine.run(images[:4])
        stats = engine.runtime_stats()
        assert stats["backend"] == "int"
        assert stats["runs"] == 1
        assert stats["steps"] > 0 and stats["int_steps"] == 3
        assert stats["pool_bytes"] > 0


class TestHardwareIntegration:
    @pytest.fixture(scope="class")
    def system(self, images):
        model = LeNet(rng=np.random.default_rng(5))
        config = SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8)
        return build_spiking_system(model, config, images[:40])

    def test_spiking_plan_bit_identical(self, system, images):
        engine = system.engine()
        out = engine.run(images[:12])
        assert engine.active_backend == "float64"
        with no_grad():
            ref = system.network(Tensor(images[:12])).data
        np.testing.assert_array_equal(out, ref)

    def test_fault_injection_needs_no_retrace(self, system, images):
        engine = system.engine()
        engine.run(images[:8])
        retraces_before = engine.stats.retraces
        inject_faults_into_network(system.network, 0.05, seed=7)
        out = engine.run(images[:8])
        # Crossbar steps read the live arrays: same plan, new conductances.
        assert engine.stats.retraces == retraces_before
        with no_grad():
            ref = system.network(Tensor(images[:8])).data
        np.testing.assert_array_equal(out, ref)

    def test_verify_equivalence_through_engines(self, images):
        model = LeNet(rng=np.random.default_rng(6))
        config = SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8)
        system = build_spiking_system(model, config, images[:40])
        assert system.verify_equivalence(images[:10])

    def test_guard_fallback_serves_from_twin_engine(self, images):
        model = LeNet(rng=np.random.default_rng(7))
        config = SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8)
        system = build_spiking_system(model, config, images[:40])
        guard = system.guarded()
        guard.counters.fallback_engaged = True
        out = guard.infer(images[:8])
        np.testing.assert_array_equal(out, graph_logits(guard.software_twin, images[:8]))
        assert guard.runtime_stats()["twin_engine"]["runs"] == 1


def test_make_inference_engine_helper(deployed_lenet, images):
    engine = make_inference_engine(deployed_lenet, dtype=np.float64)
    out = engine.run(images[:6])
    assert engine.active_backend == "int"
    np.testing.assert_array_equal(out, graph_logits(deployed_lenet, images[:6]))
