"""Tests for execution-plan compilation (repro.runtime.plan)."""

import numpy as np
import pytest

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.models.resnet import ResNetCifar
from repro.nn import modules as nn
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.engine import EngineConfig
from repro.runtime.plan import (
    BufferPool,
    PlanError,
    compile_plan,
    trace_chain,
)


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(48, seed=0).images


@pytest.fixture(scope="module")
def deployed_lenet(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return deployed


def graph_logits(module, batch):
    with no_grad():
        return module(Tensor(batch)).data


class TestTraceChain:
    def test_orders_atomic_modules(self, deployed_lenet, images):
        chain, out = trace_chain(deployed_lenet, images[:2])
        names = [type(m).__name__ for m in chain]
        assert names[0] == "InputQuantizer"
        assert "Conv2d" in names and "Linear" in names
        np.testing.assert_array_equal(out, graph_logits(deployed_lenet, images[:2]))

    def test_rejects_residual_topology(self, images):
        model = ResNetCifar(rng=np.random.default_rng(0))
        model.eval()
        rgb = np.random.default_rng(0).normal(size=(2, 3, 32, 32))
        with pytest.raises(PlanError):
            trace_chain(model, rgb)

    def test_rejects_module_without_traceable_leaves(self):
        class Opaque(nn.Module):
            def forward(self, x):
                return x

        with pytest.raises(PlanError):
            trace_chain(Opaque(), np.zeros((1, 4)))


class TestCompile:
    def test_int_plan_structure(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        kinds = [step.kind for step in plan.steps]
        # Input quantizer emits counts; convs/hidden linear run as fused
        # integer GEMMs; the unquantized classifier tail runs float after
        # an explicit dequantize.
        assert kinds[0] == "input-quant-int"
        assert kinds.count("conv2d-int") == 2
        assert kinds.count("linear-int") == 1
        assert kinds[-2:] == ["dequant", "linear"]
        assert plan.uses_int_path and plan.int_steps == 3
        assert plan.dtype == np.float64

    def test_int_plan_carries_small_dtypes(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        x = np.asarray(images[:2], dtype=np.float64)
        seen = []
        for step in plan.steps:
            x = step.run(x, plan.pool)
            seen.append(x.dtype)
        # Counts travel as uint8 between quantized layers.
        assert np.dtype(np.uint8) in seen
        assert seen[-1] == np.dtype(np.float64)

    def test_int_plan_bit_identical_to_graph(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        got = plan.run(np.asarray(images[:16], dtype=np.float64))
        np.testing.assert_array_equal(got, graph_logits(deployed_lenet, images[:16]))

    def test_float64_plan_bit_identical_to_graph(self, deployed_lenet, images):
        config = EngineConfig(dtype=np.float64, int_path="off")
        plan = compile_plan(deployed_lenet, images[:2], config)
        assert not plan.uses_int_path
        got = plan.run(np.asarray(images[:16], dtype=np.float64))
        np.testing.assert_array_equal(got, graph_logits(deployed_lenet, images[:16]))

    def test_float32_plan_close_to_graph(self, deployed_lenet, images):
        config = EngineConfig(dtype=np.float32, int_path="off")
        plan = compile_plan(deployed_lenet, images[:2], config)
        assert plan.dtype == np.float32
        got = plan.run(np.asarray(images[:16], dtype=np.float64))
        ref = graph_logits(deployed_lenet, images[:16])
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-4)

    def test_unquantized_model_compiles_to_float_plan(self, images):
        model = LeNet(rng=np.random.default_rng(1))
        model.eval()
        plan = compile_plan(model, images[:2], EngineConfig(dtype=np.float64))
        assert not plan.uses_int_path
        got = plan.run(np.asarray(images[:8], dtype=np.float64))
        np.testing.assert_array_equal(got, graph_logits(model, images[:8]))

    def test_training_mode_dropout_rejected(self, images):
        model = nn.Sequential(
            nn.Flatten(), nn.Dropout(0.5), nn.Linear(784, 10, rng=np.random.default_rng(0))
        )
        model.train()
        with pytest.raises(PlanError):
            compile_plan(model, images[:2], EngineConfig())

    def test_buffer_pool_stops_allocating(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        batch = np.asarray(images[:8], dtype=np.float64)
        plan.run(batch)
        buffers_after_first = len(plan.pool)
        for _ in range(3):
            plan.run(batch)
        assert len(plan.pool) == buffers_after_first


class TestStaleness:
    def test_fresh_plan_not_stale(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        assert not plan.is_stale()

    def test_weight_mutation_stales(self, images):
        model = LeNet(rng=np.random.default_rng(2))
        model.eval()
        plan = compile_plan(model, images[:2], EngineConfig(dtype=np.float64))
        model.conv1.weight.data[0, 0, 0, 0] += 1.0
        assert plan.is_stale()

    def test_quantizer_toggle_stales(self, deployed_lenet, images):
        plan = compile_plan(deployed_lenet, images[:2], EngineConfig())
        quantizer = deployed_lenet.network.relu1  # QuantizedActivation after deploy
        quantizer.enabled = False
        try:
            assert plan.is_stale()
        finally:
            quantizer.enabled = True


def test_buffer_pool_reuses_by_key_shape_dtype():
    pool = BufferPool()
    a = pool.get("k", (4, 4), np.float64)
    assert pool.get("k", (4, 4), np.float64) is a
    assert pool.get("k", (4, 4), np.float32) is not a
    assert pool.get("k", (4, 5), np.float64) is not a
    assert pool.nbytes > 0
