"""Smoke tests: every example imports cleanly and exposes main()."""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLE_FILES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def load_example(filename):
    path = os.path.join(EXAMPLES_DIR, filename)
    spec = importlib.util.spec_from_file_location(filename[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLE_FILES
    assert len(EXAMPLE_FILES) >= 4


@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_imports_and_has_main(filename):
    module = load_example(filename)
    assert callable(getattr(module, "main", None)), f"{filename} lacks main()"
    assert module.__doc__, f"{filename} lacks a module docstring"


@pytest.mark.parametrize("filename", EXAMPLE_FILES)
def test_example_guards_execution(filename):
    """Examples must not run at import time (they all did, to pass above)."""
    with open(os.path.join(EXAMPLES_DIR, filename)) as handle:
        source = handle.read()
    assert 'if __name__ == "__main__":' in source
