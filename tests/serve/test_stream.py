"""Tests for streaming sessions (repro.serve.stream).

Mechanics (buffers, watermarks, expiry, bounds) run against a fake
engine; the conformance class at the bottom runs a real quantized
deployment and checks the headline guarantee — session-served
per-window logits are bit-equal to a direct engine replay with the
canonical window grouping.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets.event_stream import EventStream, generate_event_streams
from repro.models import LeNet
from repro.serve import ModelServer, ServeConfig
from repro.serve.stream import (
    SessionClosed,
    SessionExpired,
    StreamBufferFull,
    StreamConfig,
    StreamingServer,
    TooManySessions,
)
from repro.snc.system import SpikingSystemConfig, build_spiking_system
from repro.snc.temporal import (
    TemporalConfig,
    infer_stream,
    replay_frames,
    stream_to_frames,
)

SIGNAL_BITS = 4


def logits_of(images):
    flat = np.asarray(images).reshape(len(images), -1)
    return np.stack([flat.sum(axis=1), flat[:, 0] - 3.0], axis=1)


class FakeEngine:
    def __init__(self):
        self.plan = object()
        self.active_backend = "fake"

    def run(self, images):
        return logits_of(images)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_streaming(stream_config=None, clock=None, batch_size=None):
    config = stream_config or StreamConfig()
    server = ModelServer(
        FakeEngine,
        config=ServeConfig(
            workers=1,
            batch_size=batch_size or config.temporal.batch_windows,
            max_wait_ms=0.0,
        ),
    )
    try:
        return StreamingServer(server, config, clock=clock)
    except BaseException:
        server.close()  # constructor rejections must not strand workers
        raise


def chunk_of(n, t0_us, t1_us):
    """n events spread over [t0, t1), fixed pixel, ON polarity."""
    t = np.linspace(t0_us, t1_us, n, endpoint=False).astype(np.int64)
    return t, np.full(n, 3), np.full(n, 5), np.ones(n, dtype=np.int64)


class TestStreamConfigValidation:
    def test_defaults_valid(self):
        StreamConfig()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(height=0), "positive"),
            (dict(max_buffer_events=0), "max_buffer_events"),
            (dict(max_sessions=0), "max_sessions"),
            (dict(session_ttl_s=0.0), "session_ttl_s"),
            (dict(timeout_s=0.0), "timeout_s"),
        ],
    )
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            StreamConfig(**kwargs)


class TestGroupingContract:
    def test_batch_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            make_streaming(batch_size=8)  # temporal.batch_windows is 4

    def test_nonzero_wait_rejected(self):
        server = ModelServer(
            FakeEngine, config=ServeConfig(workers=1, batch_size=4, max_wait_ms=2.0)
        )
        try:
            with pytest.raises(ValueError, match="max_wait_ms"):
                StreamingServer(server, StreamConfig())
        finally:
            server.close()


class TestSessionMechanics:
    @pytest.fixture()
    def streaming(self):
        with make_streaming() as streaming:
            yield streaming

    def test_push_validates_parallel_arrays(self, streaming):
        session = streaming.open_session()
        with pytest.raises(ValueError, match="parallel"):
            session.push([1, 2], [3], [5, 5], [1, 1])

    def test_push_rejects_unordered_chunk(self, streaming):
        session = streaming.open_session()
        with pytest.raises(ValueError, match="non-decreasing"):
            session.push([200, 100], [3, 3], [5, 5], [1, 1])

    def test_push_rejects_events_behind_watermark(self, streaming):
        session = streaming.open_session()
        session.push([100], [3], [5], [1])
        session.advance(30_000)
        with pytest.raises(ValueError, match="watermark"):
            session.push([200], [3], [5], [1])

    def test_watermark_may_not_regress(self, streaming):
        session = streaming.open_session()
        session.advance(30_000)
        with pytest.raises(ValueError, match="backwards"):
            session.advance(20_000)

    def test_buffer_bound_enforced(self):
        config = StreamConfig(max_buffer_events=10)
        with make_streaming(config) as streaming:
            session = streaming.open_session()
            session.push(*chunk_of(8, 0, 10_000))
            with pytest.raises(StreamBufferFull):
                session.push(*chunk_of(3, 10_000, 20_000))

    def test_session_bound_enforced(self):
        config = StreamConfig(max_sessions=2)
        with make_streaming(config) as streaming:
            streaming.open_session()
            streaming.open_session()
            with pytest.raises(TooManySessions):
                streaming.open_session()

    def test_advance_submits_only_full_groups(self, streaming):
        # window 25ms / stride 12.5ms / batch_windows 4: window k ends at
        # 12.5k + 25 ms.
        session = streaming.open_session()
        session.push(*chunk_of(50, 0, 100_000))
        assert session.advance(62_500) == 4      # windows 0-3 ready: 1 group
        assert session.advance(75_000) == 4      # 5 ready, partial group held
        total = session.finish(100_000)
        assert total == 7                        # tail group of 3 flushed
        assert session.windows_submitted == 7
        assert session.logits().shape == (7, 2)

    def test_finish_then_push_raises(self, streaming):
        session = streaming.open_session()
        session.push(*chunk_of(10, 0, 40_000))
        session.finish(40_000)
        with pytest.raises(SessionClosed):
            session.push(*chunk_of(1, 50_000, 51_000))

    def test_empty_stream_serves_zero_frames(self, streaming):
        session = streaming.open_session()
        assert session.finish(50_000) == 3
        logits = session.logits()
        np.testing.assert_array_equal(
            logits, logits_of(np.zeros((3, 1, 28, 28)))
        )
        result = session.result()
        assert result.total_windows == 3
        assert result.prediction == int(logits.sum(axis=0).argmax())

    def test_result_without_windows_raises(self, streaming):
        session = streaming.open_session()
        with pytest.raises(RuntimeError, match="push events"):
            session.result()

    def test_session_lookup_and_drop(self, streaming):
        session = streaming.open_session()
        assert streaming.session(session.session_id) is session
        streaming.drop_session(session.session_id)
        with pytest.raises(KeyError):
            streaming.session(session.session_id)

    def test_stats_counts_windows_and_sessions(self, streaming):
        session = streaming.open_session()
        session.push(*chunk_of(20, 0, 90_000))
        session.finish(100_000)
        session.logits()
        stats = streaming.stats()
        assert stats["open_sessions"] == 1
        assert stats["windows_served"] == 7
        assert stats["sessions_expired"] == 0
        assert "completed_requests" in stats  # wrapped server stats merged


class TestSessionExpiry:
    def test_idle_session_expires_via_injected_clock(self):
        clock = FakeClock()
        config = StreamConfig(session_ttl_s=10.0)
        with make_streaming(config, clock=clock) as streaming:
            session = streaming.open_session()
            clock.advance(11.0)
            streaming.open_session()  # any API call sweeps
            with pytest.raises(SessionExpired):
                session.push(*chunk_of(1, 0, 1_000))
            assert streaming.stats()["sessions_expired"] == 1
            assert streaming.stats()["open_sessions"] == 1

    def test_activity_refreshes_ttl(self):
        clock = FakeClock()
        config = StreamConfig(session_ttl_s=10.0)
        with make_streaming(config, clock=clock) as streaming:
            session = streaming.open_session()
            for _ in range(3):
                clock.advance(6.0)
                session.push(*chunk_of(1, int(clock.now * 1e3), int(clock.now * 1e3) + 10))
            assert streaming.stats()["sessions_expired"] == 0


class TestTTLExpiryProperty:
    """Hypothesis property: a *fully-buffered* window — events pushed and
    its group cut before the session idled out — is never dropped.  Not
    by racing cutter threads, not by the TTL sweep that later reclaims
    the session: its logits stay retrievable and bit-equal to the
    canonical binning of the same events."""

    SPAN_US = 12_500  # one stride of the default temporal config

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        chunks=st.lists(st.integers(min_value=1, max_value=12),
                        min_size=1, max_size=8),
        idle_s=st.floats(min_value=0.0, max_value=8.0),
        cutters=st.integers(min_value=1, max_value=3),
    )
    def test_fully_buffered_windows_survive_concurrent_cut_and_expiry(
            self, chunks, idle_s, cutters):
        clock = FakeClock()
        config = StreamConfig(session_ttl_s=10.0)
        temporal = config.temporal
        span = self.SPAN_US
        with make_streaming(config, clock=clock) as streaming:
            session = streaming.open_session()
            pushed_us = [0]  # single-slot mailbox read by cutter threads
            done = threading.Event()

            def cut_loop():
                # Concurrent cut: race advance() against pushes and peer
                # cutters.  A stale watermark losing the race raises the
                # may-not-move-backwards ValueError — benign here.
                while not done.is_set():
                    target = pushed_us[0]
                    if target:
                        try:
                            session.advance(target)
                        except ValueError:
                            pass
                    done.wait(0.0005)

            threads = [threading.Thread(target=cut_loop)
                       for _ in range(cutters)]
            for thread in threads:
                thread.start()
            try:
                for i, n in enumerate(chunks):
                    session.push(*chunk_of(n, i * span, (i + 1) * span))
                    pushed_us[0] = (i + 1) * span
                    clock.advance(idle_s)  # < TTL: pushes refresh activity
            finally:
                done.set()
                for thread in threads:
                    thread.join(10.0)
            total_span = len(chunks) * span
            session.advance(total_span)  # deterministic final cut
            # Exactly the full groups covered by the watermark are
            # submitted — no window lost to the racing cutters.
            ready = 0
            while ready * temporal.stride_us + temporal.window_us <= total_span:
                ready += 1
            submitted = session.windows_submitted
            assert submitted == ready - ready % temporal.batch_windows

            clock.advance(config.session_ttl_s + 1.0)
            streaming.open_session()  # any API call runs the TTL sweep
            with pytest.raises(SessionExpired):
                session.push(*chunk_of(1, total_span, total_span + 10))
            assert streaming.stats()["sessions_expired"] >= 1

            # Expiry reclaims the *session*, never its buffered windows.
            logits = session.logits(timeout=30.0)
            if submitted == 0:
                assert logits.size == 0
                return
            events = [chunk_of(n, i * span, (i + 1) * span)
                      for i, n in enumerate(chunks)]
            stream = EventStream(
                t=np.concatenate([e[0] for e in events]),
                x=np.concatenate([e[1] for e in events]).astype(np.int16),
                y=np.concatenate([e[2] for e in events]).astype(np.int16),
                polarity=np.concatenate([e[3] for e in events]).astype(np.int8),
                label=-1,
                duration_us=total_span,
                height=config.height,
                width=config.width,
            )
            frames = stream_to_frames(stream, temporal)
            np.testing.assert_array_equal(logits, logits_of(frames[:submitted]))


class TestStreamingConformance:
    """Real deployment: sessions must be bit-equal to direct replay."""

    @pytest.fixture(scope="class")
    def temporal(self):
        return TemporalConfig(signal_bits=SIGNAL_BITS, batch_windows=4)

    @pytest.fixture(scope="class")
    def streams(self):
        return generate_event_streams(4, seed=11).streams

    @pytest.fixture(scope="class")
    def system(self, streams, temporal):
        model = LeNet(width_multiplier=0.25, rng=np.random.default_rng(3))
        config = SpikingSystemConfig(
            signal_bits=SIGNAL_BITS, weight_bits=4, input_bits=SIGNAL_BITS,
            signal_gain="auto",
        )
        return build_spiking_system(
            model, config, stream_to_frames(streams[0], temporal)
        )

    @pytest.fixture(scope="class")
    def streaming(self, system, temporal):
        with StreamingServer.for_system(
            system, StreamConfig(temporal=temporal), workers=2
        ) as streaming:
            yield streaming

    def test_sessions_match_direct_replay_bit_exactly(
        self, streaming, system, streams, temporal
    ):
        engine = system.engine()
        for stream in streams:
            result = streaming.serve_stream(stream)
            expected = replay_frames(
                engine, stream_to_frames(stream, temporal), temporal.batch_windows
            )
            np.testing.assert_array_equal(result.per_window_logits, expected)

    def test_session_matches_infer_stream_decision(
        self, streaming, system, streams, temporal
    ):
        direct = infer_stream(system, streams[0], temporal)
        served = streaming.serve_stream(streams[0])
        np.testing.assert_array_equal(
            served.per_window_logits, direct.per_window_logits
        )
        assert served.prediction == direct.prediction
        assert served.label == direct.label

    def test_interleaved_sessions_stay_isolated(self, streaming, system, temporal):
        # Duration chosen so all 8 windows tile into full groups of 4 —
        # full groups always dispatch alone, so concurrent sessions
        # cannot co-batch (a *partial* tail could, under contended
        # closes; see the module docstring of repro.serve.stream).
        from repro.datasets.event_stream import generate_event_stream
        from repro.snc.seeding import substream

        engine = system.engine()
        sessions = []
        for i, label in enumerate((2, 7)):
            stream = generate_event_stream(
                label, substream(11, "test.interleave", (i,)),
                duration_us=112_500,
            )
            session = streaming.open_session(label=label)
            sessions.append((session, stream))
        # Interleave chunk pushes and watermark advances across sessions.
        for t0, t1, watermark in ((0, 56_250, 56_250), (56_250, 112_500, 87_500)):
            for session, stream in sessions:
                chunk = stream.slice_time(t0, t1)
                session.push(chunk.t, chunk.x, chunk.y, chunk.polarity)
            for session, _ in sessions:
                session.advance(watermark)
        for session, stream in sessions:
            assert session.finish(stream.duration_us) == 8
        for session, stream in sessions:
            expected = replay_frames(
                engine, stream_to_frames(stream, temporal), temporal.batch_windows
            )
            np.testing.assert_array_equal(session.logits(), expected)
