"""Process-pool behaviour: transport, health, chaos, ordering.

The cross-model × kernel-variant bit-exactness matrix lives in
``tests/integration/test_process_conformance.py``; this module covers
the pool's *machinery* on one small deployed LeNet:

- :class:`WorkerSpec` pickling reproduces the engine bit-exactly,
- scatter/gather returns arrival-order logits for arbitrary interleaved
  request sizes and deadlines (hypothesis property test),
- SIGKILL chaos (seed-scheduled via :func:`repro.flow.chaos.
  fault_schedule`) mid-stream: every response arrives exactly once,
  bit-exact, and zero shared-memory segments survive the drain,
- a worker past its restart budget demotes to the in-process fallback
  instead of failing requests.

Worker processes cost ~1 s each to spawn (start method ``spawn``), so
servers here are module-scoped where the test semantics allow it.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import datasets
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.flow.chaos import fault_schedule
from repro.models.registry import build_model
from repro.obs import Telemetry
from repro.serve import ServeConfig, ServerClosed, WorkerSpec
from repro.serve.shm import active_segment_names

BATCH_ROWS = 8


@pytest.fixture(scope="module")
def deployed_lenet():
    """One small quantized LeNet deployment + calibration images."""
    train_set, _ = datasets.mnist_like(train_size=16, test_size=4, seed=0)
    images = np.asarray(train_set.images[:BATCH_ROWS], dtype=np.float64)
    model = build_model("lenet", width_multiplier=0.25,
                        rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images,
    )
    return deployed, images


def _requests(shape_tail, total_rows, seed):
    """Deterministic request rows: row r is recognisable by its content."""
    rng = np.random.default_rng(seed)
    return np.ascontiguousarray(
        rng.uniform(0.0, 1.0, size=(total_rows,) + tuple(shape_tail)),
        dtype=np.float64,
    )


def _process_server(deployed, images, **config_kwargs):
    kwargs = dict(workers=1, batch_size=BATCH_ROWS, max_wait_ms=1.0,
                  pool="process")
    kwargs.update(config_kwargs)
    return make_model_server(
        deployed,
        ServeConfig(**kwargs),
        warmup_images=images[:2],
        dtype=np.float64,
    )


class TestWorkerSpec:
    def test_spec_rebuilds_bit_exact_replica(self, deployed_lenet):
        deployed, images = deployed_lenet
        reference = make_inference_engine(deployed, dtype=np.float64).run(images)
        spec = WorkerSpec.for_module(deployed, batch_rows=BATCH_ROWS,
                                     dtype=np.float64)
        replica = spec.build_replica()
        assert np.array_equal(replica.run_rows(images), reference)

    def test_spec_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(pool="greenlet")
        with pytest.raises(ValueError):
            ServeConfig(pool="process", max_restarts=-1)
        with pytest.raises(ValueError):
            ServeConfig(pool="process", worker_timeout_s=0)

    def test_process_pool_requires_worker_spec(self):
        from repro.serve import ModelServer

        with pytest.raises(ValueError, match="worker_spec"):
            ModelServer(engine_factory=lambda: None,
                        config=ServeConfig(pool="process"))

    def test_thread_pool_requires_engine_factory(self):
        from repro.serve import ModelServer

        with pytest.raises(ValueError, match="engine_factory"):
            ModelServer(config=ServeConfig(pool="thread"))


@pytest.fixture(scope="module")
def process_server(deployed_lenet):
    """A 1-worker process server + direct-engine oracle, shared across
    the ordering tests (spawning workers per example would dominate)."""
    deployed, images = deployed_lenet
    engine = make_inference_engine(deployed, dtype=np.float64)
    server = _process_server(deployed, images)
    yield server, engine, images.shape[1:]
    server.close()


class TestArrivalOrder:
    # The module-scoped server (and the autouse leak guard) deliberately
    # wrap all examples at once — suppress the per-example-reset check.
    @settings(deadline=None, max_examples=12,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                       max_size=8),
        deadline_ms=st.sampled_from([None, 30_000.0]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_interleaved_requests_gather_in_arrival_order(
            self, process_server, sizes, deadline_ms, seed):
        """Arbitrary request sizes scatter-gather back in arrival order:
        future *i* gets exactly the logits of the rows submitted *i*-th,
        bit-exact against the direct engine."""
        server, engine, shape_tail = process_server
        rows = _requests(shape_tail, sum(sizes), seed)
        expected = engine.run(rows)
        futures, start = [], 0
        for size in sizes:
            futures.append(server.submit_async(
                rows[start:start + size], deadline_ms=deadline_ms))
            start += size
        start = 0
        for size, future in zip(sizes, futures):
            got = future.result(60.0)
            assert got.shape[0] == size
            assert np.array_equal(got, expected[start:start + size])
            start += size


class TestChaos:
    def test_sigkill_mid_stream_retries_bit_exact_no_leak(self, deployed_lenet):
        """Seed-scheduled SIGKILLs mid-stream: every future completes
        exactly once with bit-exact logits, the worker restarts are
        counted, and the drain leaves zero shm segments behind."""
        deployed, images = deployed_lenet
        baseline = set(active_segment_names())
        engine = make_inference_engine(deployed, dtype=np.float64)
        n_requests, size = 12, 4
        rows = _requests(images.shape[1:], n_requests * size, seed=1234)
        expected = engine.run(rows)
        kill_after = fault_schedule(n_requests, fraction=0.25, seed=99,
                                    token="chaos.procpool")
        assert kill_after  # the schedule must actually exercise the fault

        telemetry = Telemetry()
        server = make_model_server(
            deployed,
            ServeConfig(workers=2, batch_size=BATCH_ROWS, max_wait_ms=1.0,
                        pool="process", max_restarts=len(kill_after),
                        worker_timeout_s=60.0),
            warmup_images=images[:2],
            telemetry=telemetry,
            dtype=np.float64,
        )
        try:
            futures = []
            for i in range(n_requests):
                futures.append(server.submit_async(rows[i * size:(i + 1) * size]))
                if i in kill_after:
                    victims = [p for p in server.pool.worker_pids() if p]
                    os.kill(victims[i % len(victims)], signal.SIGKILL)
            results = [future.result(120.0) for future in futures]
            for i, got in enumerate(results):
                assert np.array_equal(got, expected[i * size:(i + 1) * size]), (
                    f"request {i} came back wrong after SIGKILL chaos"
                )
            stats = server.stats()
            restarts = sum(r["restarts"] for r in stats["replicas"])
            assert restarts >= 1
            assert stats["shm"]["leases_outstanding"] == 0
            assert (stats["shm"]["leases_issued_total"]
                    == stats["shm"]["leases_recycled_total"])
        finally:
            server.close()
        assert set(active_segment_names()) <= baseline, (
            "shared-memory segments leaked past the drain"
        )
        counters = telemetry.registry.names()
        assert "serve_worker_restarts_total" in counters
        assert "serve_shm_bytes_in_flight" in counters

    def test_worker_past_restart_budget_demotes_to_fallback(self, deployed_lenet):
        """With max_restarts=0 a killed worker must not fail requests:
        the pool serves them from the in-process guarded fallback."""
        deployed, images = deployed_lenet
        baseline = set(active_segment_names())
        engine = make_inference_engine(deployed, dtype=np.float64)
        rows = _requests(images.shape[1:], 8, seed=77)
        expected = engine.run(rows)
        server = _process_server(deployed, images, max_restarts=0)
        try:
            (pid,) = server.pool.worker_pids()
            os.kill(pid, signal.SIGKILL)
            got = server.submit(rows, timeout=120.0)
            assert np.array_equal(got, expected)
            stats = server.stats()
            assert stats["degraded_replicas"] == 1
            assert stats["fallback_batches"] >= 1
        finally:
            server.close()
        assert set(active_segment_names()) <= baseline


class TestHealth:
    def test_probe_vectors_run_and_pass(self, deployed_lenet):
        deployed, images = deployed_lenet
        server = _process_server(deployed, images, probe_every_batches=1)
        try:
            rows = _requests(images.shape[1:], 4, seed=5)
            server.submit(rows, timeout=60.0)
            server.submit(rows, timeout=60.0)
            stats = server.stats()
            (replica,) = stats["replicas"]
            assert replica["probes_run"] >= 1
            assert replica["probes_failed"] == 0
            assert not replica["degraded"]
        finally:
            server.close()


class TestLifecycle:
    def test_close_without_drain_fails_queued_requests(self, deployed_lenet):
        deployed, images = deployed_lenet
        server = _process_server(deployed, images)
        server.close(drain=False)
        with pytest.raises(ServerClosed):
            server.submit(images[:2])

    def test_close_is_idempotent(self, deployed_lenet):
        deployed, images = deployed_lenet
        baseline = set(active_segment_names())
        server = _process_server(deployed, images)
        server.close()
        server.close()
        assert set(active_segment_names()) <= baseline

    def test_stats_shape_matches_thread_pool(self, deployed_lenet):
        deployed, images = deployed_lenet
        server = _process_server(deployed, images)
        try:
            server.submit(images[:4], timeout=60.0)
            stats = server.stats()
            for key in ("completed_requests", "queue", "workers", "batches",
                        "rows", "fallback_batches", "degraded_replicas",
                        "replicas", "compute_slots", "shm"):
                assert key in stats, f"missing stats key {key}"
            assert stats["replicas"][0]["backend"] == "process"
        finally:
            server.close()
