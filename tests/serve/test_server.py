"""Tests of the ModelServer facade (repro.serve.server).

Fast paths use a scriptable fake engine; the integration class at the
bottom runs a real quantized deployment end to end and checks the
headline guarantee — serving is bit-exact against direct engine runs.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.serve import (
    DeadlineExceeded,
    LatencyWindow,
    ModelServer,
    ServeConfig,
    ServerClosed,
    ServerOverloaded,
)


def logits_of(images):
    flat = np.asarray(images).reshape(len(images), -1)
    return np.stack([flat[:, 0] * 2.0 + 1.0, flat[:, 0] - 3.0], axis=1)


class FakeEngine:
    def __init__(self, gate=None, delay_s=0.0):
        self.plan = object()
        self.active_backend = "fake"
        self.gate = gate
        self.delay_s = delay_s

    def run(self, images):
        if self.gate is not None:
            assert self.gate.wait(10.0)
        if self.delay_s:
            time.sleep(self.delay_s)
        return logits_of(images)


def fake_server(config, **engine_kwargs):
    return ModelServer(lambda: FakeEngine(**engine_kwargs), config=config)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


class TestConfigValidation:
    @pytest.mark.parametrize("overrides", [
        {"workers": 0},
        {"batch_size": 0},
        {"max_wait_ms": -1.0},
        {"max_queue_rows": 0},
        {"default_deadline_ms": 0.0},
        {"compute_slots": 0},
        {"latency_window": 0},
    ])
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            ServeConfig(**overrides)


class TestBackpressure:
    def test_queue_full_raises_server_overloaded_synchronously(self):
        gate = threading.Event()  # engine stalls: nothing ever drains
        config = ServeConfig(workers=1, batch_size=4, max_wait_ms=0.0,
                             max_queue_rows=8)
        server = fake_server(config, gate=gate)
        try:
            server.submit_async(np.ones((4, 3)))  # pulled into flight
            assert wait_until(lambda: server.queue.depth()["rows"] == 0)
            server.submit_async(np.ones((4, 3)))  # queued: 4/8 rows
            server.submit_async(np.ones((4, 3)))  # queued: 8/8 rows
            with pytest.raises(ServerOverloaded):
                server.submit_async(np.ones((1, 3)))
            assert server.stats()["rejected_requests"] == 1
        finally:
            gate.set()
            server.close()

    def test_rejected_request_not_counted_completed(self):
        gate = threading.Event()
        config = ServeConfig(workers=1, batch_size=4, max_wait_ms=0.0,
                             max_queue_rows=4)
        server = fake_server(config, gate=gate)
        try:
            in_flight = server.submit_async(np.ones((4, 3)))
            assert wait_until(lambda: server.queue.depth()["rows"] == 0)
            queued = server.submit_async(np.ones((4, 3)))  # fills the bound
            with pytest.raises(ServerOverloaded):
                server.submit_async(np.ones((4, 3)))
            gate.set()
            in_flight.result(10.0)
            queued.result(10.0)
            stats = server.stats()
            assert stats["completed_requests"] == 2
            assert stats["rejected_requests"] == 1
        finally:
            gate.set()
            server.close()


class TestDeadlines:
    def test_expired_request_gets_deadline_exceeded(self):
        gate = threading.Event()
        config = ServeConfig(workers=1, batch_size=4, max_wait_ms=0.0)
        server = fake_server(config, gate=gate)
        try:
            blocker = server.submit_async(np.ones((4, 3)))  # occupies the worker
            assert wait_until(lambda: server.queue.depth()["rows"] == 0)
            doomed = server.submit_async(np.ones((2, 3)), deadline_ms=5.0)
            time.sleep(0.05)  # let the 5ms deadline lapse while queued
            gate.set()
            blocker.result(10.0)
            with pytest.raises(DeadlineExceeded):
                doomed.result(10.0)
        finally:
            gate.set()
            server.close()

    def test_default_deadline_applies(self):
        gate = threading.Event()
        config = ServeConfig(workers=1, batch_size=4, max_wait_ms=0.0,
                             default_deadline_ms=5.0)
        server = fake_server(config, gate=gate)
        try:
            blocker = server.submit_async(np.ones((4, 3)), deadline_ms=10_000.0)
            assert wait_until(lambda: server.queue.depth()["rows"] == 0)
            doomed = server.submit_async(np.ones((2, 3)))  # inherits 5ms
            time.sleep(0.05)
            gate.set()
            blocker.result(10.0)
            with pytest.raises(DeadlineExceeded):
                doomed.result(10.0)
        finally:
            gate.set()
            server.close()


class TestShutdown:
    def test_drain_close_flushes_in_flight_requests(self):
        config = ServeConfig(workers=2, batch_size=4, max_wait_ms=0.0)
        server = fake_server(config, delay_s=0.005)
        futures = [server.submit_async(np.full((2, 3), float(i)))
                   for i in range(10)]
        server.close(drain=True)  # most of those are still queued here
        for i, future in enumerate(futures):
            np.testing.assert_array_equal(
                future.result(0), logits_of(np.full((2, 3), float(i)))
            )

    def test_submit_after_close_is_rejected(self):
        server = fake_server(ServeConfig(workers=1, batch_size=4))
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(np.ones((1, 3)))

    def test_context_manager_closes(self):
        with fake_server(ServeConfig(workers=1, batch_size=4)) as server:
            server.submit(np.ones((2, 3)))
        assert server.queue.closed


class TestStats:
    def test_stats_shape_and_latency_percentiles(self):
        config = ServeConfig(workers=2, batch_size=4, max_wait_ms=0.0)
        with fake_server(config) as server:
            for _ in range(6):
                server.submit(np.ones((2, 3)))
            stats = server.stats()
        assert stats["completed_requests"] == 6
        assert stats["rejected_requests"] == 0
        assert stats["rows"] == 12
        assert stats["workers"] == 2
        assert stats["compute_slots"] >= 1
        assert stats["queue"] == {"requests": 0, "rows": 0}
        assert stats["p50_ms"] > 0 and stats["p99_ms"] >= stats["p50_ms"]

    def test_latency_window_evicts_beyond_size(self):
        window = LatencyWindow(4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            window.record(value)
        snapshot = sorted(window.snapshot())
        assert snapshot == [2.0, 3.0, 4.0, 5.0]

    def test_empty_latency_window_reports_nothing(self):
        assert LatencyWindow(4).percentiles() == {}


class TestServingIntegration:
    """Real deployment end to end: quantized LeNet behind the server."""

    @pytest.fixture(scope="class")
    def deployed(self):
        images = generate_mnist_like(24, seed=0).images
        model = LeNet(rng=np.random.default_rng(0))
        model.eval()
        net, _ = deploy_model(
            model,
            DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
            images[:16],
        )
        return net, images

    def test_single_requests_match_batched_and_direct(self, deployed):
        net, images = deployed
        engine = make_inference_engine(net)
        direct = engine.run(images[:12])
        config = ServeConfig(workers=2, batch_size=8, max_wait_ms=2.0)
        with make_model_server(net, config, warmup_images=images[:2]) as server:
            batched = server.submit(images[:12])
            singles = server.submit_many(
                [images[i : i + 1] for i in range(12)]
            )
        np.testing.assert_array_equal(batched, direct)
        np.testing.assert_array_equal(np.concatenate(singles, axis=0), direct)

    def test_concurrent_callers_each_get_their_rows(self, deployed):
        net, images = deployed
        engine = make_inference_engine(net)
        config = ServeConfig(workers=2, batch_size=16, max_wait_ms=2.0)
        slices = [images[i : i + 3] for i in range(0, 21, 3)]
        results = [None] * len(slices)
        with make_model_server(net, config, warmup_images=images[:2]) as server:
            def call(i):
                results[i] = server.submit(slices[i])
            threads = [threading.Thread(target=call, args=(i,))
                       for i in range(len(slices))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
        for i, logits in enumerate(results):
            np.testing.assert_array_equal(logits, engine.run(slices[i]))
