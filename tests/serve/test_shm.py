"""Unit tests for the shared-memory data plane (serve/shm.py)."""

import numpy as np
import pytest

from repro.obs import Telemetry
from repro.obs.clock import FakeClock
from repro.serve.shm import (
    ALIGNMENT,
    ShmError,
    ShmExhausted,
    ShmLeak,
    SlabAllocator,
    SpscRing,
    StaleLease,
    active_segment_names,
    attach_segment,
)


class TestSlabAllocator:
    def test_lease_view_roundtrip(self):
        allocator = SlabAllocator(slab_bytes=1 << 16, max_slabs=2)
        try:
            lease = allocator.lease(1024)
            view = allocator.view(lease, (16, 8), dtype=np.float64)
            data = np.arange(128, dtype=np.float64).reshape(16, 8)
            np.copyto(view, data)
            again = allocator.view(lease, (16, 8), dtype=np.float64)
            assert np.array_equal(again, data)
            allocator.release(lease)
        finally:
            allocator.close(force=True)

    def test_alignment(self):
        allocator = SlabAllocator(slab_bytes=1 << 16, max_slabs=1)
        try:
            a = allocator.lease(1)
            b = allocator.lease(ALIGNMENT + 1)
            assert a.nbytes == ALIGNMENT
            assert b.nbytes == 2 * ALIGNMENT
            assert a.offset % ALIGNMENT == 0
            assert b.offset % ALIGNMENT == 0
            allocator.release(a)
            allocator.release(b)
        finally:
            allocator.close()

    def test_double_release_is_stale(self):
        allocator = SlabAllocator(slab_bytes=1 << 16, max_slabs=1)
        try:
            lease = allocator.lease(64)
            allocator.release(lease)
            with pytest.raises(StaleLease):
                allocator.release(lease)
            assert allocator.stats()["stale_releases_total"] == 1
        finally:
            allocator.close()

    def test_generation_prevents_recycled_range_reuse(self):
        """A released range re-leased under a new generation rejects the
        old descriptor — bytes can never be freed twice via a stale tag."""
        allocator = SlabAllocator(slab_bytes=1 << 16, max_slabs=1)
        try:
            old = allocator.lease(64)
            allocator.release(old)
            new = allocator.lease(64)
            assert new.offset == old.offset  # same range, recycled
            assert new.generation != old.generation
            with pytest.raises(StaleLease):
                allocator.release(old)
            allocator.release(new)
        finally:
            allocator.close()

    def test_exhaustion_is_explicit(self):
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1)
        try:
            held = allocator.lease(1 << 12)
            with pytest.raises(ShmExhausted):
                allocator.lease(1 << 12)
            allocator.release(held)
        finally:
            allocator.close()

    def test_oversize_request_gets_dedicated_segment(self):
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=2)
        try:
            big = allocator.lease(1 << 14)  # larger than slab_bytes
            view = allocator.view(big, (1 << 14,), dtype=np.uint8)
            assert view.nbytes == 1 << 14
            allocator.release(big)
        finally:
            allocator.close()

    def test_free_list_coalesces(self):
        """Adjacent releases merge back so the full slab is leasable again."""
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1)
        try:
            leases = [allocator.lease(1 << 10) for _ in range(4)]  # fills slab
            for lease in leases:
                allocator.release(lease)
            whole = allocator.lease(1 << 12)  # only fits if coalesced
            allocator.release(whole)
        finally:
            allocator.close()

    def test_close_with_outstanding_lease_raises_leak(self):
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1)
        lease = allocator.lease(64)
        with pytest.raises(ShmLeak):
            allocator.close()
        allocator.release(lease)
        allocator.close()

    def test_close_force_reclaims(self):
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1)
        allocator.lease(64)
        allocator.close(force=True)
        assert allocator.outstanding == 0

    def test_segments_unlinked_at_close(self):
        before = set(active_segment_names())
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=2)
        lease = allocator.lease(64)
        assert set(active_segment_names()) - before  # slab is registered
        allocator.release(lease)
        allocator.close()
        assert set(active_segment_names()) <= before

    def test_view_larger_than_lease_rejected(self):
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1)
        try:
            lease = allocator.lease(64)
            with pytest.raises(ShmError):
                allocator.view(lease, (1024,), dtype=np.float64)
            allocator.release(lease)
        finally:
            allocator.close()

    def test_telemetry_gauges_track_flight(self):
        telemetry = Telemetry()
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1,
                                  telemetry=telemetry)
        try:
            lease = allocator.lease(100)
            registry = telemetry.registry
            assert registry.gauge("serve_shm_bytes_in_flight").value == lease.nbytes
            allocator.release(lease)
            assert registry.gauge("serve_shm_bytes_in_flight").value == 0
            assert registry.counter("serve_shm_lease_recycled_total").value == 1
        finally:
            allocator.close()

    def test_stats_counters(self):
        allocator = SlabAllocator(slab_bytes=1 << 12, max_slabs=1)
        try:
            a = allocator.lease(64)
            b = allocator.lease(64)
            allocator.release(a)
            stats = allocator.stats()
            assert stats["leases_issued_total"] == 2
            assert stats["leases_recycled_total"] == 1
            assert stats["leases_outstanding"] == 1
            assert stats["bytes_in_flight"] == b.nbytes
            allocator.release(b)
        finally:
            allocator.close()


class TestSpscRing:
    def test_roundtrip(self):
        ring = SpscRing.create(256)
        try:
            ring.write(b"hello")
            assert ring.read(5) == b"hello"
        finally:
            ring.close()

    def test_wraparound_preserves_bytes(self):
        ring = SpscRing.create(64)
        try:
            payload_a = bytes(range(48))
            ring.write(payload_a)
            assert ring.read(48) == payload_a
            payload_b = bytes(reversed(range(40)))  # crosses the seam
            ring.write(payload_b)
            assert ring.read(40) == payload_b
        finally:
            ring.close()

    def test_attach_sees_writes(self):
        ring = SpscRing.create(128)
        try:
            writer = SpscRing.attach(ring.name)
            writer.write(b"cross-mapping")
            assert ring.read(13) == b"cross-mapping"
            writer.close()
        finally:
            ring.close()

    def test_oversized_payload_raises_not_deadlocks(self):
        ring = SpscRing.create(16)
        try:
            with pytest.raises(ShmError):
                ring.write(b"x" * 17)
        finally:
            ring.close()

    def test_full_ring_times_out_on_fake_clock(self):
        clock = FakeClock()
        ring = SpscRing.create(8, clock=clock, sleep=clock.sleep)
        try:
            ring.write(b"12345678")
            with pytest.raises(ShmError, match="full"):
                ring.write(b"9", timeout_s=5.0)
        finally:
            ring.close()

    def test_read_underflow_times_out_on_fake_clock(self):
        clock = FakeClock()
        ring = SpscRing.create(8, clock=clock, sleep=clock.sleep)
        try:
            with pytest.raises(ShmError, match="writer stalled"):
                ring.read(4, timeout_s=5.0)
        finally:
            ring.close()

    def test_owner_close_unlinks(self):
        before = set(active_segment_names())
        ring = SpscRing.create(64)
        assert set(active_segment_names()) - before
        ring.close()
        assert set(active_segment_names()) <= before


def test_attach_segment_does_not_adopt_ownership():
    ring = SpscRing.create(64)
    name = ring.name
    try:
        attached = attach_segment(name)
        attached.close()
        # The attacher's close must not unlink: the owner still maps it.
        again = attach_segment(name)
        again.close()
    finally:
        ring.close()
