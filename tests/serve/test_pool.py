"""Tests of replica behaviour and pool lifecycle (repro.serve.pool)."""

import threading

import numpy as np
import pytest

from repro.obs.clock import FakeClock
from repro.serve.batcher import MicroBatcher
from repro.serve.pool import Replica, ReplicaPool
from repro.serve.queue import AdmissionQueue, ServerClosed


def logits_of(images):
    flat = np.asarray(images).reshape(len(images), -1)
    return np.stack([flat[:, 0] * 2.0 + 1.0, flat[:, 0] - 3.0], axis=1)


class FakeEngine:
    """Engine stand-in: deterministic per-row logits, scriptable failures."""

    def __init__(self, fail_times=0):
        self.plan = object()  # pretend already traced
        self.active_backend = "fake"
        self.calls = []
        self.fail_times = fail_times

    def run(self, images):
        self.calls.append(np.asarray(images).shape)
        if self.fail_times > 0:
            self.fail_times -= 1
            raise RuntimeError("engine exploded")
        return logits_of(images)


def make_batch(queue_rows=4096, sizes=(3,), batch_size=None, tag0=1):
    queue = AdmissionQueue(max_rows=queue_rows)
    requests = [
        queue.submit(np.full((rows, 4), float(tag0 + i)))
        for i, rows in enumerate(sizes)
    ]
    batcher = MicroBatcher(
        queue, batch_size=batch_size or sum(sizes), max_wait_s=60.0
    )
    return batcher.next_batch(), requests


class TestReplicaServing:
    def test_serves_bit_exact_per_request(self):
        batch, requests = make_batch(sizes=(2, 3))
        replica = Replica(index=0, engine=FakeEngine(), batch_rows=8)
        replica.serve(batch)
        for request in requests:
            np.testing.assert_array_equal(
                request.future.result(0), logits_of(request.images)
            )
        assert replica.stats.batches == 1
        assert replica.stats.rows == 5

    def test_shapes_seen_by_engine_are_bucketed(self):
        """The engine only ever sees pow2 buckets (≥8) or batch_rows — the
        property that keeps its shape-keyed buffer pool bounded."""
        engine = FakeEngine()
        replica = Replica(index=0, engine=engine, batch_rows=16)
        for rows in (1, 5, 8, 11, 16, 23, 37):
            batch, _ = make_batch(sizes=(rows,))
            replica.serve(batch)
        assert {shape[0] for shape in engine.calls} <= {8, 16}

    def test_padded_rows_sliced_off(self):
        batch, requests = make_batch(sizes=(3,))  # pads 3 → bucket 8
        replica = Replica(index=0, engine=FakeEngine(), batch_rows=16)
        replica.serve(batch)
        result = requests[0].future.result(0)
        assert result.shape == (3, 2)
        np.testing.assert_array_equal(result, logits_of(requests[0].images))

    def test_bucket_bounds(self):
        replica = Replica(index=0, engine=FakeEngine(), batch_rows=128)
        assert replica._bucket(1) == 8
        assert replica._bucket(8) == 8
        assert replica._bucket(9) == 16
        assert replica._bucket(100) == 128  # clamped to batch_rows
        assert replica._bucket(130) == 130  # oversize passes through

    def test_batch_rows_validated(self):
        with pytest.raises(ValueError):
            Replica(index=0, engine=FakeEngine(), batch_rows=0)


class TestReplicaFailures:
    def test_engine_failure_falls_back(self):
        batch, requests = make_batch(sizes=(2,))
        replica = Replica(
            index=0, engine=FakeEngine(fail_times=1), fallback=logits_of
        )
        replica.serve(batch)
        np.testing.assert_array_equal(
            requests[0].future.result(0), logits_of(requests[0].images)
        )
        assert replica.stats.engine_failures == 1
        assert replica.stats.fallback_batches == 1
        assert not replica.stats.degraded  # one failure is not condemnation

    def test_engine_failure_without_fallback_fails_batch(self):
        batch, requests = make_batch(sizes=(2,))
        replica = Replica(index=0, engine=FakeEngine(fail_times=1))
        replica.serve(batch)
        with pytest.raises(RuntimeError, match="engine exploded"):
            requests[0].future.result(0)

    def test_repeated_failures_trip_degraded_mode(self):
        engine = FakeEngine(fail_times=Replica.MAX_CONSECUTIVE_FAILURES)
        replica = Replica(index=0, engine=engine, fallback=logits_of)
        for _ in range(Replica.MAX_CONSECUTIVE_FAILURES):
            batch, _ = make_batch(sizes=(1,))
            replica.serve(batch)
        assert replica.stats.degraded
        # Degraded replicas stop touching the engine entirely.
        calls_before = len(engine.calls)
        batch, requests = make_batch(sizes=(1,))
        replica.serve(batch)
        assert len(engine.calls) == calls_before
        assert requests[0].future.done()

    def test_success_resets_consecutive_failures(self):
        engine = FakeEngine(fail_times=1)
        replica = Replica(index=0, engine=engine, fallback=logits_of)
        for _ in range(4):  # fail, ok, ok, ok — never trips
            batch, _ = make_batch(sizes=(1,))
            replica.serve(batch)
        assert not replica.stats.degraded

    def test_failed_probe_trips_degraded(self):
        replica = Replica(
            index=0,
            engine=FakeEngine(),
            fallback=logits_of,
            health_probe=lambda: False,
            probe_every_batches=1,
        )
        batch, requests = make_batch(sizes=(1,))
        replica.serve(batch)
        assert replica.stats.degraded
        assert replica.stats.probes_failed == 1
        assert replica.stats.fallback_batches == 1
        assert requests[0].future.done()

    def test_probe_exception_counts_as_failure(self):
        def bad_probe():
            raise RuntimeError("probe crashed")

        replica = Replica(index=0, engine=FakeEngine(), health_probe=bad_probe)
        assert replica.run_probe() is False
        assert replica.stats.degraded


class TestPoolLifecycle:
    def _pool(self, workers=2, **kwargs):
        queue = AdmissionQueue(max_rows=4096)
        batcher = MicroBatcher(queue, batch_size=8, max_wait_s=0.001)
        pool = ReplicaPool(FakeEngine, batcher, workers=workers, **kwargs)
        return queue, pool

    def test_drain_close_answers_queued_requests(self):
        queue, pool = self._pool()
        requests = [queue.submit(np.full((2, 4), float(i))) for i in range(6)]
        pool.start()
        pool.close(drain=True)
        for request in requests:
            np.testing.assert_array_equal(
                request.future.result(5.0), logits_of(request.images)
            )

    def test_non_drain_close_fails_queued_with_server_closed(self):
        queue, pool = self._pool()
        # Workers never started: everything submitted stays queued.
        requests = [queue.submit(np.full((2, 4), 1.0)) for _ in range(3)]
        pool.close(drain=False)
        for request in requests:
            with pytest.raises(ServerClosed):
                request.future.result(0)

    def test_close_is_idempotent_and_start_after_close_is_safe(self):
        _, pool = self._pool()
        pool.start()
        pool.close()
        pool.close()

    def test_compute_slots_never_exceed_workers(self):
        _, pool = self._pool(workers=2)
        assert 1 <= pool.compute_slots <= 2

    def test_explicit_compute_slots_validated(self):
        with pytest.raises(ValueError):
            self._pool(workers=2, compute_slots=0)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            self._pool(workers=0)

    def test_stats_aggregate_across_replicas(self):
        queue, pool = self._pool(workers=2)
        pool.start()
        requests = [queue.submit(np.full((4, 4), float(i))) for i in range(4)]
        for request in requests:
            request.future.result(5.0)
        pool.close()
        stats = pool.stats()
        assert stats.workers == 2
        assert stats.rows == 16
        assert stats.degraded_replicas == 0
        assert len(stats.replicas) == 2
        assert {r["backend"] for r in stats.replicas} == {"fake"}


class TestCloseRaces:
    """Regression tests: close() overlapping an in-flight probe or a
    racing submit must leave the semaphore and queue state consistent."""

    def test_close_during_in_flight_probe_keeps_semaphore_consistent(self):
        """close() while a worker sits inside its health probe must not
        double-release the compute-slot semaphore: after close, exactly
        ``compute_slots`` slots are acquirable — no more, no fewer — and
        no worker thread dies on a BoundedSemaphore ValueError."""
        clock = FakeClock()
        probe_entered = threading.Event()
        probe_release = threading.Event()

        def slow_probe():
            # FakeClock-driven probe timing: the probe "takes" 5 clock
            # seconds and blocks until the test lets it finish, so
            # close() is guaranteed to overlap it.
            probe_entered.set()
            clock.advance(5.0)
            probe_release.wait(10.0)
            return True

        queue = AdmissionQueue(max_rows=4096, clock=clock)
        batcher = MicroBatcher(queue, batch_size=8, max_wait_s=0.0, clock=clock)
        pool = ReplicaPool(
            FakeEngine, batcher, workers=2, compute_slots=2,
            health_probe=slow_probe, probe_every_batches=1,
        )
        worker_errors = []
        base_hook = threading.excepthook
        threading.excepthook = lambda args: worker_errors.append(args)
        try:
            pool.start()
            request = queue.submit(np.full((2, 4), 1.0))
            assert probe_entered.wait(10.0), "worker never reached its probe"
            closer = threading.Thread(target=pool.close, kwargs={"drain": True})
            closer.start()
            probe_release.set()
            closer.join(30.0)
            assert not closer.is_alive(), "close() hung against the probe"
            request.future.result(5.0)
        finally:
            threading.excepthook = base_hook
            probe_release.set()
        assert worker_errors == [], (
            f"worker thread raised during close: {worker_errors}"
        )
        # Exactly compute_slots slots must be acquirable — an extra
        # release would make a third acquire succeed; a lost slot would
        # make the second fail.
        acquired = [pool._compute.acquire(blocking=False) for _ in range(3)]
        assert acquired == [True, True, False]
        for _ in range(2):
            pool._compute.release()

    def test_non_drain_close_shuts_door_before_failing_queued(self):
        """A submit racing close(drain=False) either lands before the
        close (failed with ServerClosed by the sweep) or is rejected at
        admission — it can never be left pending after close returns."""
        queue, pool = TestPoolLifecycle()._pool()
        stop = threading.Event()
        outcomes = []

        def submitter():
            while not stop.is_set():
                try:
                    outcomes.append(queue.submit(np.full((1, 4), 1.0)))
                except ServerClosed:
                    stop.set()

        thread = threading.Thread(target=submitter)
        thread.start()
        try:
            while not outcomes:  # let at least one submission land
                pass
            pool.close(drain=False)
        finally:
            stop.set()
            thread.join(10.0)
        for request in outcomes:
            assert request.future.done(), (
                "a request admitted during close(drain=False) was stranded"
            )
            with pytest.raises(ServerClosed):
                request.future.result(0)


class TestTraceSerialization:
    def test_planless_engines_trace_one_at_a_time(self):
        """While engine.plan is None, runs hold the shared trace lock."""

        class PlanlessEngine(FakeEngine):
            concurrent = 0
            max_concurrent = 0
            gate = threading.Lock()

            def __init__(self):
                super().__init__()
                self.plan = None

            def run(self, images):
                cls = PlanlessEngine
                with cls.gate:
                    cls.concurrent += 1
                    cls.max_concurrent = max(cls.max_concurrent, cls.concurrent)
                try:
                    return logits_of(images)
                finally:
                    with cls.gate:
                        cls.concurrent -= 1

        queue = AdmissionQueue(max_rows=4096)
        batcher = MicroBatcher(queue, batch_size=4, max_wait_s=0.0)
        pool = ReplicaPool(
            PlanlessEngine, batcher, workers=4, compute_slots=4
        )
        pool.start()
        requests = [queue.submit(np.full((4, 4), float(i))) for i in range(12)]
        for request in requests:
            request.future.result(10.0)
        pool.close()
        assert PlanlessEngine.max_concurrent == 1
