"""Tests of the deterministic closed-loop load generator (repro.serve.loadgen)."""

import numpy as np
import pytest

from repro.serve import LoadGenConfig, ModelServer, ServeConfig, run_load
from repro.serve.loadgen import plan_requests
from repro.serve.queue import DeadlineExceeded, ServerOverloaded


class TestPlanRequests:
    def test_schedule_is_deterministic(self):
        config = LoadGenConfig(clients=3, requests_per_client=5, seed=42)
        assert plan_requests(config, 64) == plan_requests(config, 64)

    def test_schedule_depends_on_seed(self):
        base = LoadGenConfig(clients=2, requests_per_client=8, seed=0)
        other = LoadGenConfig(clients=2, requests_per_client=8, seed=1)
        assert plan_requests(base, 64) != plan_requests(other, 64)

    def test_slices_stay_inside_the_pool(self):
        config = LoadGenConfig(
            clients=4, requests_per_client=16, min_rows=1, max_rows=32, seed=3
        )
        pool = 40
        for plan in plan_requests(config, pool):
            for offset, rows in plan:
                assert 1 <= rows <= 32
                assert 0 <= offset and offset + rows <= pool

    def test_rows_clamped_to_small_pools(self):
        config = LoadGenConfig(
            clients=1, requests_per_client=8, min_rows=4, max_rows=16, seed=0
        )
        for offset, rows in plan_requests(config, 5)[0]:
            assert rows <= 5

    def test_config_validated(self):
        with pytest.raises(ValueError):
            LoadGenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadGenConfig(min_rows=8, max_rows=4)
        with pytest.raises(ValueError):
            LoadGenConfig(requests_per_client=0)


class FakeServer:
    """Counts submissions; scriptable to shed load."""

    def __init__(self, reject_every=0, expire_every=0):
        self.reject_every = reject_every
        self.expire_every = expire_every
        self.calls = 0

    def submit(self, images, deadline_ms=None, timeout=None):
        self.calls += 1
        if self.reject_every and self.calls % self.reject_every == 0:
            raise ServerOverloaded("shed")
        if self.expire_every and self.calls % self.expire_every == 0:
            raise DeadlineExceeded("late")
        return np.zeros((len(images), 10))


class TestRunLoad:
    def test_counts_and_rows_add_up(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=2, requests_per_client=6, max_rows=8, seed=0)
        report = run_load(FakeServer(), images, config)
        assert report.requests_sent == 12
        assert report.requests_ok == 12
        assert report.requests_rejected == 0
        expected_rows = sum(
            rows for plan in plan_requests(config, 32) for _, rows in plan
        )
        assert report.rows_served == expected_rows
        assert len(report.latencies_s) == 12
        assert report.throughput_rows_per_s > 0

    def test_shed_load_is_counted_not_raised(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=9, seed=0)
        report = run_load(FakeServer(reject_every=3), images, config)
        assert report.requests_rejected == 3
        assert report.requests_ok == 6
        assert report.requests_failed == 0

    def test_expired_deadlines_counted_separately(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=4, seed=0)
        report = run_load(FakeServer(expire_every=2), images, config)
        assert report.requests_deadline_expired == 2
        assert report.requests_ok == 2

    def test_report_dict_has_headline_metrics(self):
        images = np.zeros((16, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=2, seed=0)
        payload = run_load(FakeServer(), images, config).to_dict()
        for key in ("throughput_rows_per_s", "latency_p50_ms", "latency_p99_ms",
                    "requests_ok", "rows_served", "wall_s"):
            assert key in payload

    def test_against_a_real_server(self):
        class Engine:
            plan = object()
            active_backend = "fake"

            def run(self, images):
                flat = np.asarray(images).reshape(len(images), -1)
                return np.stack([flat[:, 0], flat[:, 0] + 1.0], axis=1)

        images = np.arange(64, dtype=np.float64).reshape(16, 1, 2, 2)
        config = LoadGenConfig(clients=3, requests_per_client=4, max_rows=6, seed=1)
        with ModelServer(
            Engine, config=ServeConfig(workers=2, batch_size=8, max_wait_ms=1.0)
        ) as server:
            report = run_load(server, images, config)
        assert report.requests_failed == 0
        assert report.requests_ok == 12
