"""Tests of the deterministic closed-loop load generator (repro.serve.loadgen)."""

import numpy as np
import pytest

from repro.serve import LoadGenConfig, ModelServer, ServeConfig, run_load
from repro.serve.loadgen import (
    StreamLoadConfig,
    plan_requests,
    plan_streams,
    request_substream_key,
    run_stream_load,
    stream_substream_key,
)
from repro.serve.queue import DeadlineExceeded, ServerOverloaded
from repro.snc.seeding import substream


class TestPlanRequests:
    def test_schedule_is_deterministic(self):
        config = LoadGenConfig(clients=3, requests_per_client=5, seed=42)
        assert plan_requests(config, 64) == plan_requests(config, 64)

    def test_schedule_depends_on_seed(self):
        base = LoadGenConfig(clients=2, requests_per_client=8, seed=0)
        other = LoadGenConfig(clients=2, requests_per_client=8, seed=1)
        assert plan_requests(base, 64) != plan_requests(other, 64)

    def test_slices_stay_inside_the_pool(self):
        config = LoadGenConfig(
            clients=4, requests_per_client=16, min_rows=1, max_rows=32, seed=3
        )
        pool = 40
        for plan in plan_requests(config, pool):
            for offset, rows in plan:
                assert 1 <= rows <= 32
                assert 0 <= offset and offset + rows <= pool

    def test_rows_clamped_to_small_pools(self):
        config = LoadGenConfig(
            clients=1, requests_per_client=8, min_rows=4, max_rows=16, seed=0
        )
        for offset, rows in plan_requests(config, 5)[0]:
            assert rows <= 5

    def test_config_validated(self):
        with pytest.raises(ValueError):
            LoadGenConfig(clients=0)
        with pytest.raises(ValueError):
            LoadGenConfig(min_rows=8, max_rows=4)
        with pytest.raises(ValueError):
            LoadGenConfig(requests_per_client=0)


class FakeServer:
    """Counts submissions; scriptable to shed load."""

    def __init__(self, reject_every=0, expire_every=0):
        self.reject_every = reject_every
        self.expire_every = expire_every
        self.calls = 0

    def submit(self, images, deadline_ms=None, timeout=None):
        self.calls += 1
        if self.reject_every and self.calls % self.reject_every == 0:
            raise ServerOverloaded("shed")
        if self.expire_every and self.calls % self.expire_every == 0:
            raise DeadlineExceeded("late")
        return np.zeros((len(images), 10))


class TestRunLoad:
    def test_counts_and_rows_add_up(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=2, requests_per_client=6, max_rows=8, seed=0)
        report = run_load(FakeServer(), images, config)
        assert report.requests_sent == 12
        assert report.requests_ok == 12
        assert report.requests_rejected == 0
        expected_rows = sum(
            rows for plan in plan_requests(config, 32) for _, rows in plan
        )
        assert report.rows_served == expected_rows
        assert len(report.latencies_s) == 12
        assert report.throughput_rows_per_s > 0

    def test_shed_load_is_counted_not_raised(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=9, seed=0)
        report = run_load(FakeServer(reject_every=3), images, config)
        assert report.requests_rejected == 3
        assert report.requests_ok == 6
        assert report.requests_failed == 0

    def test_expired_deadlines_counted_separately(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=4, seed=0)
        report = run_load(FakeServer(expire_every=2), images, config)
        assert report.requests_deadline_expired == 2
        assert report.requests_ok == 2

    def test_report_dict_has_headline_metrics(self):
        images = np.zeros((16, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=2, seed=0)
        payload = run_load(FakeServer(), images, config).to_dict()
        for key in ("throughput_rows_per_s", "latency_p50_ms", "latency_p99_ms",
                    "requests_ok", "rows_served", "wall_s"):
            assert key in payload

    def test_against_a_real_server(self):
        class Engine:
            plan = object()
            active_backend = "fake"

            def run(self, images):
                flat = np.asarray(images).reshape(len(images), -1)
                return np.stack([flat[:, 0], flat[:, 0] + 1.0], axis=1)

        images = np.arange(64, dtype=np.float64).reshape(16, 1, 2, 2)
        config = LoadGenConfig(clients=3, requests_per_client=4, max_rows=6, seed=1)
        with ModelServer(
            Engine, config=ServeConfig(workers=2, batch_size=8, max_wait_ms=1.0)
        ) as server:
            report = run_load(server, images, config)
        assert report.requests_failed == 0
        assert report.requests_ok == 12


class TestRequestProvenance:
    """Every scheduled request must be reproducible in isolation from
    the substream key recorded in the report."""

    def test_request_log_covers_the_whole_schedule(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=2, requests_per_client=3, seed=7)
        report = run_load(FakeServer(), images, config)
        assert len(report.request_log) == 6
        schedule = plan_requests(config, 32)
        for entry in report.request_log:
            assert entry["offset"], entry["rows"] == \
                schedule[entry["client"]][entry["index"]]

    def test_recorded_key_rebuilds_the_request_in_isolation(self):
        images = np.zeros((32, 2, 4, 4))
        config = LoadGenConfig(clients=2, requests_per_client=3, seed=7,
                               min_rows=1, max_rows=8)
        report = run_load(FakeServer(), images, config)
        entry = report.request_log[4]
        key = entry["substream"]
        assert key == request_substream_key(config, entry["client"], entry["index"])
        rng = substream(key["seed"], key["token"], tuple(key["coordinates"]))
        rows = min(int(rng.integers(config.min_rows, config.max_rows + 1)), 32)
        offset = int(rng.integers(0, 32 - rows + 1))
        assert (offset, rows) == (entry["offset"], entry["rows"])

    def test_request_log_survives_to_dict(self):
        images = np.zeros((8, 2, 4, 4))
        config = LoadGenConfig(clients=1, requests_per_client=2, seed=0)
        payload = run_load(FakeServer(), images, config).to_dict()
        assert len(payload["request_log"]) == 2
        assert payload["request_log"][0]["substream"]["token"] == "serve.loadgen"


class FakeStreaming:
    """Stands in for StreamingServer.serve_stream."""

    def __init__(self):
        self.served = []

    def serve_stream(self, stream, timeout=None):
        from repro.snc.temporal import TemporalResult

        self.served.append(stream)
        return TemporalResult(
            per_window_logits=np.zeros((7, 10)),
            prediction=stream.label,
            label=stream.label,
            decision_window=6,
            total_windows=7,
        )


class TestStreamLoad:
    def test_planned_streams_are_deterministic(self):
        config = StreamLoadConfig(clients=2, streams_per_client=2, seed=5,
                                  duration_us=40_000)
        first = plan_streams(config)
        second = plan_streams(config)
        for plan_a, plan_b in zip(first, second):
            for a, b in zip(plan_a, plan_b):
                assert a.label == b.label
                np.testing.assert_array_equal(a.t, b.t)
                np.testing.assert_array_equal(a.x, b.x)

    def test_stream_log_records_reproducible_keys(self):
        config = StreamLoadConfig(clients=2, streams_per_client=2, seed=5,
                                  duration_us=40_000)
        report = run_stream_load(FakeStreaming(), config)
        assert len(report.stream_log) == 4
        entry = report.stream_log[3]
        assert entry["substream"] == stream_substream_key(
            config, entry["client"], entry["index"])
        # Rebuild that one stream from the key alone.
        from repro.datasets.event_stream import NUM_CLASSES, generate_event_stream

        key = entry["substream"]
        rng = substream(key["seed"], key["token"], tuple(key["coordinates"]))
        label = int(rng.integers(0, NUM_CLASSES))
        rebuilt = generate_event_stream(label, rng, duration_us=config.duration_us)
        assert rebuilt.label == entry["label"]
        assert len(rebuilt.t) == entry["events"]

    def test_report_counts_and_dict(self):
        config = StreamLoadConfig(clients=2, streams_per_client=3, seed=1,
                                  duration_us=40_000)
        report = run_stream_load(FakeStreaming(), config)
        assert report.streams_sent == 6
        assert report.streams_ok == 6
        assert report.streams_failed == 0
        assert report.windows_served == 42
        assert report.predictions_correct == 6  # fake predicts the label
        payload = report.to_dict()
        for key in ("windows_per_second", "session_p50_ms", "session_p99_ms",
                    "streams_ok", "stream_log"):
            assert key in payload

    def test_failures_counted_not_raised(self):
        class Failing:
            def serve_stream(self, stream, timeout=None):
                raise RuntimeError("boom")

        config = StreamLoadConfig(clients=1, streams_per_client=2, seed=0,
                                  duration_us=40_000)
        report = run_stream_load(Failing(), config)
        assert report.streams_failed == 2
        assert report.streams_ok == 0

    def test_config_validated(self):
        with pytest.raises(ValueError):
            StreamLoadConfig(clients=0)
        with pytest.raises(ValueError):
            StreamLoadConfig(streams_per_client=0)
        with pytest.raises(ValueError):
            StreamLoadConfig(duration_us=0)
