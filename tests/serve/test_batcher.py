"""Tests of dynamic micro-batching and the scatter map (repro.serve.batcher).

Includes the PR's property test: whatever the arrival order and request
sizes, scatter/gather returns each caller exactly the logits of its own
rows — batching must never be observable in the results.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve.batcher import MicroBatch, MicroBatcher
from repro.serve.queue import AdmissionQueue


def logits_of(images):
    """A deterministic per-row 'model': rows in → recognizable rows out."""
    flat = np.asarray(images).reshape(len(images), -1)
    return np.stack([flat[:, 0] * 2.0 + 1.0, flat[:, 0] - 3.0], axis=1)


def tagged(rows, tag):
    """A (rows, 4) batch whose rows all carry a distinguishing value."""
    return np.full((rows, 4), float(tag))


class TestCoalescing:
    def test_dispatch_at_batch_size(self):
        queue = AdmissionQueue(max_rows=256)
        batcher = MicroBatcher(queue, batch_size=8, max_wait_s=60.0)
        for tag in range(4):
            queue.submit(tagged(4, tag))
        batch = batcher.next_batch()
        # Full after two 4-row requests: never waits out a 60s budget.
        assert [r.rows for r in batch.requests] == [4, 4]
        assert batch.rows == 8

    def test_oversized_first_request_dispatches_alone(self):
        queue = AdmissionQueue(max_rows=256)
        batcher = MicroBatcher(queue, batch_size=8, max_wait_s=60.0)
        queue.submit(tagged(12, 1))
        queue.submit(tagged(1, 2))
        batch = batcher.next_batch()
        assert [r.rows for r in batch.requests] == [12]

    def test_zero_wait_dispatches_whatever_is_queued(self):
        queue = AdmissionQueue(max_rows=256)
        batcher = MicroBatcher(queue, batch_size=64, max_wait_s=0.0)
        queue.submit(tagged(2, 1))
        queue.submit(tagged(3, 2))
        batch = batcher.next_batch()
        assert batch.rows == 5  # both queued requests, no waiting for more

    def test_returns_none_once_closed_and_drained(self):
        queue = AdmissionQueue(max_rows=256)
        batcher = MicroBatcher(queue, batch_size=8, max_wait_s=0.0)
        queue.submit(tagged(2, 1))
        queue.close()
        assert batcher.next_batch() is not None
        assert batcher.next_batch(poll_s=0.01) is None

    def test_batch_images_concatenate_in_request_order(self):
        queue = AdmissionQueue(max_rows=256)
        batcher = MicroBatcher(queue, batch_size=4, max_wait_s=60.0)
        queue.submit(tagged(2, 7))
        queue.submit(tagged(2, 9))
        batch = batcher.next_batch()
        np.testing.assert_array_equal(batch.images[:2], tagged(2, 7))
        np.testing.assert_array_equal(batch.images[2:], tagged(2, 9))


class TestScatter:
    def _batch_of(self, sizes):
        queue = AdmissionQueue(max_rows=4096)
        requests = [queue.submit(tagged(rows, tag)) for tag, rows in enumerate(sizes)]
        batcher = MicroBatcher(queue, batch_size=sum(sizes), max_wait_s=60.0)
        return batcher.next_batch(), requests

    def test_each_future_gets_its_own_rows(self):
        batch, requests = self._batch_of([2, 3, 1])
        batch.scatter(logits_of(batch.images))
        for request in requests:
            np.testing.assert_array_equal(
                request.future.result(0), logits_of(request.images)
            )

    def test_scattered_rows_are_owned_copies(self):
        batch, requests = self._batch_of([2, 2])
        batch.scatter(logits_of(batch.images))
        first = requests[0].future.result(0)
        expected_second = np.array(requests[1].future.result(0))
        first[:] = -1e9  # a hostile caller scribbling on its logits
        np.testing.assert_array_equal(requests[1].future.result(0), expected_second)

    def test_row_count_mismatch_fails_every_request(self):
        batch, requests = self._batch_of([2, 3])
        batch.scatter(np.zeros((4, 2)))  # engine returned too few rows
        for request in requests:
            with pytest.raises(RuntimeError):
                request.future.result(0)

    def test_fail_completes_all_with_the_error(self):
        batch, requests = self._batch_of([1, 1])
        batch.fail(RuntimeError("engine died"))
        for request in requests:
            with pytest.raises(RuntimeError, match="engine died"):
                request.future.result(0)

    def test_micro_batch_rows_property(self):
        batch = MicroBatch(requests=[], images=np.zeros((5, 2)), formed_at=0.0)
        assert batch.rows == 5


@st.composite
def arrival_case(draw):
    sizes = draw(st.lists(st.integers(1, 9), min_size=1, max_size=12))
    batch_size = draw(st.integers(1, 24))
    order = draw(st.permutations(list(range(len(sizes)))))
    return sizes, batch_size, order


class TestScatterGatherProperty:
    @given(arrival_case())
    # The autouse leak guard wraps all examples at once — that's the
    # granularity we want, so suppress the per-example-reset check.
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_logits_preserved_under_random_arrival_orders(self, case):
        """Any request sizes, any arrival order, any batch size: every
        caller's future holds exactly the model output of its own rows."""
        sizes, batch_size, order = case
        queue = AdmissionQueue(max_rows=4096)
        requests = {}
        for tag in order:  # arrival order is the shuffled permutation
            requests[tag] = queue.submit(tagged(sizes[tag], tag))
        queue.close()  # drained-shut queue → deterministic batch walk
        batcher = MicroBatcher(queue, batch_size=batch_size, max_wait_s=0.0)
        while True:
            batch = batcher.next_batch(poll_s=0.0)
            if batch is None:
                break
            batch.scatter(logits_of(batch.images))
        for tag, request in requests.items():
            np.testing.assert_array_equal(
                request.future.result(0), logits_of(tagged(sizes[tag], tag))
            )
