"""Tests of the bounded admission queue and its futures (repro.serve.queue)."""

import threading

import numpy as np
import pytest

from repro.serve.queue import (
    AdmissionQueue,
    DeadlineExceeded,
    ServeFuture,
    ServerClosed,
    ServerOverloaded,
)


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def batch(rows, cols=3, fill=1.0):
    return np.full((rows, cols), fill)


class TestServeFuture:
    def test_result_roundtrip(self):
        future = ServeFuture()
        assert not future.done()
        future.set_result(np.arange(3.0))
        assert future.done()
        np.testing.assert_array_equal(future.result(0), np.arange(3.0))

    def test_exception_raised_from_result(self):
        future = ServeFuture()
        future.set_exception(DeadlineExceeded("too late"))
        with pytest.raises(DeadlineExceeded):
            future.result(0)

    def test_first_completion_wins(self):
        future = ServeFuture()
        future.set_result(np.zeros(2))
        future.set_exception(RuntimeError("loser"))
        np.testing.assert_array_equal(future.result(0), np.zeros(2))

    def test_result_times_out_while_pending(self):
        with pytest.raises(TimeoutError):
            ServeFuture().result(timeout=0.01)

    def test_done_callback_fires_on_completion(self):
        future = ServeFuture()
        seen = []
        future.add_done_callback(seen.append)
        assert seen == []
        future.set_result(np.zeros(1))
        assert seen == [future]

    def test_done_callback_fires_immediately_when_already_done(self):
        future = ServeFuture()
        future.set_result(np.zeros(1))
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]


class TestAdmissionBound:
    def test_submit_past_bound_raises_server_overloaded(self):
        queue = AdmissionQueue(max_rows=10)
        queue.submit(batch(6))
        with pytest.raises(ServerOverloaded):
            queue.submit(batch(5))
        # The rejected request took no space: 4 more rows still fit.
        queue.submit(batch(4))
        assert queue.depth() == {"requests": 2, "rows": 10}

    def test_single_oversized_request_rejected(self):
        queue = AdmissionQueue(max_rows=4)
        with pytest.raises(ServerOverloaded):
            queue.submit(batch(5))

    def test_pop_frees_budget(self):
        queue = AdmissionQueue(max_rows=4)
        queue.submit(batch(4))
        assert queue.pop_nowait() is not None
        queue.submit(batch(4))  # fits again

    def test_bound_counts_rows_not_requests(self):
        queue = AdmissionQueue(max_rows=8)
        for _ in range(8):
            queue.submit(batch(1))
        with pytest.raises(ServerOverloaded):
            queue.submit(batch(1))

    def test_invalid_submissions_rejected(self):
        queue = AdmissionQueue(max_rows=8)
        with pytest.raises(ValueError):
            queue.submit(np.zeros(3))  # not a batch
        with pytest.raises(ValueError):
            queue.submit(np.zeros((0, 3)))  # empty


class TestDeadlines:
    def test_expired_request_completes_with_deadline_exceeded(self):
        clock = FakeClock()
        queue = AdmissionQueue(max_rows=16, clock=clock)
        doomed = queue.submit(batch(2), deadline_s=0.5)
        fine = queue.submit(batch(2))
        clock.advance(1.0)
        popped = queue.pop_nowait()
        assert popped is fine
        assert doomed.future.done()
        with pytest.raises(DeadlineExceeded):
            doomed.future.result(0)

    def test_unexpired_deadline_is_served(self):
        clock = FakeClock()
        queue = AdmissionQueue(max_rows=16, clock=clock)
        request = queue.submit(batch(2), deadline_s=5.0)
        clock.advance(1.0)
        assert queue.pop_nowait() is request

    def test_expiry_frees_row_budget(self):
        clock = FakeClock()
        queue = AdmissionQueue(max_rows=4, clock=clock)
        queue.submit(batch(4), deadline_s=0.1)
        clock.advance(1.0)
        assert queue.pop_nowait() is None  # expired on the way past
        queue.submit(batch(4))  # budget released


class TestLifecycle:
    def test_submit_after_close_raises_server_closed(self):
        queue = AdmissionQueue(max_rows=8)
        queue.close()
        with pytest.raises(ServerClosed):
            queue.submit(batch(1))

    def test_close_leaves_queued_requests_drainable(self):
        queue = AdmissionQueue(max_rows=8)
        queue.submit(batch(3))
        queue.close()
        assert queue.closed
        assert queue.pop_nowait() is not None
        assert queue.pop_nowait() is None

    def test_blocking_pop_wakes_on_close(self):
        queue = AdmissionQueue(max_rows=8)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(queue.pop(timeout=30.0))
        )
        thread.start()
        queue.close()
        thread.join(5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_blocking_pop_wakes_on_submit(self):
        queue = AdmissionQueue(max_rows=8)
        results = []
        thread = threading.Thread(target=lambda: results.append(queue.pop(30.0)))
        thread.start()
        request = queue.submit(batch(1))
        thread.join(5.0)
        assert not thread.is_alive()
        assert results == [request]

    def test_pop_timeout_returns_none(self):
        queue = AdmissionQueue(max_rows=8)
        assert queue.pop(timeout=0.01) is None

    def test_fifo_order(self):
        queue = AdmissionQueue(max_rows=64)
        ids = [queue.submit(batch(1)).request_id for _ in range(5)]
        popped = [queue.pop_nowait().request_id for _ in range(5)]
        assert popped == ids
