"""Serving-test fixtures: every test here gets the resource-leak guard.

Serving tests spawn worker threads and processes and lease shared-memory
segments; a test that forgets to close its server poisons every test
after it.  The autouse guard fails the *offending* test instead.
"""

import pytest

from tests.conftest import leak_guard


@pytest.fixture(autouse=True)
def no_leaked_serving_resources():
    """Fail the test if it leaks shm segments, threads, or processes."""
    yield from leak_guard()
