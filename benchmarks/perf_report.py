"""Recording helpers for the machine-readable performance report.

Benchmarks append their numbers to ``BENCH_PR2.json`` at the repository
root via :func:`record`.  The file is merged, not overwritten, so the
micro-kernel timings and the engine speedup study can be produced by
separate pytest invocations (or a partial re-run) without losing each
other's sections.
"""

from __future__ import annotations

import json
import os
from typing import Optional

REPORT_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "BENCH_PR2.json")
)


def record(section: str, name: str, payload: dict) -> str:
    """Merge ``payload`` into ``BENCH_PR2.json`` under ``section/name``."""
    data = {}
    if os.path.exists(REPORT_PATH):
        try:
            with open(REPORT_PATH) as handle:
                data = json.load(handle)
        except ValueError:
            data = {}
    data.setdefault(section, {})[name] = payload
    with open(REPORT_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return REPORT_PATH


def record_benchmark(benchmark, section: str, name: str,
                     extra: Optional[dict] = None) -> None:
    """Record a pytest-benchmark fixture's stats.

    No-op under ``--benchmark-disable`` (the fixture then runs the body
    once for correctness but collects no statistics).
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    payload = {
        "mean_ms": stats.mean * 1e3,
        "min_ms": stats.min * 1e3,
        "stddev_ms": stats.stddev * 1e3,
        "rounds": stats.rounds,
    }
    if extra:
        payload.update(extra)
    record(section, name, payload)
