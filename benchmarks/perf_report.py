"""Recording and reporting helpers for the performance reports.

Benchmarks append their numbers to a ``BENCH_*.json`` file at the
repository root via :func:`record` — ``BENCH_PR2.json`` (engine/kernels)
by default, or any other report named via ``report``
(``bench_serving.py`` writes ``BENCH_PR4.json``).  Files are merged, not
overwritten, so separate pytest invocations (or a partial re-run) never
lose each other's sections.  Writes go through
:func:`repro.nn.serialization.atomic_write_text` (temp file + rename), so
an interrupted bench can never leave a truncated JSON behind.

Run as a module to print per-step deltas between two recorded reports::

    python -m benchmarks.perf_report                 # PR7 vs PR2
    python -m benchmarks.perf_report A.json B.json   # A vs B
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, Optional

from repro.nn.serialization import atomic_write_text

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_REPORT = "BENCH_PR2.json"
REPORT_PATH = os.path.join(_ROOT, DEFAULT_REPORT)


def report_path(report: str = DEFAULT_REPORT) -> str:
    """Absolute path of a repo-root benchmark report file."""
    return os.path.join(_ROOT, report)


def record(section: str, name: str, payload: dict,
           report: str = DEFAULT_REPORT) -> str:
    """Merge ``payload`` into ``report`` under ``section/name``."""
    path = report_path(report)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except ValueError:
            data = {}
    data.setdefault(section, {})[name] = payload
    atomic_write_text(path, json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def record_benchmark(benchmark, section: str, name: str,
                     extra: Optional[dict] = None) -> None:
    """Record a pytest-benchmark fixture's stats.

    No-op under ``--benchmark-disable`` (the fixture then runs the body
    once for correctness but collects no statistics).
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    payload = {
        "mean_ms": stats.mean * 1e3,
        "min_ms": stats.min * 1e3,
        "stddev_ms": stats.stddev * 1e3,
        "rounds": stats.rounds,
    }
    if extra:
        payload.update(extra)
    record(section, name, payload)


# ---------------------------------------------------------------------------
# Step-delta reporting (python -m benchmarks.perf_report)
# ---------------------------------------------------------------------------

def step_tables(data: dict) -> Dict[str, Dict[str, float]]:
    """Extract every per-step median table from a loaded report.

    Handles both recorded shapes: PR2's flat ``engine_steps`` section
    (``{step: {median_ms}}``) and PR7's workload-keyed sections
    (``{workload: {step: {median_ms}}}``).  Returns
    ``{"section[/workload]": {step: median_ms}}``.
    """
    tables: Dict[str, Dict[str, float]] = {}
    for section, body in data.items():
        if not section.startswith("engine_steps") or not isinstance(body, dict):
            continue
        entries = list(body.items())
        if entries and isinstance(entries[0][1], dict) and "median_ms" in entries[0][1]:
            tables[section] = {k: v["median_ms"] for k, v in entries}
            continue
        for workload, steps in entries:
            if isinstance(steps, dict):
                tables[f"{section}/{workload}"] = {
                    k: v["median_ms"] for k, v in steps.items()
                    if isinstance(v, dict) and "median_ms" in v
                }
    return tables


def format_step_deltas(current: dict, previous: dict,
                       current_name: str = "current",
                       previous_name: str = "previous") -> str:
    """Human-readable per-step medians of ``current``, with deltas against
    the best-matching table of ``previous`` (same step names win)."""
    cur_tables = step_tables(current)
    prev_tables = step_tables(previous)
    lines = []
    for label, steps in sorted(cur_tables.items()):
        best, overlap = None, 0
        for plabel, psteps in prev_tables.items():
            common = len(steps.keys() & psteps.keys())
            if common > overlap:
                best, overlap = plabel, common
        lines.append(f"{label} ({current_name})"
                     + (f" vs {best} ({previous_name})" if best else ""))
        prev_steps = prev_tables.get(best, {})
        for step in sorted(steps):
            ms = steps[step]
            if step in prev_steps and prev_steps[step] > 0:
                delta = (ms / prev_steps[step] - 1.0) * 100.0
                lines.append(f"  {step:24s} {ms:8.3f} ms  "
                             f"({delta:+6.1f}% vs {prev_steps[step]:.3f})")
            else:
                lines.append(f"  {step:24s} {ms:8.3f} ms  (new)")
        total = sum(steps.values())
        prev_total = sum(prev_steps.get(s, 0.0) for s in steps if s in prev_steps)
        if prev_total > 0:
            lines.append(f"  {'TOTAL':24s} {total:8.3f} ms  "
                         f"({(total / prev_total - 1.0) * 100.0:+6.1f}%"
                         f" vs {prev_total:.3f})")
        else:
            lines.append(f"  {'TOTAL':24s} {total:8.3f} ms")
    return "\n".join(lines) if lines else "no engine_steps sections recorded"


def main(argv: Optional[list] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    current_name = argv[0] if argv else "BENCH_PR7.json"
    previous_name = argv[1] if len(argv) > 1 else DEFAULT_REPORT
    try:
        with open(report_path(current_name)) as handle:
            current = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read {current_name}: {exc}", file=sys.stderr)
        return 1
    try:
        with open(report_path(previous_name)) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        previous = {}
    print(format_step_deltas(current, previous, current_name, previous_name))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
