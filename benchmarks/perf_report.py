"""Recording helpers for the machine-readable performance reports.

Benchmarks append their numbers to a ``BENCH_*.json`` file at the
repository root via :func:`record` — ``BENCH_PR2.json`` (engine/kernels)
by default, or any other report named via ``report``
(``bench_serving.py`` writes ``BENCH_PR4.json``).  Files are merged, not
overwritten, so separate pytest invocations (or a partial re-run) never
lose each other's sections.  Writes go through
:func:`repro.nn.serialization.atomic_write_text` (temp file + rename), so
an interrupted bench can never leave a truncated JSON behind.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.nn.serialization import atomic_write_text

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_REPORT = "BENCH_PR2.json"
REPORT_PATH = os.path.join(_ROOT, DEFAULT_REPORT)


def report_path(report: str = DEFAULT_REPORT) -> str:
    """Absolute path of a repo-root benchmark report file."""
    return os.path.join(_ROOT, report)


def record(section: str, name: str, payload: dict,
           report: str = DEFAULT_REPORT) -> str:
    """Merge ``payload`` into ``report`` under ``section/name``."""
    path = report_path(report)
    data = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except ValueError:
            data = {}
    data.setdefault(section, {})[name] = payload
    atomic_write_text(path, json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def record_benchmark(benchmark, section: str, name: str,
                     extra: Optional[dict] = None) -> None:
    """Record a pytest-benchmark fixture's stats.

    No-op under ``--benchmark-disable`` (the fixture then runs the body
    once for correctness but collects no statistics).
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is None:
        return
    payload = {
        "mean_ms": stats.mean * 1e3,
        "min_ms": stats.min * 1e3,
        "stddev_ms": stats.stddev * 1e3,
        "rounds": stats.rounds,
    }
    if extra:
        payload.update(extra)
    record(section, name, payload)
