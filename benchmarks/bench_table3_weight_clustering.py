"""Table 3 — weight quantization with vs without Weight Clustering.

Weights quantized to 5/4/3-bit fixed point; signals stay fp32.  The "w/o"
arm rounds onto the literal Eq. 6 grid; the "w/" arm solves Eq. 6 with the
Lloyd clustering.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import table3_weight_clustering
from repro.analysis.tables import render_dict_table

PAPER_TABLE3 = {
    "lenet": {5: (98.16, 98.16), 4: (97.86, 98.10), 3: (94.52, 97.79)},
    "alexnet": {5: (83.02, 85.26), 4: (79.19, 83.59), 3: (75.33, 82.92)},
    "resnet": {5: (91.00, 92.80), 4: (77.12, 91.00), 3: (29.00, 88.10)},
}


def test_table3(benchmark):
    outcomes = benchmark.pedantic(
        lambda: table3_weight_clustering(BENCH_SETTINGS), rounds=1, iterations=1
    )
    rows = []
    for outcome in outcomes:
        row = outcome.row()
        paper_without, paper_with = PAPER_TABLE3[outcome.model][outcome.bits]
        row["paper_without"] = paper_without
        row["paper_with"] = paper_with
        rows.append(row)
    text = render_dict_table(
        rows,
        ["model", "bits", "without", "with", "recovered", "drop", "ideal",
         "paper_without", "paper_with"],
        title="Table 3: weight quantization with/without Weight Clustering",
    )
    save_result("table3_weight_clustering", text)

    by_key = {(o.model, o.bits): o for o in outcomes}
    for model in ("lenet", "alexnet", "resnet"):
        # Clustering recovers accuracy at 3 bits (the regime where the
        # fixed grid misfits the weight range hardest).
        assert by_key[(model, 3)].recovered > -2.0, f"{model}: {by_key[(model, 3)]}"
        # At 5 bits the clustered arm is close to ideal — quantization is
        # benign once the grid fits the range.
        assert by_key[(model, 5)].drop < 15.0
        # The clustered arm degrades (weakly) monotonically with fewer
        # bits.  (The naive fixed grid is *not* monotone — its saturation
        # point never moves, so finer steps can interact nonmonotonically
        # with clipped outliers; we observed 86.8% at 5 bits vs 94.0% at
        # 3 bits on LeNet, which is itself a finding worth keeping.)
        w_clustered = [by_key[(model, b)].accuracy_with for b in (5, 4, 3)]
        assert w_clustered[0] >= w_clustered[2] - 3.0
    # Averaged over models, clustering must win at every bit width.
    for bits in (5, 4, 3):
        mean_recovered = sum(
            by_key[(m, bits)].recovered for m in ("lenet", "alexnet", "resnet")
        ) / 3.0
        assert mean_recovered > -1.0, f"clustering loses on average at {bits} bits"
