#!/usr/bin/env python3
"""Telemetry overhead: serve throughput with observability off vs on.

The observability layer's performance contract (PR 5 acceptance bar) is
that full instrumentation — engine spans, per-step histograms, queue
gauges, replica spans, latency histograms — costs at most **5%** of
serve throughput.  This script measures it the way the claim is stated:
the same deterministic closed-loop load (``repro.serve.loadgen``) is
offered to two otherwise identical :class:`ModelServer` stacks, one with
``telemetry=None`` and one with a live :class:`~repro.obs.Telemetry`.

Trials are *interleaved* (off, on, off, on, …) so drift on a shared
runner — thermal throttling, noisy neighbours — hits both arms equally,
and the comparison uses medians.  Results land in ``BENCH_PR5.json``
under ``observability/overhead``.

Usage::

    python benchmarks/bench_obs_overhead.py          # full (5 trials/arm)
    python benchmarks/bench_obs_overhead.py --quick  # CI smoke (2 trials/arm)

Exits nonzero when the measured overhead exceeds the bar.
"""

import argparse
import statistics
import sys
from pathlib import Path

import numpy as np

# Runnable directly (`python benchmarks/bench_obs_overhead.py`): the repo
# root is not on sys.path then, only the script's own directory.
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.perf_report import record  # noqa: E402
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_model_server,
)
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.obs import Telemetry
from repro.serve import LoadGenConfig, ServeConfig, run_load

REPORT = "BENCH_PR5.json"
#: Acceptance bar: telemetry-on throughput within 5% of telemetry-off.
MAX_OVERHEAD_FRACTION = 0.05
#: Slack added on --quick runs: two trials per arm cannot average out
#: scheduler noise, so CI only guards against egregious regressions.
QUICK_EXTRA_SLACK = 0.10

SERVE = ServeConfig(workers=4, batch_size=128, max_wait_ms=2.0)
LOAD = LoadGenConfig(
    clients=8, requests_per_client=20, min_rows=32, max_rows=128, seed=0,
)


def _deploy(pool_size=256):
    images = generate_mnist_like(pool_size, seed=0).images
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return deployed, images


def _one_trial(deployed, images, instrumented: bool) -> float:
    """Rows/s for one full load run against a fresh server stack."""
    telemetry = Telemetry() if instrumented else None
    server = make_model_server(
        deployed, SERVE, warmup_images=images[:2], telemetry=telemetry,
    )
    try:
        report = run_load(server, images, LOAD)
    finally:
        server.close()
    if report.requests_failed:
        raise RuntimeError(f"{report.requests_failed} requests failed")
    return report.throughput_rows_per_s


def measure(trials: int) -> dict:
    """Interleaved off/on trials; medians + overhead fraction."""
    deployed, images = _deploy()
    _one_trial(deployed, images, instrumented=False)  # warm caches/pools
    off, on = [], []
    for index in range(trials):
        # Alternate which arm runs first so monotone drift (thermal
        # throttling, background load ramping) cancels across pairs.
        order = (False, True) if index % 2 == 0 else (True, False)
        for instrumented in order:
            rate = _one_trial(deployed, images, instrumented)
            (on if instrumented else off).append(rate)
        print(f"trial {index + 1}/{trials}: "
              f"off={off[-1]:.0f} rows/s  on={on[-1]:.0f} rows/s")
    off_median = statistics.median(off)
    on_median = statistics.median(on)
    overhead = 1.0 - on_median / off_median
    return {
        "trials_per_arm": trials,
        "serve_workers": SERVE.workers,
        "serve_batch_size": SERVE.batch_size,
        "load_clients": LOAD.clients,
        "load_requests_per_client": LOAD.requests_per_client,
        "telemetry_off_rows_per_s": off_median,
        "telemetry_on_rows_per_s": on_median,
        "telemetry_off_trials": off,
        "telemetry_on_trials": on,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
    }


def main(argv=None) -> int:
    """Run the interleaved comparison, record it, enforce the bar."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="2 trials per arm with extra slack (CI smoke)")
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per arm (default: 5, or 2 with --quick)")
    args = parser.parse_args(argv)
    trials = args.trials or (2 if args.quick else 5)

    payload = measure(trials)
    bar = MAX_OVERHEAD_FRACTION + (QUICK_EXTRA_SLACK if args.quick else 0.0)
    payload["quick"] = bool(args.quick)
    payload["enforced_bar"] = bar
    payload["passed"] = payload["overhead_fraction"] <= bar
    path = record("observability", "overhead", payload, report=REPORT)

    print(f"\ntelemetry off: {payload['telemetry_off_rows_per_s']:.0f} rows/s")
    print(f"telemetry on:  {payload['telemetry_on_rows_per_s']:.0f} rows/s")
    print(f"overhead:      {payload['overhead_fraction']:+.2%} "
          f"(bar {bar:.0%})")
    print(f"recorded to {path}")
    if not payload["passed"]:
        print("FAIL: telemetry overhead exceeds the bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
