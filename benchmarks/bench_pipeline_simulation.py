"""Cycle-level pipeline simulation: validate Table 5 speeds, study mixed M.

Two results:
1. the simulated uniform-precision pipeline reproduces the analytic
   (calibrated) Table 5 speeds, and
2. mixed per-layer precisions are bottlenecked by the slowest stage —
   the quantitative case for the paper's *uniform* signal bit width.
"""

from benchmarks.conftest import save_result
from repro.analysis.tables import render_dict_table
from repro.models.specs import lenet_spec, paper_specs
from repro.snc.cost import PAPER_SPEED_PROFILES
from repro.snc.pipeline_sim import mixed_precision_speed_mhz, uniform_pipeline_speed_mhz


def test_simulated_vs_analytic_speed(benchmark):
    def run():
        rows = []
        for spec in paper_specs():
            profile = PAPER_SPEED_PROFILES[spec.name]
            for bits in (8, 4, 3):
                rows.append(
                    {
                        "model": spec.name,
                        "bits": bits,
                        "analytic_mhz": round(profile.speed_mhz(bits), 3),
                        "simulated_mhz": round(
                            uniform_pipeline_speed_mhz(spec, bits, profile), 3
                        ),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["model", "bits", "analytic_mhz", "simulated_mhz"],
        title="Cycle-level simulation vs analytic speed model",
    )
    save_result("pipeline_sim_validation", text)
    for row in rows:
        assert abs(row["simulated_mhz"] - row["analytic_mhz"]) / row["analytic_mhz"] < 0.05


def test_mixed_precision_study(benchmark):
    spec = lenet_spec()

    def run():
        cases = {
            "uniform 8-bit": [8, 8, 8, 8],
            "uniform 4-bit": [4, 4, 4, 4],
            "uniform 3-bit": [3, 3, 3, 3],
            "first layer 8-bit": [8, 3, 3, 3],
            "last layer 8-bit": [3, 3, 3, 8],
            "graded 5/4/4/3": [5, 4, 4, 3],
        }
        return [
            {"configuration": name,
             "speed_mhz": round(mixed_precision_speed_mhz(spec, bits), 3)}
            for name, bits in cases.items()
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["configuration", "speed_mhz"],
        title="Mixed-precision pipeline throughput (LeNet)",
    )
    save_result("pipeline_sim_mixed_precision", text)

    speeds = {r["configuration"]: r["speed_mhz"] for r in rows}
    # One slow stage pins the whole pipeline at its rate.
    assert abs(speeds["first layer 8-bit"] - speeds["uniform 8-bit"]) < 0.05
    assert abs(speeds["last layer 8-bit"] - speeds["uniform 8-bit"]) < 0.05
    # Uniform low precision is the only way to the headline speedup.
    assert speeds["uniform 3-bit"] > 5 * speeds["first layer 8-bit"]
    # A graded profile sits at its worst stage (5-bit here).
    assert speeds["graded 5/4/4/3"] < speeds["uniform 4-bit"]