"""Benchmarks of the event-driven streaming path (``repro.serve.stream``).

Offers deterministic event-stream traffic (procedural DVS-gesture-like
streams, seeded through ``snc/seeding``) to a
:class:`~repro.serve.stream.StreamingServer` over quantized LeNet and
records sustained windows/s plus whole-session p50/p99 latency in
``BENCH_PR9.json``.

Headline assertions (run even under ``--benchmark-disable`` so the CI
smoke job exercises them):

* session-served per-window logits are **bit-exact** against a direct
  :func:`~repro.snc.temporal.replay_frames` of the same stream with the
  canonical window grouping, and
* the simulated SNC pipeline keeps up with the configured stride
  (no QT703 real-time violation at the paper's speed profile).
"""

import numpy as np
import pytest

from benchmarks.perf_report import record
from repro.check import check_temporal
from repro.datasets.event_stream import generate_event_streams
from repro.models import LeNet
from repro.models.specs import lenet_spec
from repro.serve.loadgen import StreamLoadConfig, run_stream_load
from repro.serve.stream import StreamConfig, StreamingServer
from repro.snc.system import SpikingSystemConfig, build_spiking_system
from repro.snc.temporal import (
    TemporalConfig,
    replay_frames,
    stream_timing,
    stream_to_frames,
)

REPORT = "BENCH_PR9.json"
SIGNAL_BITS = 4
TEMPORAL = TemporalConfig(signal_bits=SIGNAL_BITS, batch_windows=4)

LOAD = StreamLoadConfig(clients=4, streams_per_client=6, seed=0)


@pytest.fixture(scope="module")
def streams():
    return generate_event_streams(8, seed=11).streams


@pytest.fixture(scope="module")
def system(streams):
    model = LeNet(width_multiplier=0.5, rng=np.random.default_rng(3))
    config = SpikingSystemConfig(
        signal_bits=SIGNAL_BITS, weight_bits=4, input_bits=SIGNAL_BITS,
        signal_gain="auto",
    )
    return build_spiking_system(
        model, config, stream_to_frames(streams[0], TEMPORAL)
    )


def test_streaming_throughput(system):
    """Sustained windows/s and session latency under concurrent sessions."""
    for workers in (1, 2, 4):
        with StreamingServer.for_system(
            system, StreamConfig(temporal=TEMPORAL), workers=workers
        ) as streaming:
            report = run_stream_load(streaming, LOAD)
            stats = streaming.stats()
        assert report.streams_failed == 0
        assert report.streams_ok == LOAD.clients * LOAD.streams_per_client
        payload = report.to_dict()
        payload.pop("stream_log")  # provenance, not a measurement
        payload["workers"] = workers
        payload["windows_served_stat"] = stats["windows_served"]
        record("streaming", f"sessions_{workers}w", payload, report=REPORT)


def test_sessions_bit_exact_vs_direct_replay(system, streams):
    """The PR-9 determinism bar: sessions ≡ direct engine replay."""
    engine = system.engine()
    with StreamingServer.for_system(
        system, StreamConfig(temporal=TEMPORAL), workers=2
    ) as streaming:
        exact = True
        windows = 0
        for stream in streams:
            result = streaming.serve_stream(stream)
            expected = replay_frames(
                engine, stream_to_frames(stream, TEMPORAL),
                TEMPORAL.batch_windows,
            )
            windows += result.total_windows
            exact = exact and np.array_equal(result.per_window_logits, expected)
    record("streaming", "determinism", {
        "streams": len(streams),
        "windows": windows,
        "batch_windows": TEMPORAL.batch_windows,
        "bit_exact_vs_replay_frames": bool(exact),
    }, report=REPORT)
    assert exact


def test_simulated_pipeline_keeps_up(streams):
    """The SNC pipeline must sustain the stride (QT703 clean) — and the
    simulated hardware windows/s goes in the report for context."""
    timing = stream_timing(lenet_spec(), TEMPORAL, total_windows=64)
    report = check_temporal(
        TEMPORAL.window_us, TEMPORAL.stride_us, TEMPORAL.signal_bits,
        streams=streams, spec=lenet_spec(),
    )
    record("streaming", "simulated_pipeline", {
        "windows_per_second": timing.windows_per_second,
        "first_window_us": timing.first_window_us,
        "sustainable_stride_us": timing.keeps_up_with,
        "stride_us": TEMPORAL.stride_us,
        "qt_errors": len(report.errors),
        "qt_warnings": len(report.warnings),
    }, report=REPORT)
    assert not report.by_rule("QT703"), report.summary()
