"""Figure 3 — the four regularizer forms at bit width 2.

Analytic curves: no training.  Checks each form's defining shape property
and renders an ASCII version of the figure.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.analysis.experiments import fig3_regularizer_forms


def render_curves(curves) -> str:
    o = curves["o"]
    lines = ["Fig 3: regularization forms, M=2 (threshold 2^(M-1) = 2)"]
    lines.append(f"{'o':>8} | {'none':>7} | {'l1':>7} | {'trunc_l1':>8} | {'proposed':>8}")
    for i in range(0, len(o), len(o) // 16):
        lines.append(
            f"{o[i]:8.2f} | {curves['none'][i]:7.3f} | {curves['l1'][i]:7.3f} | "
            f"{curves['truncated_l1'][i]:8.3f} | {curves['proposed'][i]:8.3f}"
        )
    return "\n".join(lines)


def test_fig3_forms(benchmark):
    curves = benchmark.pedantic(fig3_regularizer_forms, rounds=1, iterations=1)
    save_result("fig3_regularizer_forms", render_curves(curves))

    o = curves["o"]
    threshold = 2.0
    inside = np.abs(o) < threshold
    outside = np.abs(o) > threshold + 0.1

    # none: identically zero.
    assert np.all(curves["none"] == 0)
    # l1: the absolute value everywhere.
    np.testing.assert_allclose(curves["l1"], np.abs(o))
    # truncated l1: equals l1 inside, flat at T outside.
    np.testing.assert_allclose(curves["truncated_l1"][inside], np.abs(o)[inside])
    np.testing.assert_allclose(curves["truncated_l1"][outside], threshold)
    # proposed: gentle (slope α) inside, steep (slope 1+α) outside.
    np.testing.assert_allclose(curves["proposed"][inside], 0.1 * np.abs(o)[inside])
    steep = curves["proposed"][outside] - 0.1 * np.abs(o)[outside]
    np.testing.assert_allclose(steep, np.abs(o)[outside] - threshold)
    # The proposed form is the only one both finite-sloped at 0 and
    # unbounded outside — the Fig. 3 visual argument.
    assert curves["proposed"][np.abs(o) < 0.5].max() < 0.06
    assert curves["proposed"][-1] > curves["truncated_l1"][-1]
