"""Benchmarks of the compiled inference engine against the graph executor.

Two layers of measurement:

* pytest-benchmark timings of the three execution paths (autograd graph,
  compiled float32 plan, compiled integer fast path) on a deployed
  quantized LeNet — skipped under ``--benchmark-disable``.
* A plain ``perf_counter`` speedup study that also runs under
  ``--benchmark-disable`` (so CI's perf-smoke job exercises it), asserts
  the integer fast path is genuinely faster than the graph executor with
  bit-exact logits, and records everything in ``BENCH_PR2.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.perf_report import record, record_benchmark
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.engine import EngineConfig, InferenceEngine

BATCH = 128
# Local margin is ~3.2x; the assertion floor leaves headroom for noisy
# shared runners while still catching any real regression of the fast path.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(BATCH + 32, seed=0).images


@pytest.fixture(scope="module")
def deployed(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    net, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return net


@pytest.fixture(scope="module")
def batch(images):
    return images[:BATCH]


def graph_run(deployed, batch):
    with no_grad():
        return deployed(Tensor(batch)).data


def test_graph_executor(benchmark, deployed, batch):
    benchmark(lambda: graph_run(deployed, batch))
    record_benchmark(benchmark, "engine", "graph_executor", {"batch": BATCH})


def test_engine_float32(benchmark, deployed, batch):
    engine = InferenceEngine(deployed, EngineConfig(dtype=np.float32, int_path="off"))
    engine.run(batch)  # trace outside the timed region
    assert engine.active_backend == "float32"
    benchmark(lambda: engine.run(batch))
    record_benchmark(benchmark, "engine", "engine_float32", {"batch": BATCH})


def test_engine_int(benchmark, deployed, batch):
    engine = InferenceEngine(deployed)
    engine.run(batch)
    assert engine.active_backend == "int"
    benchmark(lambda: engine.run(batch))
    record_benchmark(benchmark, "engine", "engine_int", {"batch": BATCH})


def _median_ms(fn, reps=30):
    fn()
    fn()  # warm the buffer pool and BLAS
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)) * 1e3


def test_int_fast_path_speedup_and_exactness(deployed, batch):
    """The headline claim: quantized LeNet batch inference through the
    integer fast path beats the Module graph executor with bit-exact
    logits.  Runs (and records) even under ``--benchmark-disable``."""
    engine = InferenceEngine(deployed)
    out = engine.run(batch)
    assert engine.active_backend == "int"

    ref = graph_run(deployed, batch)
    np.testing.assert_array_equal(out, ref)  # bit-exact, not just argmax

    graph_ms = _median_ms(lambda: graph_run(deployed, batch))
    int_ms = _median_ms(lambda: engine.run(batch))
    f32 = InferenceEngine(deployed, EngineConfig(dtype=np.float32, int_path="off"))
    f32_ms = _median_ms(lambda: f32.run(batch))
    speedup = graph_ms / int_ms

    record("engine", "speedup_study", {
        "batch": BATCH,
        "graph_ms": graph_ms,
        "engine_int_ms": int_ms,
        "engine_float32_ms": f32_ms,
        "int_speedup_vs_graph": speedup,
        "float32_speedup_vs_graph": graph_ms / f32_ms,
        "bit_exact_logits": True,
        "argmax_identical": bool((out.argmax(axis=1) == ref.argmax(axis=1)).all()),
    })
    assert speedup >= MIN_SPEEDUP, (
        f"int fast path only {speedup:.2f}x faster than graph executor"
    )


def test_per_step_breakdown(deployed, batch):
    """Record where the integer plan spends its time, per fused kernel."""
    engine = InferenceEngine(deployed)
    engine.run(batch)
    plan = engine.plan
    inputs = [np.asarray(batch, dtype=np.float64)]
    for step in plan.steps:
        inputs.append(step.run(inputs[-1], plan.pool))
    for step, x in zip(plan.steps, inputs):
        ms = _median_ms(lambda s=step, v=x: s.run(v, plan.pool), reps=15)
        record("engine_steps", f"{step.index:02d}-{step.kind}",
               {"median_ms": ms, "describe": step.describe()})
