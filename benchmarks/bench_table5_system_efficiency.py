"""Table 5 — memristor SNC system speed / energy / area.

Regenerates every row of the paper's Table 5 from the calibrated component
cost model (no training involved) and checks the headline claims:
> "more than 9.8× speedup, 89.1% energy saving, and 30% area saving"
against the 8-bit dynamic fixed point baseline.
"""

from benchmarks.conftest import save_result
from repro.analysis.tables import render_dict_table
from repro.analysis.experiments import table5_system
from repro.snc.cost import PAPER_TABLE5


def generate():
    rows = table5_system()
    for row in rows:
        row["speed_mhz"] = round(row["speed_mhz"], 2)
        row["energy_uj"] = round(row["energy_uj"], 2)
        row["area_mm2"] = round(row["area_mm2"], 2)
        row["speedup"] = round(row["speedup"], 1)
        row["energy_saving"] = round(row["energy_saving"] * 100, 1)
        row["area_saving"] = round(row["area_saving"] * 100, 1)
    return rows


def test_table5(benchmark):
    rows = benchmark.pedantic(generate, rounds=1, iterations=1)
    text = render_dict_table(
        rows,
        [
            "model", "bits", "num_layers",
            "speed_mhz", "paper_speed_mhz", "speedup",
            "energy_uj", "paper_energy_uj", "energy_saving",
            "area_mm2", "paper_area_mm2", "area_saving",
        ],
        title="Table 5: Memristor-based SNC system evaluation (ours vs paper)",
    )
    save_result("table5_system_efficiency", text)

    by_key = {(r["model"], r["bits"]): r for r in rows}
    for model in ("lenet", "alexnet", "resnet"):
        # 4-bit headline claims.
        four = by_key[(model, 4)]
        assert four["speedup"] >= 9.8, f"{model}: speedup {four['speedup']}"
        assert four["energy_saving"] >= 85.0
        assert abs(four["area_saving"] - 30.0) < 0.5
        # 3-bit is strictly better on every axis.
        three = by_key[(model, 3)]
        assert three["speedup"] > four["speedup"]
        assert three["energy_saving"] > four["energy_saving"]
        assert abs(three["area_saving"] - 37.5) < 0.5
        # Speeds track the paper closely (the model was calibrated on the
        # 8/4-bit rows; 3-bit is a prediction).
        for bits in (8, 4, 3):
            ours = by_key[(model, bits)]["speed_mhz"]
            paper = PAPER_TABLE5[model][bits][0]
            assert abs(ours - paper) / paper < 0.03
