"""The title claim as one curve: accuracy vs speed/energy across bit widths.

Synthesizes Tables 4 and 5: for each M = N the proposed pipeline's
accuracy (LeNet) against the cost model's speed and energy.  The paper's
thesis is that 4 bits is the knee — near-ideal accuracy at an order of
magnitude better speed/energy than the 8-bit dynamic fixed point design.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import pareto_tradeoff
from repro.analysis.tables import render_dict_table


def test_pareto_tradeoff(benchmark):
    rows = benchmark.pedantic(
        lambda: pareto_tradeoff(BENCH_SETTINGS), rounds=1, iterations=1
    )
    for row in rows:
        row["accuracy"] = round(row["accuracy"], 2)
        row["speed_mhz"] = round(row["speed_mhz"], 2)
        row["energy_uj"] = round(row["energy_uj"], 3)
    text = render_dict_table(
        rows, ["bits", "accuracy", "speed_mhz", "energy_uj"],
        title="Accuracy vs speed/energy across bit widths (LeNet, M = N)",
    )
    save_result("pareto_tradeoff", text)

    by_bits = {r["bits"]: r for r in rows}
    # Speed strictly improves as bits shrink; energy strictly falls.
    ordered = [by_bits[b] for b in sorted(by_bits, reverse=True)]
    assert all(a["speed_mhz"] < b["speed_mhz"] for a, b in zip(ordered, ordered[1:]))
    assert all(a["energy_uj"] > b["energy_uj"] for a, b in zip(ordered, ordered[1:]))
    # The knee: 4 bits keeps accuracy within a few points of the 8-bit
    # baseline while being ≳10× faster.
    assert by_bits[4]["accuracy"] > by_bits[8]["accuracy"] - 6.0
    assert by_bits[4]["speed_mhz"] > 10 * by_bits[8]["speed_mhz"]
    # 2 bits finally pays a visible accuracy price (the curve bends).
    assert by_bits[2]["accuracy"] < by_bits[4]["accuracy"]
