"""Table 4 — combined signal + weight quantization vs 8-bit dynamic fixed point.

Both techniques together at 5/4/3 bits, compared against the Gysel et al.
[23] 8-bit dynamic fixed point baseline — the paper's full headline
accuracy experiment.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import table4_combined
from repro.analysis.tables import render_dict_table

PAPER_TABLE4 = {
    "lenet": {"dynamic8": 98.16, 5: (97.74, 98.16), 4: (96.38, 98.14), 3: (93.43, 97.46)},
    "alexnet": {"dynamic8": 84.50, 5: (81.80, 84.47), 4: (76.16, 83.05), 3: (69.70, 81.53)},
    "resnet": {"dynamic8": 91.75, 5: (91.03, 91.48), 4: (75.16, 90.33), 3: (22.18, 87.71)},
}


def test_table4(benchmark):
    results = benchmark.pedantic(
        lambda: table4_combined(BENCH_SETTINGS), rounds=1, iterations=1
    )
    rows = []
    for model, entry in results.items():
        rows.append(
            {
                "model": model,
                "bits": "dyn-8 [23]",
                "with": round(entry["dynamic8"], 2),
                "ideal": round(entry["ideal"], 2),
                "paper_with": PAPER_TABLE4[model]["dynamic8"],
            }
        )
        for outcome in entry["outcomes"]:
            row = outcome.row()
            paper_without, paper_with = PAPER_TABLE4[model][outcome.bits]
            row["paper_without"] = paper_without
            row["paper_with"] = paper_with
            rows.append(row)
    text = render_dict_table(
        rows,
        ["model", "bits", "without", "with", "recovered", "drop", "ideal",
         "paper_without", "paper_with"],
        title="Table 4: combined quantization vs 8-bit dynamic fixed point",
    )
    save_result("table4_combined", text)

    for model, entry in results.items():
        outcomes = {o.bits: o for o in entry["outcomes"]}
        # The proposed method recovers accuracy at the lowest precision.
        assert outcomes[3].recovered > 0, f"{model}: {outcomes[3]}"
        # The 8-bit dynamic fixed point baseline is near-ideal (Gysel's
        # result, which the paper replicates in its header rows).
        assert entry["dynamic8"] > entry["ideal"] - 6.0
        # Our 5-bit proposed networks approach the 8-bit dynamic baseline.
        # The paper reports within ~1%; at miniature training scale the
        # CIFAR-like models keep a wider gap (observed ≈17 points on
        # AlexNet), so the asserted bound is loose — EXPERIMENTS.md records
        # the measured gaps.
        assert outcomes[5].accuracy_with > entry["dynamic8"] - 20.0
        # Combined quantization can't beat the ideal by much (sanity).
        assert outcomes[4].accuracy_with <= entry["ideal"] + 5.0
    # Depth ordering of the w/o collapse at 3 bits (ResNet worst in paper).
    w_o_3bit = {m: {o.bits: o for o in e["outcomes"]}[3].accuracy_without
                for m, e in results.items()}
    assert w_o_3bit["resnet"] <= w_o_3bit["lenet"] + 5.0
