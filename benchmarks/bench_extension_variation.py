"""Extension benches — device variation: robust training and chip yield.

Beyond the paper (motivated by its ref. [16]):

1. **Variation-aware training** — fine-tuning the deployed network under
   multiplicative weight noise flattens it against programming variation.
2. **Monte-Carlo yield** — fraction of simulated dies meeting an accuracy
   spec at each programming-variation level.
"""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import _data_for, get_cache
from repro.analysis.tables import render_dict_table
from repro.core.surgery import clone_module
from repro.core.variation_training import (
    VariationTrainingConfig,
    train_with_variation,
    variation_robustness,
)
from repro.snc.montecarlo import yield_vs_variation
from repro.snc.system import SpikingSystemConfig, build_spiking_system


def test_variation_aware_training(benchmark):
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    base = cache.get_or_train("lenet", "proposed", 4, BENCH_SETTINGS, train)

    def run():
        control = clone_module(base)
        robust = clone_module(base)
        train_with_variation(
            control, train, VariationTrainingConfig(noise_sigma=0.0, epochs=3, seed=2)
        )
        train_with_variation(
            robust, train, VariationTrainingConfig(noise_sigma=0.25, epochs=3, seed=2)
        )
        sigmas = [0.0, 0.1, 0.2, 0.3]
        control_rows = variation_robustness(control, test, sigmas, trials=5)
        robust_rows = variation_robustness(robust, test, sigmas, trials=5)
        rows = []
        for c, r in zip(control_rows, robust_rows):
            rows.append(
                {
                    "sigma": c["sigma"],
                    "control_acc": round(c["mean_accuracy"], 2),
                    "robust_acc": round(r["mean_accuracy"], 2),
                    "gain": round(r["mean_accuracy"] - c["mean_accuracy"], 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["sigma", "control_acc", "robust_acc", "gain"],
        title="Extension: variation-aware training (LeNet, weight noise)",
    )
    save_result("extension_variation_training", text)

    by_sigma = {r["sigma"]: r for r in rows}
    # Both arms near-equal on a clean die ...
    assert abs(by_sigma[0.0]["gain"]) < 6.0
    # ... and the noise-trained model holds up at least as well at the
    # highest variation level.
    assert by_sigma[0.3]["robust_acc"] >= by_sigma[0.3]["control_acc"] - 2.0


def test_chip_yield(benchmark):
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    model = cache.get_or_train("lenet", "proposed", 4, BENCH_SETTINGS, train)
    system = build_spiking_system(
        model,
        SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8),
        train.images[:128],
    )
    spec = system.accuracy(test.subset(200)) - 0.05  # spec: within 5 pts of clean

    def run():
        reports = yield_vs_variation(
            system, test, sigmas=[0.0, 0.05, 0.1, 0.2],
            threshold=spec, n_dies=6, eval_samples=200,
        )
        return [
            {
                "sigma": r.variation_sigma,
                "yield_pct": round(r.yield_fraction * 100, 1),
                "mean_acc": round(r.mean_accuracy * 100, 2),
                "worst_die": round(r.worst_die * 100, 2),
            }
            for r in reports
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["sigma", "yield_pct", "mean_acc", "worst_die"],
        title=f"Extension: Monte-Carlo chip yield (LeNet 4-bit, spec ≥{spec:.0%})",
    )
    save_result("extension_chip_yield", text)

    by_sigma = {r["sigma"]: r for r in rows}
    assert by_sigma[0.0]["yield_pct"] == 100.0
    # Yield and mean accuracy degrade (weakly) with variation.
    assert by_sigma[0.2]["mean_acc"] <= by_sigma[0.0]["mean_acc"] + 0.5
    assert by_sigma[0.2]["yield_pct"] <= by_sigma[0.0]["yield_pct"]
