"""Extension bench — STE fine-tuning through the quantizers.

The paper stops at post-training quantization; this bench measures how
much additional accuracy quantization-aware *fine-tuning*
(:mod:`repro.core.finetune`) buys at the lowest precision (M = N = 3 and
2 bits) on LeNet.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import _data_for, get_cache
from repro.analysis.tables import render_dict_table
from repro.core.finetune import FineTuneConfig, finetune_accuracy_gain


def test_finetune_extension(benchmark):
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)

    def run():
        rows = []
        for bits in (3, 2):
            trained = cache.get_or_train("lenet", "proposed", bits, BENCH_SETTINGS, train)
            gains = finetune_accuracy_gain(
                trained, train, test,
                FineTuneConfig(signal_bits=bits, weight_bits=bits, epochs=4, seed=0),
            )
            rows.append(
                {
                    "bits": bits,
                    "post_training": round(gains["post_training"], 2),
                    "fine_tuned": round(gains["fine_tuned"], 2),
                    "gain": round(gains["gain"], 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["bits", "post_training", "fine_tuned", "gain"],
        title="Extension: STE fine-tuning vs post-training quantization (LeNet)",
    )
    save_result("extension_finetune", text)

    # Fine-tuning never hurts much, and at 2 bits (beyond the paper's range,
    # where post-training quantization struggles) it should help.
    for row in rows:
        assert row["fine_tuned"] >= row["post_training"] - 3.0
    assert rows[-1]["bits"] == 2
