"""Figure 4 — 1st-hidden-layer signal distributions under each regularizer.

Trains LeNet four times (none / l1 / truncated-l1 / proposed, M=4) and
compares the tapped first-hidden-layer distributions.  The paper's claim:
only the proposed regularizer yields signals that are simultaneously
*sparse* and *contained in the uniform range* [0, 2^(M−1)].
"""


from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import fig4_signal_distributions
from repro.analysis.tables import render_dict_table, render_histogram
from repro.core.neuron_convergence import fraction_outside_range


def test_fig4_distributions(benchmark):
    distributions = benchmark.pedantic(
        lambda: fig4_signal_distributions(BENCH_SETTINGS, bits=4),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name, values in distributions.items():
        rows.append(
            {
                "regularizer": name,
                "max": round(float(values.max()), 2),
                "mean": round(float(values.mean()), 3),
                "sparsity": round(float((values < 0.5).mean()), 3),
                "frac_outside_T": round(fraction_outside_range(values, 4), 4),
            }
        )
    text = render_dict_table(
        rows,
        ["regularizer", "max", "mean", "sparsity", "frac_outside_T"],
        title="Fig 4: 1st-hidden-layer signals, LeNet, M=4 (T = 8)",
    )
    histograms = "\n\n".join(
        render_histogram(values, bins=24, title=f"--- {name} ---")
        for name, values in distributions.items()
    )
    save_result("fig4_signal_distributions", text + "\n\n" + histograms)

    stats = {r["regularizer"]: r for r in rows}
    # The proposed regularizer contains the distribution best.
    assert stats["proposed"]["frac_outside_T"] <= stats["none"]["frac_outside_T"]
    assert stats["proposed"]["frac_outside_T"] < 0.05
    # ... and sparsifies at least as well as no regularization.
    assert stats["proposed"]["sparsity"] >= stats["none"]["sparsity"] - 0.05
    # Truncated l1 fails to bound the range (its gradient dies above T) —
    # it cannot beat the proposed form at containment.
    assert (
        stats["proposed"]["frac_outside_T"]
        <= stats["truncated_l1"]["frac_outside_T"] + 1e-9
    )
