"""The int fast-path kernel war: fused uint8 GEMM vs the legacy kernels.

Everything here runs under ``--benchmark-disable`` (CI's perf-smoke job),
asserts the PR's headline claims, and records the evidence in
``BENCH_PR7.json``:

* the fused conv/linear kernels beat the legacy int kernels by ≥1.5× on
  quantized LeNet batch 128, measured as **per-step hot medians** (each
  step solo-looped on frozen inputs — engine-level A/B on this workload
  is dominated by cache-chain noise, see ``docs/performance.md``);
* both kernel generations are bit-exact against the graph executor;
* ``engine_shift`` preserves the argmax of its snapped-graph reference,
  and the multiplier-less requantize is priced by
  :func:`repro.snc.cost.requant_energy_delta`;
* the recorded PR2-era numbers (``BENCH_PR2.json``) are replayed next to
  today's, so the report carries its own history.
"""

import copy
import json
import time

import numpy as np
import pytest

from benchmarks.perf_report import record, report_path
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.runtime.engine import EngineConfig, InferenceEngine

REPORT = "BENCH_PR7.json"
BATCH = 128
# Local margin is ~1.75x on the step-median sum; the floor is the PR's
# acceptance bar.
MIN_STEP_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(BATCH + 32, seed=0).images


@pytest.fixture(scope="module")
def deployed(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    net, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return net


@pytest.fixture(scope="module")
def batch(images):
    return images[:BATCH]


def graph_run(deployed, batch):
    with no_grad():
        return deployed(Tensor(batch)).data


def _median_ms(fn, reps=30):
    fn()
    fn()  # warm the buffer pool and BLAS
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)) * 1e3


def step_medians(engine, batch, reps=30):
    """Per-step hot medians: each step solo-looped on its frozen input."""
    plan = engine.plan
    inputs = [np.asarray(batch, dtype=np.float64)]
    for step in plan.steps:
        inputs.append(step.run(inputs[-1], plan.pool))
    out = {}
    for step, x in zip(plan.steps, inputs):
        out[f"{step.index:02d}-{step.kind}"] = {
            "median_ms": _median_ms(lambda s=step, v=x: s.run(v, plan.pool),
                                    reps=reps),
            "describe": step.describe(),
        }
    return out


def _step_sum(steps):
    return sum(entry["median_ms"] for entry in steps.values())


def test_fused_beats_legacy_per_step(deployed, batch):
    """The tentpole bar: fused kernels ≥1.5× over the legacy engine_int,
    bit-exact logits for both, recorded with per-step medians."""
    fused = InferenceEngine(deployed)
    legacy = InferenceEngine(deployed, EngineConfig(int_kernels="legacy"))
    ref = graph_run(deployed, batch)
    for name, engine in (("fused", fused), ("legacy", legacy)):
        out = engine.run(batch)
        assert engine.active_backend == "int", name
        np.testing.assert_array_equal(out, ref)  # bit-exact, not just argmax

    fused_steps = step_medians(fused, batch)
    legacy_steps = step_medians(legacy, batch)
    record("engine_steps_fused", "lenet-b128", fused_steps, report=REPORT)
    record("engine_steps_legacy", "lenet-b128", legacy_steps, report=REPORT)

    fused_sum = _step_sum(fused_steps)
    legacy_sum = _step_sum(legacy_steps)
    step_speedup = legacy_sum / fused_sum
    # Engine-level solo medians too — noisier (the steps chain through a
    # cold cache) but they are what a caller actually experiences.
    fused_ms = _median_ms(lambda: fused.run(batch))
    legacy_ms = _median_ms(lambda: legacy.run(batch))
    record("speedup_study", "fused_vs_legacy", {
        "batch": BATCH,
        "fused_step_sum_ms": fused_sum,
        "legacy_step_sum_ms": legacy_sum,
        "step_median_speedup": step_speedup,
        "fused_engine_ms": fused_ms,
        "legacy_engine_ms": legacy_ms,
        "engine_speedup": legacy_ms / fused_ms,
        "bit_exact_logits": True,
    }, report=REPORT)
    assert step_speedup >= MIN_STEP_SPEEDUP, (
        f"fused int kernels only {step_speedup:.2f}x faster than legacy "
        f"(step-median sums {fused_sum:.3f} vs {legacy_sum:.3f} ms)"
    )


def test_engine_shift_argmax_and_energy(deployed, batch):
    """engine_shift: argmax-exact vs its snapped graph, energy delta priced."""
    from repro.models.specs import lenet_spec
    from repro.snc.cost import requant_energy_delta

    snapped = copy.deepcopy(deployed)
    engine = InferenceEngine(snapped, EngineConfig(int_path="shift"))
    out = engine.run(batch)
    assert engine.active_backend == "shift"
    ref = graph_run(snapped, batch)  # the engine snapped this module
    argmax_ok = bool((out.argmax(axis=1) == ref.argmax(axis=1)).all())
    logit_mismatches = int((out != ref).sum())

    shift_ms = _median_ms(lambda: engine.run(batch))
    delta = requant_energy_delta(lenet_spec())
    record("engine_shift", "lenet-b128", {
        "batch": BATCH,
        "engine_ms": shift_ms,
        "argmax_identical": argmax_ok,
        "logit_mismatches_vs_snapped_graph": logit_mismatches,
        "logits_total": int(out.size),
        "requant_ops_per_inference": delta.requant_ops,
        "requant_multiply_uj": delta.multiply_uj,
        "requant_shift_uj": delta.shift_uj,
        "requant_saving_uj": delta.saving_uj,
        "requant_saving_fraction": delta.saving_fraction,
    }, report=REPORT)
    assert argmax_ok, "engine_shift changed predictions vs its snapped graph"
    assert delta.shift_uj < delta.multiply_uj


def test_record_pr2_comparison(deployed, batch):
    """Replay the recorded PR2-era numbers next to today's measurements.

    Purely informational (no assertion): BENCH_PR2.json was measured by a
    different harness generation, so the honest comparison is recorded,
    not gated.  The gate lives in ``bench_perf_guard.py``.
    """
    pr2_path = report_path("BENCH_PR2.json")
    try:
        with open(pr2_path) as handle:
            pr2 = json.load(handle)
    except (OSError, ValueError):
        pytest.skip("no BENCH_PR2.json to compare against")
    engine = InferenceEngine(deployed)
    engine.run(batch)
    fused_ms = _median_ms(lambda: engine.run(batch))
    payload = {"fused_engine_ms_today": fused_ms}
    recorded = pr2.get("engine", {}).get("engine_int", {})
    if "mean_ms" in recorded:
        payload["pr2_engine_int_mean_ms"] = recorded["mean_ms"]
        payload["speedup_vs_pr2_recorded_mean"] = recorded["mean_ms"] / fused_ms
    study = pr2.get("engine", {}).get("speedup_study", {})
    if "engine_int_ms" in study:
        payload["pr2_engine_int_median_ms"] = study["engine_int_ms"]
        payload["speedup_vs_pr2_recorded_median"] = (
            study["engine_int_ms"] / fused_ms
        )
    record("vs_pr2", "engine_int", payload, report=REPORT)
