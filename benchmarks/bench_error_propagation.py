"""Eq. 4–5 as a measurement: propagated quantization error per layer.

Sec. 3.1 argues analytically (Eq. 4) that after Neuron Convergence the
quantization error transmitted between layers stays small; Eq. 5 makes
the weight-error analogue.  This bench measures the per-layer relative
error of the deployed LeNet under both training regimes and checks the
paper's claim: the convergence-trained network carries less error to the
output and does not amplify it layer over layer relative to the baseline.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.error_propagation import compare_propagation, measure_error_propagation
from repro.analysis.experiments import _data_for, get_cache
from repro.analysis.tables import render_dict_table


def test_error_propagation(benchmark):
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    baseline = cache.get_or_train("lenet", "none", 4, BENCH_SETTINGS, train)
    proposed = cache.get_or_train("lenet", "proposed", 4, BENCH_SETTINGS, train)
    images = test.images[:128]

    def run():
        return compare_propagation(baseline, proposed, images, signal_bits=4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for arm in ("baseline", "proposed"):
        for error in result[arm]:
            rows.append(
                {
                    "training": arm,
                    "layer": error.layer,
                    "relative_error": round(error.relative_error, 4),
                    "mean_|signal|": round(error.float_magnitude, 3),
                }
            )
    text = render_dict_table(
        rows, ["training", "layer", "relative_error", "mean_|signal|"],
        title=(
            "Eq. 4 measured: per-layer propagated quantization error "
            f"(LeNet, M=4; amplification baseline "
            f"{result['baseline_amplification']:.2f}× vs proposed "
            f"{result['proposed_amplification']:.2f}×)"
        ),
    )
    save_result("error_propagation", text)

    # The Eq. 4 claim, as it actually measures: error *attenuates* layer
    # over layer for the convergence-trained network, at least as strongly
    # as for the baseline (measured 0.54× vs 0.81× amplification).
    assert result["proposed_amplification"] <= result["baseline_amplification"] + 0.15
    assert result["proposed_amplification"] < 1.0
    # A finding worth recording: the *per-layer relative* error of the
    # proposed network can be higher (its signals are sparser and smaller,
    # so each rounding step is relatively larger) — the robustness shows
    # up in attenuation and in decision margins, not raw signal fidelity.
    # EXPERIMENTS.md discusses this.


def test_combined_error_includes_weights(benchmark):
    """Eq. 5: adding weight quantization must not shrink the final error,
    and clustering keeps the combined error bounded."""
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    proposed = cache.get_or_train("lenet", "proposed", 4, BENCH_SETTINGS, train)
    images = test.images[:128]

    def run():
        signal_only = measure_error_propagation(proposed, images, signal_bits=4)
        combined = measure_error_propagation(
            proposed, images, signal_bits=4, weight_bits=4
        )
        return signal_only, combined

    signal_only, combined = benchmark.pedantic(run, rounds=1, iterations=1)
    assert combined[-1].relative_error >= signal_only[-1].relative_error - 1e-6
    # With clustering at 4 bits the combined error stays modest.
    assert combined[-1].relative_error < 0.8
