"""Hardware non-ideality benches (Sec. 1's implicit arguments, quantified).

Two studies the paper argues qualitatively and this library models:

1. **Programming cost vs weight precision** — why 3–4-bit weights despite
   64-level devices ("the heavy programming cost in speed and circuit
   design are not acceptable").
2. **IR drop vs crossbar size** — why crossbars are tiled at 32×32 rather
   than mapped as one large array (Eq. 1 exists for a physical reason).
"""

from benchmarks.conftest import save_result
from repro.analysis.tables import render_dict_table
from repro.models.specs import paper_specs
from repro.snc.irdrop import ir_drop_error_vs_size
from repro.snc.programming import programming_cost


def test_programming_cost_vs_bits(benchmark):
    def run():
        rows = []
        for spec in paper_specs():
            for bits in (2, 3, 4, 6, 8):
                cost = programming_cost(spec, bits)
                rows.append(
                    {
                        "model": spec.name,
                        "bits": bits,
                        "levels": 2 ** (bits - 1) + 1,
                        "pulses_per_device": round(cost.pulses_per_device, 1),
                        "time_ms": round(cost.time_ms, 3),
                        "energy_uj": round(cost.energy_uj, 2),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows,
        ["model", "bits", "levels", "pulses_per_device", "time_ms", "energy_uj"],
        title="Programming (write) cost vs weight precision",
    )
    save_result("hw_programming_cost", text)

    for model in ("lenet", "alexnet", "resnet"):
        series = {r["bits"]: r for r in rows if r["model"] == model}
        # Monotone growth with precision.
        times = [series[b]["time_ms"] for b in (2, 3, 4, 6, 8)]
        assert all(a <= b for a, b in zip(times, times[1:]))
        # The paper's objection: 6-bit devices cost ≥2× the 4-bit write time.
        assert series[6]["time_ms"] >= 2.0 * series[4]["time_ms"]


def test_ir_drop_vs_crossbar_size(benchmark):
    rows = benchmark.pedantic(
        lambda: ir_drop_error_vs_size([8, 16, 32, 64, 128]),
        rounds=1,
        iterations=1,
    )
    table = [
        {"size": size, "relative_error_pct": round(error * 100, 3)}
        for size, error in rows
    ]
    text = render_dict_table(
        table, ["size", "relative_error_pct"],
        title="Worst-corner IR-drop error vs crossbar size (full-on array)",
    )
    save_result("hw_ir_drop", text)

    errors = dict(rows)
    # Error grows superlinearly with array size ...
    assert errors[16] > errors[8]
    assert errors[128] > 3 * errors[32]
    # ... and the paper's t=32 stays within a few percent.
    assert errors[32] < 0.05
