"""Figure 1 — (a) spike-system speed vs neuron precision;
(b) accuracy loss from low-precision neurons vs low-precision weights.

Fig. 1 motivates the whole paper: speed collapses as neuron precision
grows (a), and — below ~5 bits — quantizing *neurons* hurts accuracy more
than quantizing *weights* (b), both evaluated on LeNet/MNIST.
"""


from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import fig1a_speed_vs_precision, fig1b_accuracy_loss
from repro.analysis.tables import render_dict_table


def test_fig1a_speed_vs_precision(benchmark):
    rows = benchmark.pedantic(fig1a_speed_vs_precision, rounds=1, iterations=1)
    text = render_dict_table(
        [{"bits": r["bits"], "speed_mhz": round(r["speed_mhz"], 2)} for r in rows],
        ["bits", "speed_mhz"],
        title="Fig 1a: computation speed vs neuron precision (LeNet)",
    )
    save_result("fig1a_speed_vs_precision", text)

    speeds = {r["bits"]: r["speed_mhz"] for r in rows}
    # Monotone collapse with precision ...
    ordered = [speeds[b] for b in sorted(speeds)]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
    # ... by roughly 2× per extra bit once the window dominates.
    assert 1.6 < speeds[5] / speeds[6] < 2.2
    # 8-bit is an order of magnitude slower than 4-bit (the paper's point).
    assert speeds[4] / speeds[8] > 10


def test_fig1b_accuracy_loss(benchmark):
    rows = benchmark.pedantic(
        lambda: fig1b_accuracy_loss(BENCH_SETTINGS), rounds=1, iterations=1
    )
    text = render_dict_table(
        [
            {
                "bits": r["bits"],
                "neuron_loss": round(r["neuron_loss"], 2),
                "weight_loss": round(r["weight_loss"], 2),
            }
            for r in rows
        ],
        ["bits", "neuron_loss", "weight_loss"],
        title="Fig 1b: accuracy loss, low-precision neurons vs weights (LeNet)",
    )
    save_result("fig1b_accuracy_loss", text)

    by_bits = {r["bits"]: r for r in rows}
    # Below 5 bits, neuron quantization hurts at least as much as weights.
    low_bits = [b for b in by_bits if b <= 4]
    assert any(
        by_bits[b]["neuron_loss"] > by_bits[b]["weight_loss"] for b in low_bits
    ), f"neuron loss never dominates: {rows}"
    # Loss grows as bits shrink (allowing small noise).
    assert by_bits[2]["neuron_loss"] > by_bits[6]["neuron_loss"]
    # At generous precision neuron loss vanishes.
    assert by_bits[8]["neuron_loss"] < 5.0
    # Weight loss flattens to a bits-independent floor instead: the naive
    # grid's ±½ saturation clips outlier weights no matter how fine the
    # steps are (observed ≈10 points on LeNet; see EXPERIMENTS.md).
    assert abs(by_bits[8]["weight_loss"] - by_bits[5]["weight_loss"]) < 5.0
    assert by_bits[2]["weight_loss"] > by_bits[8]["weight_loss"] + 5.0
