"""Table 2 — neuron (signal) quantization with vs without Neuron Convergence.

Signals quantized to 5/4/3-bit fixed integers; weights stay fp32.  Shape
claims asserted (per DESIGN.md §4): the "w/o" arm collapses as bits
shrink, the "w/" arm stays near ideal, and recovered accuracy grows as
bits shrink.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import table2_neuron_convergence
from repro.analysis.tables import render_dict_table

PAPER_TABLE2 = {  # model -> bits -> (w/o, w/)
    "lenet": {5: (97.74, 98.16), 4: (97.00, 98.15), 3: (92.90, 98.13)},
    "alexnet": {5: (82.51, 85.20), 4: (77.80, 83.15), 3: (67.83, 82.10)},
    "resnet": {5: (91.37, 92.50), 4: (75.72, 91.33), 3: (26.57, 88.95)},
}


def test_table2(benchmark):
    outcomes = benchmark.pedantic(
        lambda: table2_neuron_convergence(BENCH_SETTINGS), rounds=1, iterations=1
    )
    rows = []
    for outcome in outcomes:
        row = outcome.row()
        paper_without, paper_with = PAPER_TABLE2[outcome.model][outcome.bits]
        row["paper_without"] = paper_without
        row["paper_with"] = paper_with
        rows.append(row)
    text = render_dict_table(
        rows,
        ["model", "bits", "without", "with", "recovered", "drop", "ideal",
         "paper_without", "paper_with"],
        title="Table 2: signal quantization with/without Neuron Convergence",
    )
    save_result("table2_neuron_convergence", text)

    by_key = {(o.model, o.bits): o for o in outcomes}
    for model in ("lenet", "alexnet", "resnet"):
        three = by_key[(model, 3)]
        five = by_key[(model, 5)]
        # At 3 bits the proposed training must recover accuracy.
        assert three.recovered > 0, f"{model}: no recovery at 3 bits ({three})"
        # The w/o arm degrades as bits shrink.
        assert five.accuracy_without >= three.accuracy_without - 2.0
        # The w/ arm stays within a modest drop of ideal at 4 bits.
        four = by_key[(model, 4)]
        assert four.drop < 25.0, f"{model}: w/ collapsed at 4 bits ({four})"
        # Recovered accuracy grows (weakly) as bits shrink — the paper's
        # strongest trend.
        assert three.recovered >= five.recovered - 2.0
    # The deepest network benefits the most at 3 bits (paper: 62.38%).
    assert by_key[("resnet", 3)].recovered > by_key[("lenet", 3)].recovered - 5.0
