"""Ablation benches for the design choices DESIGN.md §6 calls out.

- α in Eq. 3 (the paper picks 0.1 "empirically" — we sweep it),
- per-layer vs global clustering scale,
- Lloyd iterations vs plain range-matched rounding,
- crossbar size t in Eq. 1.
"""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import get_cache, _data_for
from repro.analysis.metrics import evaluate_accuracy
from repro.analysis.tables import render_dict_table
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.qat import Trainer, TrainerConfig
from repro.models import build_model
from repro.models.specs import paper_specs
from repro.snc.cost import aggregate_network


def test_ablation_alpha(benchmark):
    """Sweep the sparsity slope α at fixed strength (LeNet, M=4)."""
    train, test = _data_for("lenet", BENCH_SETTINGS)

    def run():
        rows = []
        for alpha in (0.0, 0.01, 0.1, 0.3):
            model = build_model("lenet", width_multiplier=1.0,
                                rng=np.random.default_rng(17))
            Trainer(
                TrainerConfig(epochs=10, penalty="proposed", bits=4,
                              strength=1e-2, alpha=alpha, seed=0)
            ).fit(model, train)
            fp32 = evaluate_accuracy(model, test) * 100
            deployed, _ = deploy_model(
                model, DeploymentConfig(signal_bits=4, weight_bits=None, weight_mode="none")
            )
            quantized = evaluate_accuracy(deployed, test) * 100
            rows.append({"alpha": alpha, "fp32": round(fp32, 2),
                         "quantized_4bit": round(quantized, 2)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["alpha", "fp32", "quantized_4bit"],
        title="Ablation: Eq. 3 sparsity slope α (LeNet, M=4, strength 1e-2)",
    )
    save_result("ablation_alpha", text)

    by_alpha = {r["alpha"]: r for r in rows}
    # Some sparsity pressure should not destroy fp32 accuracy ...
    assert by_alpha[0.01]["fp32"] > 80.0
    # ... while a huge α visibly hurts the float model.
    assert by_alpha[0.3]["fp32"] <= by_alpha[0.01]["fp32"] + 2.0
    # Quantized accuracy is decent across the tame range.
    assert max(r["quantized_4bit"] for r in rows) > 85.0


def test_ablation_clustering_scope(benchmark):
    """Per-layer vs global clustering scale, and vs range-matched rounding."""
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    baseline = cache.get_or_train("lenet", "none", 4, BENCH_SETTINGS, train)

    def run():
        rows = []
        for bits in (4, 3):
            for mode, scope in (
                ("clustered", "per_layer"),
                ("clustered", "global"),
                ("naive_range", "per_layer"),
                ("naive", "per_layer"),
            ):
                deployed, _ = deploy_model(
                    baseline,
                    DeploymentConfig(signal_bits=None, weight_bits=bits,
                                     weight_mode=mode, clustering_scope=scope),
                )
                accuracy = evaluate_accuracy(deployed, test) * 100
                label = mode if mode != "clustered" else f"clustered/{scope}"
                rows.append({"bits": bits, "mode": label, "accuracy": round(accuracy, 2)})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["bits", "mode", "accuracy"],
        title="Ablation: weight clustering scope and solver (LeNet)",
    )
    save_result("ablation_clustering_scope", text)

    def acc(bits, mode):
        return next(r["accuracy"] for r in rows if r["bits"] == bits and r["mode"] == mode)

    # Per-layer clustering beats (or matches) the global single scale.
    assert acc(3, "clustered/per_layer") >= acc(3, "clustered/global") - 3.0
    # The Lloyd solver beats the fixed grid at 3 bits.
    assert acc(3, "clustered/per_layer") >= acc(3, "naive") - 1.0


def test_ablation_crossbar_size(benchmark):
    """Eq. 1 crossbar counts and array utilization vs crossbar size t."""

    def run():
        rows = []
        for size in (16, 32, 64, 128):
            for spec in paper_specs():
                aggregates = aggregate_network(spec, crossbar_size=size)
                cells = aggregates.num_crossbars * size * size
                utilization = spec.total_weights / cells
                rows.append(
                    {
                        "model": spec.name,
                        "t": size,
                        "crossbars": aggregates.num_crossbars,
                        "utilization": round(utilization, 3),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        rows, ["model", "t", "crossbars", "utilization"],
        title="Ablation: crossbar size t (Eq. 1 tile counts and utilization)",
    )
    save_result("ablation_crossbar_size", text)

    # Crossbar count decreases monotonically with t for every model.
    for model in ("lenet", "alexnet", "resnet"):
        counts = [r["crossbars"] for r in rows if r["model"] == model]
        assert all(a >= b for a, b in zip(counts, counts[1:]))
    # Small layers waste big arrays: LeNet utilization at t=128 is poor.
    lenet_128 = next(r for r in rows if r["model"] == "lenet" and r["t"] == 128)
    lenet_32 = next(r for r in rows if r["model"] == "lenet" and r["t"] == 32)
    assert lenet_128["utilization"] < lenet_32["utilization"]
