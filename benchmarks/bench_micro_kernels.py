"""Micro-benchmarks of the performance-critical kernels.

These are conventional pytest-benchmark timings (multiple rounds) of the
inner loops everything else stands on: im2col convolution
forward/backward, crossbar analog MVM, Eq. 6 clustering, rate coding, and
a full quantized-LeNet inference.
"""

import numpy as np
import pytest

from benchmarks.perf_report import record_benchmark
from repro import nn
from repro.core.weight_clustering import cluster_weights
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.snc.crossbar import CrossbarArray
from repro.snc.ifc import IntegrateAndFire
from repro.snc.spikes import decode_counts, encode_uniform


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_conv2d_forward(benchmark, rng):
    x = Tensor(rng.normal(size=(16, 16, 16, 16)))
    conv = nn.Conv2d(16, 32, 3, padding=1, rng=rng)
    with no_grad():
        benchmark(lambda: conv(x))
    record_benchmark(benchmark, "kernels", "conv2d_forward")


def test_conv2d_backward(benchmark, rng):
    conv = nn.Conv2d(8, 16, 3, padding=1, rng=rng)

    def step():
        x = Tensor(rng.normal(size=(8, 8, 12, 12)), requires_grad=True)
        conv(x).sum().backward()
        conv.zero_grad()

    benchmark(step)
    record_benchmark(benchmark, "kernels", "conv2d_backward")


def test_crossbar_analog_mvm(benchmark, rng):
    codes = rng.integers(-8, 9, size=(256, 128))
    array = CrossbarArray(codes, bits=4, size=32)
    inputs = rng.integers(0, 16, size=(64, 256)).astype(float)
    benchmark(lambda: array.multiply_analog(inputs))
    record_benchmark(benchmark, "kernels", "crossbar_analog_mvm")


def test_weight_clustering_kernel(benchmark, rng):
    weights = rng.normal(size=50_000) * 0.2
    benchmark(lambda: cluster_weights(weights, bits=4))
    record_benchmark(benchmark, "kernels", "weight_clustering")


def test_rate_coding_roundtrip(benchmark, rng):
    values = rng.integers(0, 16, size=(32, 1024))
    benchmark(lambda: decode_counts(encode_uniform(values, bits=4)))
    record_benchmark(benchmark, "kernels", "rate_coding_roundtrip")


def test_ifc_stepped_window(benchmark, rng):
    ifc = IntegrateAndFire(threshold=1.0, max_spikes=15)
    charges = rng.uniform(0, 0.3, size=(15, 4096))
    benchmark(lambda: ifc.run(charges))
    record_benchmark(benchmark, "kernels", "ifc_stepped_window")


def test_quantized_lenet_inference(benchmark, rng):
    from repro.core.deployment import DeploymentConfig, deploy_model

    model = LeNet(rng=rng)
    deployed, _ = deploy_model(model, DeploymentConfig(signal_bits=4, weight_bits=4))
    images = Tensor(rng.normal(size=(32, 1, 28, 28)))
    with no_grad():
        benchmark(lambda: deployed(images))
    record_benchmark(benchmark, "kernels", "quantized_lenet_graph_inference")


def test_training_step_lenet(benchmark, rng):
    from repro.nn.losses import cross_entropy
    from repro.nn.optim import Adam

    model = LeNet(rng=rng)
    opt = Adam(model.parameters(), lr=1e-3)
    images = Tensor(rng.normal(size=(32, 1, 28, 28)))
    labels = rng.integers(0, 10, size=32)

    def step():
        loss = cross_entropy(model(images), labels)
        opt.zero_grad()
        loss.backward()
        opt.step()

    benchmark(step)
    record_benchmark(benchmark, "kernels", "training_step_lenet")
