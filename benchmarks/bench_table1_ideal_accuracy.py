"""Table 1 — network models and ideal (fp32) accuracy.

Reports the paper's exact layer inventory / weight counts alongside the
fp32 accuracy our scaled substitutes reach on the synthetic datasets.
Absolute accuracies differ from the paper (different data, width, budget);
the asserted shape is the ordering and that every model genuinely learns.
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import table1_ideal_accuracy
from repro.analysis.tables import render_dict_table


def test_table1(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_ideal_accuracy(BENCH_SETTINGS), rounds=1, iterations=1
    )
    for row in rows:
        row["measured_ideal_acc"] = round(row["measured_ideal_acc"], 2)
    text = render_dict_table(
        rows,
        [
            "model", "dataset", "conv_layers", "fc_layers",
            "paper_weights", "paper_ideal_acc", "measured_ideal_acc",
        ],
        title="Table 1: models and ideal accuracy (paper dims, our training)",
    )
    save_result("table1_ideal_accuracy", text)

    by_model = {r["model"]: r for r in rows}
    # Structural fidelity to the paper's Table 1.
    assert by_model["lenet"]["conv_layers"] == 2
    assert by_model["alexnet"]["conv_layers"] == 5
    assert by_model["resnet"]["conv_layers"] == 17
    assert 6_000 <= by_model["lenet"]["paper_weights"] <= 8_000
    assert 3.0e5 <= by_model["alexnet"]["paper_weights"] <= 3.8e5
    assert 1.0e7 <= by_model["resnet"]["paper_weights"] <= 1.3e7
    # Every model learns far beyond chance (10%).
    for model, row in by_model.items():
        assert row["measured_ideal_acc"] > 45.0, f"{model} failed to learn"
    # LeNet/MNIST-like is the easiest task, as in the paper.
    assert by_model["lenet"]["measured_ideal_acc"] > by_model["alexnet"]["measured_ideal_acc"]
