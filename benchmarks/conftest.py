"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures at the
CPU-budget scale defined here, asserts its *shape* claims (who wins, by
roughly how much — see DESIGN.md §4), and writes the rendered table to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.

Trained models are cached on disk under ``.bench_cache/`` by
:mod:`repro.analysis.experiments`; the first full run trains everything
(≈15 minutes on one core), subsequent runs are fast.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentSettings

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Full benchmark scale (see DESIGN.md §2 for why widths are reduced).
BENCH_SETTINGS = ExperimentSettings(
    train_size=1500,
    test_size=500,
    widths=(("lenet", 1.0), ("alexnet", 0.25), ("resnet", 0.125)),
    epochs=(("lenet", 12), ("alexnet", 14), ("resnet", 10)),
)


def save_result(name: str, text: str) -> str:
    """Persist a rendered table/figure under benchmarks/results/ (atomic)."""
    from repro.nn.serialization import atomic_write_text

    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    atomic_write_text(path, text + "\n")
    return path


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    return BENCH_SETTINGS
