#!/usr/bin/env python3
"""Flow runner overhead and resume speedup.

Two claims back the orchestration layer (PR 6):

1. **Checkpointing is cheap** — running a pipeline of small steps through
   the runner with a checkpoint store attached costs little absolute
   wall-time over the bare function calls (the payload hashing/pickling
   is the price of crash-safety; it must stay in the tens of
   milliseconds for typical step outputs).
2. **Resume pays for it immediately** — re-running a pipeline whose
   expensive steps are checkpointed skips them; the second run must be
   at least 5× faster than the first on the bench pipeline, because only
   the cheap aggregation re-executes (nothing re-executes unless keys
   changed — here none do).

Results land in ``BENCH_PR6.json`` under ``flow/``.

Usage::

    python benchmarks/bench_flow.py          # full (5 trials)
    python benchmarks/bench_flow.py --quick  # CI smoke (2 trials)

Exits nonzero when the resume speedup bar is missed.
"""

import argparse
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

# Runnable directly (`python benchmarks/bench_flow.py`): the repo root is
# not on sys.path then, only the script's own directory.
sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from benchmarks.perf_report import record  # noqa: E402
from repro.flow import CheckpointStore, FlowRunner, Pipeline  # noqa: E402

REPORT = "BENCH_PR6.json"
#: Acceptance bar: a fully-checkpointed re-run ≥ 5× the cold run.
MIN_RESUME_SPEEDUP = 5.0


def _build_pipeline(work_items: int, payload_rows: int) -> Pipeline:
    """Synthetic but honest shape: expensive compute, cheap aggregate."""
    rng_seed = 0

    def simulate() -> np.ndarray:
        rng = np.random.default_rng(rng_seed)
        acc = np.zeros((payload_rows, payload_rows))
        for _ in range(work_items):
            acc = acc + rng.standard_normal((payload_rows, payload_rows))
            acc = np.tanh(acc @ acc.T / payload_rows)
        return acc

    pipe = Pipeline("bench/flow")
    pipe.step("simulate", simulate,
              config={"work_items": work_items, "rows": payload_rows,
                      "seed": rng_seed})
    pipe.step("reduce", lambda acc: float(np.abs(acc).mean()),
              inputs=("simulate",), config={})
    return pipe


def _timed_run(pipeline: Pipeline, store) -> float:
    start = time.perf_counter()
    FlowRunner(store=store).run(pipeline)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (2 trials, smaller payloads)")
    args = parser.parse_args(argv)

    trials = 2 if args.quick else 5
    work_items, payload_rows = (40, 96) if args.quick else (120, 160)

    warmup = _build_pipeline(work_items, payload_rows)
    warmup.steps[1].fn(warmup.steps[0].fn())  # JIT/np warmup outside timing

    cold_times, bare_times, resumed_times = [], [], []
    for _ in range(trials):
        pipeline = _build_pipeline(work_items, payload_rows)

        start = time.perf_counter()
        acc = pipeline.steps[0].fn()
        pipeline.steps[1].fn(acc)
        bare_times.append(time.perf_counter() - start)

        run_dir = tempfile.mkdtemp(prefix="bench_flow_")
        try:
            cold_times.append(_timed_run(pipeline, CheckpointStore(run_dir)))
            resumed_times.append(_timed_run(pipeline, CheckpointStore(run_dir)))
        finally:
            shutil.rmtree(run_dir, ignore_errors=True)

    bare = statistics.median(bare_times)
    cold = statistics.median(cold_times)
    resumed = statistics.median(resumed_times)
    overhead_ms = (cold - bare) * 1e3
    speedup = cold / resumed if resumed > 0 else float("inf")

    payload = {
        "bare_ms": round(bare * 1e3, 3),
        "cold_ms": round(cold * 1e3, 3),
        "resumed_ms": round(resumed * 1e3, 3),
        "checkpoint_overhead_ms": round(overhead_ms, 3),
        "resume_speedup": round(speedup, 2),
        "trials": trials,
        "quick": args.quick,
        "bar_min_resume_speedup": MIN_RESUME_SPEEDUP,
    }
    record("flow", "checkpoint_overhead_and_resume", payload, report=REPORT)
    print(f"bare {bare * 1e3:.1f} ms | cold {cold * 1e3:.1f} ms "
          f"(overhead {overhead_ms:.1f} ms) | resumed {resumed * 1e3:.1f} ms "
          f"({speedup:.1f}x)")

    if speedup < MIN_RESUME_SPEEDUP:
        print(f"FAIL: resume speedup {speedup:.2f}x under the "
              f"{MIN_RESUME_SPEEDUP}x bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
