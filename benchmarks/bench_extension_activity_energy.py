"""Extension bench — activity-aware energy from measured spike counts.

Table 5's energy model assumes half-scale average activity.  Neuron
Convergence makes signals *sparse* (Fig. 4), so real spike activity is far
below half scale — this bench measures actual per-layer spike counts on a
deployed LeNet and re-evaluates the energy model with the measured
activity, quantifying the extra saving sparsity buys.
"""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import _data_for, get_cache
from repro.analysis.tables import render_dict_table
from repro.models.specs import lenet_spec
from repro.snc.cost import evaluate_system_cost
from repro.snc.system import SpikingSystemConfig, build_spiking_system


def test_activity_aware_energy(benchmark):
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    trained = cache.get_or_train("lenet", "proposed", 4, BENCH_SETTINGS, train)

    def run():
        system = build_spiking_system(
            trained,
            SpikingSystemConfig(signal_bits=4, weight_bits=4, input_bits=8),
            train.images[:100],
        )
        stats = system.spike_statistics(test.images[:100])
        # per_layer_counts are totals per sample; neuron counts come from
        # the trainable LeNet dims (width 1.0): 6·24·24, 16·8·8, 16.
        neuron_counts = {"relu1": 6 * 24 * 24, "relu2": 16 * 8 * 8, "relu3": 16}
        measured = {}
        for layer, spikes in stats.per_layer_counts.items():
            key = layer.split(".")[-1]
            measured[key] = spikes / (neuron_counts[key] * stats.window)
        mean_activity = float(np.mean(list(measured.values())))

        default = evaluate_system_cost(lenet_spec(), 4, mean_activity=0.5)
        aware = evaluate_system_cost(lenet_spec(), 4, mean_activity=mean_activity)
        return {
            "per_layer_activity": {k: round(v, 4) for k, v in measured.items()},
            "mean_activity": mean_activity,
            "energy_default_uj": default.energy_uj,
            "energy_activity_aware_uj": aware.energy_uj,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "mean_activity": round(result["mean_activity"], 4),
            "energy_default_uj": round(result["energy_default_uj"], 3),
            "energy_aware_uj": round(result["energy_activity_aware_uj"], 3),
            "extra_saving": round(
                100 * (1 - result["energy_activity_aware_uj"] / result["energy_default_uj"]), 1
            ),
        }
    ]
    text = render_dict_table(
        rows,
        ["mean_activity", "energy_default_uj", "energy_aware_uj", "extra_saving"],
        title="Extension: activity-aware Table 5 energy (LeNet, 4-bit) — "
              f"per-layer activity {result['per_layer_activity']}",
    )
    save_result("extension_activity_energy", text)

    # Neuron Convergence sparsity ⇒ measured activity well below half scale.
    assert result["mean_activity"] < 0.5
    assert result["energy_activity_aware_uj"] < result["energy_default_uj"]
