"""Self-healing bench: accuracy recovered by each remediation tier.

A deployed 4-bit LeNet with programming variation σ=0.05 takes stuck-at
faults at increasing rates.  For each rate the repair ladder runs at three
depths — closed-loop reprogramming only, + differential pair swap, + spare
tile remapping — on identically-faulted copies of the chip, measuring how
much of the lost accuracy each tier wins back without any retraining.

Shape claims:
- at 1% faults the full ladder recovers at least half the lost accuracy
  (the robustness-study acceptance bar);
- deeper ladders never recover less than shallower ones (within noise).
"""

from benchmarks.conftest import BENCH_SETTINGS, save_result
from repro.analysis.experiments import _data_for, get_cache
from repro.analysis.tables import render_dict_table
from repro.snc.faults import inject_faults_into_network
from repro.snc.remediation import RemediationConfig
from repro.snc.system import SpikingSystemConfig, build_spiking_system

SIGMA = 0.05
FAULT_RATES = (0.01, 0.03, 0.05)
LADDERS = (
    ("reprogram", dict(use_pair_swap=False, use_spares=False)),
    ("+pair_swap", dict(use_pair_swap=True, use_spares=False)),
    ("+spares", dict(use_pair_swap=True, use_spares=True)),
)


def test_selfheal_recovery_vs_fault_rate(benchmark):
    train, test = _data_for("lenet", BENCH_SETTINGS)
    cache = get_cache(BENCH_SETTINGS)
    model = cache.get_or_train("lenet", "proposed", 4, BENCH_SETTINGS, train)
    eval_set = test.subset(200)

    def deploy_faulted(rate):
        system = build_spiking_system(
            model,
            SpikingSystemConfig(
                signal_bits=4, weight_bits=4, input_bits=8,
                variation_sigma=SIGMA, spare_tile_fraction=0.25, seed=0,
            ),
            train.images[:128],
        )
        if rate:
            inject_faults_into_network(system.network, rate, seed=42)
        return system

    def run():
        rows = []
        for rate in FAULT_RATES:
            pre_fault = deploy_faulted(0.0).accuracy(eval_set)
            faulty = deploy_faulted(rate).accuracy(eval_set)
            lost = pre_fault - faulty
            row = {
                "fault_rate": f"{rate * 100:.0f}%",
                "pre_fault": round(pre_fault * 100, 1),
                "faulty": round(faulty * 100, 1),
                "_lost": lost,
            }
            for name, flags in LADDERS:
                system = deploy_faulted(rate)
                outcome = system.remediate(RemediationConfig(seed=0, **flags))
                healed = system.accuracy(eval_set)
                row[name] = round(healed * 100, 1)
                row[f"_recovered_{name}"] = healed - faulty
                row[f"_deviating_{name}"] = outcome.final.deviating_pairs
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_dict_table(
        [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows],
        ["fault_rate", "pre_fault", "faulty"] + [name for name, _ in LADDERS],
        title=f"Self-healing recovery (LeNet 4-bit, σ={SIGMA}, accuracy %)",
    )
    save_result("selfheal_recovery", text)

    by_rate = {row["fault_rate"]: row for row in rows}
    # Acceptance bar: at 1% faults the full ladder wins back ≥ half the loss.
    one_pct = by_rate["1%"]
    assert one_pct["_lost"] > 0
    assert one_pct["_recovered_+spares"] >= 0.5 * one_pct["_lost"]
    for row in rows:
        # Deeper ladders always leave fewer (or equal) deviating pairs —
        # the deterministic guarantee; accuracy gets an eval-noise slack.
        assert row["_deviating_+pair_swap"] <= row["_deviating_reprogram"]
        assert row["_deviating_+spares"] <= row["_deviating_+pair_swap"]
        assert row["_recovered_+spares"] >= row["_recovered_reprogram"] - 0.03
        # Remediation never leaves the chip meaningfully worse than its
        # faulted state.
        for name, _ in LADDERS:
            assert row[f"_recovered_{name}"] >= -0.03
