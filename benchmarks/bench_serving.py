"""Benchmarks of the traffic-scale serving layer (``repro.serve``).

Measures what the subsystem exists for: sustained multi-caller
throughput.  A deterministic closed-loop load (seeded through
``snc/seeding``, so every run offers the identical request sequence) is
offered to a :class:`~repro.serve.server.ModelServer` over quantized
LeNet at several worker counts and batch-wait budgets; throughput and
p50/p99 latency land in ``BENCH_PR4.json``.

Headline assertions (run even under ``--benchmark-disable`` so the CI
smoke job exercises them):

* the 4-worker server sustains ≥ 2× the single-caller *graph executor*
  throughput at batch 128 (the PR-4 acceptance bar), and
* every logit row the server returns is bit-exact against direct
  :meth:`~repro.runtime.engine.InferenceEngine.run` on the same rows.
"""

import time

import numpy as np
import pytest

from benchmarks.perf_report import record
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.serve import LoadGenConfig, ServeConfig, run_load
from repro.serve.loadgen import plan_requests

REPORT = "BENCH_PR4.json"
BATCH = 128
POOL = 256  # image pool the load generator slices requests from
# Acceptance bar: the 4-worker server vs the single-caller graph
# executor.  The single-caller int engine alone is ~3.2x, so this floor
# holds even when worker threads buy little on a saturated runner.
MIN_SPEEDUP_VS_GRAPH = 2.0

LOAD = LoadGenConfig(
    clients=12, requests_per_client=25, min_rows=32, max_rows=128, seed=0,
)


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(POOL, seed=0).images


@pytest.fixture(scope="module")
def deployed(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    net, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return net


def _single_caller_rows_per_s(fn, rows, reps=20):
    fn()
    fn()  # warm caches / buffer pools
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return rows / float(np.median(times))


def _serve(deployed, images, workers, max_wait_ms=2.0, load=LOAD):
    server = make_model_server(
        deployed,
        ServeConfig(workers=workers, batch_size=BATCH, max_wait_ms=max_wait_ms),
        warmup_images=images[:2],
    )
    try:
        report = run_load(server, images, load)
        stats = server.stats()
    finally:
        server.close()
    return report, stats


def test_server_throughput_vs_single_caller(deployed, images):
    """The acceptance study: worker sweep vs single-caller baselines."""
    batch = images[:BATCH]
    with no_grad():
        graph_rps = _single_caller_rows_per_s(
            lambda: deployed(Tensor(np.asarray(batch, dtype=np.float64))).data,
            BATCH,
        )
    engine = make_inference_engine(deployed)
    engine_rps = _single_caller_rows_per_s(lambda: engine.run(batch), BATCH)
    record("serving", "single_caller", {
        "batch": BATCH,
        "graph_rows_per_s": graph_rps,
        "engine_rows_per_s": engine_rps,
        "engine_speedup_vs_graph": engine_rps / graph_rps,
    }, report=REPORT)

    results = {}
    for workers in (1, 2, 4):
        report, stats = _serve(deployed, images, workers)
        assert report.requests_failed == 0
        assert report.requests_ok == LOAD.clients * LOAD.requests_per_client
        payload = report.to_dict()
        payload["speedup_vs_graph"] = report.throughput_rows_per_s / graph_rps
        payload["mean_batch_rows"] = stats["mean_batch_rows"]
        results[workers] = payload
        record("serving", f"server_{workers}w", payload, report=REPORT)

    speedup = results[4]["speedup_vs_graph"]
    assert speedup >= MIN_SPEEDUP_VS_GRAPH, (
        f"4-worker server only {speedup:.2f}x the single-caller graph executor"
    )


def test_batch_wait_sweep(deployed, images):
    """How the max-wait budget trades p50 latency against batch fill."""
    for max_wait_ms in (0.0, 2.0, 5.0):
        report, stats = _serve(deployed, images, workers=4, max_wait_ms=max_wait_ms)
        assert report.requests_failed == 0
        payload = report.to_dict()
        payload["max_wait_ms"] = max_wait_ms
        payload["mean_batch_rows"] = stats["mean_batch_rows"]
        record("serving", f"wait_{max_wait_ms:g}ms", payload, report=REPORT)


def test_served_logits_bit_exact(deployed, images):
    """Every served row equals direct InferenceEngine.run on that row."""
    load = LoadGenConfig(clients=4, requests_per_client=6,
                         min_rows=8, max_rows=64, seed=7)
    schedule = plan_requests(load, len(images))
    server = make_model_server(
        deployed, ServeConfig(workers=4, batch_size=BATCH, max_wait_ms=2.0),
        warmup_images=images[:2],
    )
    try:
        payloads = [images[o : o + r] for plan in schedule for (o, r) in plan]
        served = server.submit_many(payloads)
    finally:
        server.close()
    reference = make_inference_engine(deployed)
    exact = all(
        np.array_equal(out, reference.run(payload))
        for out, payload in zip(served, payloads)
    )
    record("serving", "bit_exactness", {
        "requests": len(payloads),
        "rows": int(sum(len(p) for p in payloads)),
        "bit_exact_vs_engine_run": bool(exact),
    }, report=REPORT)
    assert exact
