"""Benchmarks of the traffic-scale serving layer (``repro.serve``).

Measures what the subsystem exists for: sustained multi-caller
throughput.  A deterministic closed-loop load (seeded through
``snc/seeding``, so every run offers the identical request sequence) is
offered to a :class:`~repro.serve.server.ModelServer` over quantized
LeNet at several worker counts and batch-wait budgets; throughput and
p50/p99 latency land in ``BENCH_PR4.json``.

Headline assertions (run even under ``--benchmark-disable`` so the CI
smoke job exercises them):

* the 4-worker server sustains ≥ 2× the single-caller *graph executor*
  throughput at batch 128 (the PR-4 acceptance bar), and
* every logit row the server returns is bit-exact against direct
  :meth:`~repro.runtime.engine.InferenceEngine.run` on the same rows.

PR 10 adds a process-pool sweep (1/2/4 spawned workers, shared-memory
tensors) recorded to ``BENCH_PR10.json`` with per-worker scaling
efficiency and the host's ``available_cores``; its ≥ 2.5× acceptance
bar vs the 1-worker threaded server is enforced only on hosts with at
least 4 cores — a starved runner records honest numbers instead of a
meaningless failure.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.perf_report import record
from repro.core.deployment import (
    DeploymentConfig,
    deploy_model,
    make_inference_engine,
    make_model_server,
)
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet
from repro.nn.tensor import Tensor, no_grad
from repro.serve import LoadGenConfig, ServeConfig, run_load
from repro.serve.loadgen import plan_requests

REPORT = "BENCH_PR4.json"
REPORT_PR10 = "BENCH_PR10.json"
# PR-10 acceptance bar: 4 process workers vs the 1-worker threaded
# server, enforced only where the host can physically scale (≥ 4 cores).
MIN_PROCESS_SPEEDUP = 2.5
BATCH = 128
POOL = 256  # image pool the load generator slices requests from
# Acceptance bar: the 4-worker server vs the single-caller graph
# executor.  The single-caller int engine alone is ~3.2x, so this floor
# holds even when worker threads buy little on a saturated runner.
MIN_SPEEDUP_VS_GRAPH = 2.0

LOAD = LoadGenConfig(
    clients=12, requests_per_client=25, min_rows=32, max_rows=128, seed=0,
)


@pytest.fixture(scope="module")
def images():
    return generate_mnist_like(POOL, seed=0).images


@pytest.fixture(scope="module")
def deployed(images):
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    net, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    return net


def _single_caller_rows_per_s(fn, rows, reps=20):
    fn()
    fn()  # warm caches / buffer pools
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return rows / float(np.median(times))


def _serve(deployed, images, workers, max_wait_ms=2.0, load=LOAD):
    server = make_model_server(
        deployed,
        ServeConfig(workers=workers, batch_size=BATCH, max_wait_ms=max_wait_ms),
        warmup_images=images[:2],
    )
    try:
        report = run_load(server, images, load)
        stats = server.stats()
    finally:
        server.close()
    return report, stats


def test_server_throughput_vs_single_caller(deployed, images):
    """The acceptance study: worker sweep vs single-caller baselines."""
    batch = images[:BATCH]
    with no_grad():
        graph_rps = _single_caller_rows_per_s(
            lambda: deployed(Tensor(np.asarray(batch, dtype=np.float64))).data,
            BATCH,
        )
    engine = make_inference_engine(deployed)
    engine_rps = _single_caller_rows_per_s(lambda: engine.run(batch), BATCH)
    record("serving", "single_caller", {
        "batch": BATCH,
        "graph_rows_per_s": graph_rps,
        "engine_rows_per_s": engine_rps,
        "engine_speedup_vs_graph": engine_rps / graph_rps,
    }, report=REPORT)

    results = {}
    for workers in (1, 2, 4):
        report, stats = _serve(deployed, images, workers)
        assert report.requests_failed == 0
        assert report.requests_ok == LOAD.clients * LOAD.requests_per_client
        payload = report.to_dict()
        payload["speedup_vs_graph"] = report.throughput_rows_per_s / graph_rps
        payload["mean_batch_rows"] = stats["mean_batch_rows"]
        results[workers] = payload
        record("serving", f"server_{workers}w", payload, report=REPORT)

    speedup = results[4]["speedup_vs_graph"]
    assert speedup >= MIN_SPEEDUP_VS_GRAPH, (
        f"4-worker server only {speedup:.2f}x the single-caller graph executor"
    )


def test_batch_wait_sweep(deployed, images):
    """How the max-wait budget trades p50 latency against batch fill."""
    for max_wait_ms in (0.0, 2.0, 5.0):
        report, stats = _serve(deployed, images, workers=4, max_wait_ms=max_wait_ms)
        assert report.requests_failed == 0
        payload = report.to_dict()
        payload["max_wait_ms"] = max_wait_ms
        payload["mean_batch_rows"] = stats["mean_batch_rows"]
        record("serving", f"wait_{max_wait_ms:g}ms", payload, report=REPORT)


def test_process_pool_scaling(deployed, images):
    """Process-pool sweep (PR 10): 1/2/4 spawned workers vs threads.

    Each point offers the identical seeded closed-loop load to a
    ``pool="process"`` server and checks the run was clean: no failed
    requests, no worker restarts, every shared-memory lease recycled.
    ``available_cores`` is stamped into every payload so numbers from a
    starved host are never mistaken for the real scaling curve.
    """
    load = LoadGenConfig(clients=8, requests_per_client=12,
                         min_rows=32, max_rows=128, seed=0)
    available_cores = os.cpu_count() or 1
    thread_report, _ = _serve(deployed, images, workers=1, load=load)
    thread_rps = thread_report.throughput_rows_per_s

    results = {}
    for workers in (1, 2, 4):
        server = make_model_server(
            deployed,
            ServeConfig(workers=workers, batch_size=BATCH, max_wait_ms=2.0,
                        pool="process"),
            warmup_images=images[:2],
        )
        try:
            report = run_load(server, images, load)
            stats = server.stats()
        finally:
            server.close()
        assert report.requests_failed == 0
        assert report.requests_ok == load.clients * load.requests_per_client
        assert sum(r["restarts"] for r in stats["replicas"]) == 0
        assert stats["shm"]["leases_outstanding"] == 0
        payload = report.to_dict()
        payload.pop("request_log", None)  # per-point summary, not samples
        payload["workers"] = workers
        payload["available_cores"] = available_cores
        payload["speedup_vs_1w_thread"] = (
            report.throughput_rows_per_s / thread_rps
        )
        results[workers] = payload
        record("serving", f"process_{workers}w", payload, report=REPORT_PR10)

    base_rps = results[1]["throughput_rows_per_s"]
    summary = {
        "available_cores": available_cores,
        "thread_1w_rows_per_s": thread_rps,
        "process_rows_per_s": {
            f"{w}w": results[w]["throughput_rows_per_s"] for w in results
        },
        # Ideal scaling is efficiency 1.0: N workers serving N× the
        # 1-process throughput.  On a core-starved host these collapse
        # toward 1/N — that is the honest number, not a bug.
        "scaling_efficiency": {
            f"{w}w": results[w]["throughput_rows_per_s"] / (w * base_rps)
            for w in results
        },
        "speedup_4w_vs_1w_thread": results[4]["speedup_vs_1w_thread"],
        "acceptance_bar": MIN_PROCESS_SPEEDUP,
        "bar_enforced": available_cores >= 4,
    }
    record("serving", "process_pool_sweep", summary, report=REPORT_PR10)
    if available_cores >= 4:
        assert summary["speedup_4w_vs_1w_thread"] >= MIN_PROCESS_SPEEDUP, (
            f"4 process workers only "
            f"{summary['speedup_4w_vs_1w_thread']:.2f}x the 1-worker "
            f"threaded server on a {available_cores}-core host"
        )


def test_served_logits_bit_exact(deployed, images):
    """Every served row equals direct InferenceEngine.run on that row."""
    load = LoadGenConfig(clients=4, requests_per_client=6,
                         min_rows=8, max_rows=64, seed=7)
    schedule = plan_requests(load, len(images))
    server = make_model_server(
        deployed, ServeConfig(workers=4, batch_size=BATCH, max_wait_ms=2.0),
        warmup_images=images[:2],
    )
    try:
        payloads = [images[o : o + r] for plan in schedule for (o, r) in plan]
        served = server.submit_many(payloads)
    finally:
        server.close()
    reference = make_inference_engine(deployed)
    exact = all(
        np.array_equal(out, reference.run(payload))
        for out, payload in zip(served, payloads)
    )
    record("serving", "bit_exactness", {
        "requests": len(payloads),
        "rows": int(sum(len(p) for p in payloads)),
        "bit_exact_vs_engine_run": bool(exact),
    }, report=REPORT)
    assert exact
