"""CI perf-regression guard: per-step medians vs the committed baseline.

Two gates, both designed to survive noisy shared CI machines:

* **Engine steps.** The ``engine_int`` per-step hot medians on quantized
  LeNet (batch 128) are compared against
  ``benchmarks/baselines/engine_steps_lenet.json``.  Because CI machines
  are slower or faster than the box that recorded the baseline, the guard
  first estimates a machine-speed factor — the median of
  ``measured/baseline`` across the significant steps, clamped to
  ``[0.5, 8]`` — and fails only a step that is more than
  ``REPRO_PERF_TOLERANCE`` (default 25%) slower than its *rescaled*
  baseline.  A uniform slowdown therefore passes (it's the machine); a
  single step blowing up relative to its siblings fails (it's a
  regression).  Steps under ``min_step_ms`` are ignored — their medians
  are timer noise.
* **Weight clustering.** ``cluster_weights`` on 50k weights must stay
  under an absolute ceiling chosen ~6× above the vectorized kernel's
  measured median but ~30% below the pre-vectorization loop — generous
  to machine drift, fatal to reverting the vectorization.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.deployment import DeploymentConfig, deploy_model, make_inference_engine
from repro.core.weight_clustering import cluster_weights
from repro.datasets.mnist_like import generate_mnist_like
from repro.models import LeNet

BASELINE = os.path.join(os.path.dirname(__file__), "baselines",
                        "engine_steps_lenet.json")
BATCH = 128
TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.25"))
SCALE_BOUNDS = (0.5, 8.0)


def _median_ms(fn, reps=30):
    fn()
    fn()  # warm the buffer pool and BLAS
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times)) * 1e3


@pytest.fixture(scope="module")
def baseline():
    with open(BASELINE) as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def measured_steps():
    images = generate_mnist_like(BATCH + 32, seed=0).images
    model = LeNet(rng=np.random.default_rng(0))
    model.eval()
    net, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=4, weight_bits=4, input_bits=8),
        images[:32],
    )
    engine = make_inference_engine(net)
    batch = images[:BATCH]
    engine.run(batch)
    plan = engine.plan
    inputs = [np.asarray(batch, dtype=np.float64)]
    for step in plan.steps:
        inputs.append(step.run(inputs[-1], plan.pool))
    return {
        f"{step.index:02d}-{step.kind}":
            _median_ms(lambda s=step, v=x: s.run(v, plan.pool))
        for step, x in zip(plan.steps, inputs)
    }


def test_engine_steps_within_tolerance_of_baseline(baseline, measured_steps):
    min_ms = baseline.get("min_step_ms", 0.05)
    base = {k: v for k, v in baseline["steps"].items() if v >= min_ms}
    missing = set(base) - set(measured_steps)
    assert not missing, (
        f"baseline steps {sorted(missing)} not present in the compiled plan; "
        "re-record benchmarks/baselines/engine_steps_lenet.json"
    )
    ratios = sorted(measured_steps[k] / base[k] for k in base)
    machine = float(np.clip(np.median(ratios), *SCALE_BOUNDS))
    failures = []
    for name, base_ms in sorted(base.items()):
        got = measured_steps[name]
        allowed = base_ms * machine * (1.0 + TOLERANCE)
        if got > allowed:
            failures.append(
                f"{name}: {got:.3f} ms > {allowed:.3f} ms "
                f"(baseline {base_ms:.3f} × machine {machine:.2f} × "
                f"{1.0 + TOLERANCE:.2f})"
            )
    assert not failures, (
        "per-step perf regression vs committed baseline:\n  "
        + "\n  ".join(failures)
    )


def test_weight_clustering_throughput_floor():
    rng = np.random.default_rng(0)
    weights = rng.normal(0.0, 0.25, size=50_000)
    ms = _median_ms(lambda: cluster_weights(weights, bits=4), reps=5)
    # Vectorized kernel: ~9 ms here.  The pre-vectorization Python loop:
    # ~88 ms.  The 60 ms ceiling tolerates a ~6× slower machine but not
    # the loop coming back.
    assert ms < 60.0, (
        f"cluster_weights(50k, bits=4) took {ms:.1f} ms — the vectorized "
        "hot loop has regressed"
    )
