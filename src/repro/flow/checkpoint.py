"""Content-addressed checkpoint store for the DAG runner.

A step's **key** is the SHA-256 of its name, its canonicalized config,
and the content digests of every upstream output it consumes
(:func:`step_key`).  Two consequences fall out of that definition:

- resume is *safe by construction* — if a config knob or any upstream
  result changes, the key changes, and the stale checkpoint simply is
  never looked up again;
- ``--force`` can invalidate selectively: dropping one step's checkpoint
  re-executes it, and its new output digest transparently invalidates
  every downstream key.

Payloads are persisted through :func:`repro.nn.serialization.save_blob`
(atomic temp-file + rename, digest-framed pickle), so a crash mid-write
never leaves a half-checkpoint, and a corrupted/truncated file surfaces
as :class:`~repro.flow.errors.CorruptCheckpointError` on load — the
runner's cue to recompute rather than trust it.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.nn.serialization import BlobError, load_blob, save_blob

from .errors import CorruptCheckpointError

__all__ = ["step_key", "canonical_config", "CheckpointStore"]


def canonical_config(config: Mapping[str, Any]) -> str:
    """A stable textual form of a step config for hashing.

    JSON with sorted keys; non-JSON values fall back to ``repr`` — fine
    for keys, which only need stability, not reversibility.
    """
    return json.dumps(config, sort_keys=True, default=repr)


def step_key(name: str, config: Mapping[str, Any],
             upstream_digests: Mapping[str, str]) -> str:
    """The content address of a step's output.

    ``upstream_digests`` maps upstream step name → its output's payload
    digest; sorted into the hash so declaration order is irrelevant.
    """
    hasher = hashlib.sha256()
    hasher.update(name.encode("utf-8"))
    hasher.update(b"\0")
    hasher.update(canonical_config(config).encode("utf-8"))
    for upstream, digest in sorted(upstream_digests.items()):
        hasher.update(b"\0")
        hasher.update(f"{upstream}={digest}".encode("utf-8"))
    return hasher.hexdigest()[:24]


class CheckpointStore:
    """Blob files under ``<directory>/steps/``, addressed by step key."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        self.steps_dir = os.path.join(self.directory, "steps")
        os.makedirs(self.steps_dir, exist_ok=True)

    def path_for(self, key: str) -> str:
        """Filesystem path of the checkpoint for ``key``."""
        return os.path.join(self.steps_dir, f"{key}.ckpt")

    def has(self, key: str) -> bool:
        """Whether a checkpoint file exists for ``key`` (unverified)."""
        return os.path.exists(self.path_for(key))

    def save(self, key: str, value: Any) -> str:
        """Persist a step output; returns its payload digest."""
        return save_blob(self.path_for(key), value)

    def load(self, key: str) -> Tuple[Any, str]:
        """Load ``(value, digest)``; :class:`CorruptCheckpointError` on rot."""
        try:
            return load_blob(self.path_for(key))
        except BlobError as error:
            raise CorruptCheckpointError(
                f"checkpoint {key} is unusable: {error}"
            ) from error

    def invalidate(self, key: str) -> bool:
        """Delete one checkpoint; returns whether a file was removed."""
        path = self.path_for(key)
        if os.path.exists(path):
            os.unlink(path)
            return True
        return False

    def keys(self) -> Dict[str, str]:
        """Map of stored key → checkpoint path (for inspection/tests)."""
        out: Dict[str, str] = {}
        if os.path.isdir(self.steps_dir):
            for entry in sorted(os.listdir(self.steps_dir)):
                if entry.endswith(".ckpt"):
                    out[entry[:-5]] = os.path.join(self.steps_dir, entry)
        return out

    def failsink_path(self, run_name: Optional[str] = None) -> str:
        """Default JSONL failsink location inside this store's directory."""
        name = f"failsink_{run_name}.jsonl" if run_name else "failsink.jsonl"
        return os.path.join(self.directory, name)
