"""Named pipelines behind ``repro run <pipeline>``.

Each builder returns ``(Pipeline, summarize)`` where ``summarize`` turns
the finished :class:`~repro.flow.RunResult` into the CLI's human-readable
report.  Three workloads — the paper's three long-running, partially-
failing job shapes — are wired up:

- ``quantization`` — the full train → quantize → evaluate comparison
  (:class:`~repro.core.pipeline.QuantizationPipeline` as a DAG; the two
  trainings checkpoint, so a killed run resumes without re-training);
- ``sweep`` — a bit-width ablation as a map step (one bad point lands in
  the failsink instead of aborting the sweep);
- ``yield`` — a Monte-Carlo die study as a map step over die seeds (a
  die that blows up mid-eval is recorded with its seed and skipped).

All builders are deterministic from ``seed`` and bounded by ``fast``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .runner import Pipeline, RunResult

__all__ = ["PIPELINES", "build_named_pipeline"]

Summarize = Callable[[RunResult], str]


def _quantization(fast: bool, seed: int) -> Tuple[Pipeline, Summarize]:
    from repro import datasets
    from repro.core.pipeline import PipelineConfig, QuantizationPipeline

    train_size, test_size, epochs = (200, 100, 2) if fast else (600, 300, 8)
    train_set, test_set = datasets.mnist_like(
        train_size=train_size, test_size=test_size, seed=seed
    )
    quant = QuantizationPipeline(
        PipelineConfig(signal_bits=4, weight_bits=4, epochs=epochs, seed=seed)
    )
    pipe = quant.build_pipeline("lenet", train_set, test_set, model_name="lenet")

    def summarize(result: RunResult) -> str:
        return quant.report_from(result, "lenet").summary()

    return pipe, summarize


def _sweep(fast: bool, seed: int) -> Tuple[Pipeline, Summarize]:
    import numpy as np

    from repro import datasets
    from repro.analysis.metrics import evaluate_accuracy
    from repro.core.deployment import DeploymentConfig, deploy_model
    from repro.core.qat import Trainer, TrainerConfig
    from repro.models.registry import build_model

    train_size, test_size, epochs = (200, 100, 2) if fast else (600, 300, 6)
    bits_axis = [5, 4, 3] if fast else [6, 5, 4, 3, 2]
    train_set, test_set = datasets.mnist_like(
        train_size=train_size, test_size=test_size, seed=seed
    )
    base = {"model": "lenet", "epochs": epochs, "seed": seed,
            "train_size": train_size, "test_size": test_size}

    def train() -> object:
        model = build_model("lenet", rng=np.random.default_rng(seed))
        Trainer(TrainerConfig(epochs=epochs, penalty="proposed", bits=4,
                              seed=seed)).fit(model, train_set)
        return model

    def eval_point(params: dict, model: object) -> dict:
        deployed, _ = deploy_model(
            model,
            DeploymentConfig(signal_bits=params["bits"],
                             weight_bits=params["bits"],
                             weight_mode="clustered"),
        )
        return {**params, "accuracy": evaluate_accuracy(deployed, test_set) * 100.0}

    pipe = Pipeline("sweep/bits")
    pipe.step("train", train, config=base)
    pipe.step("points", lambda: [{"bits": b} for b in bits_axis],
              config={**base, "bits_axis": bits_axis})
    pipe.step("evaluate", eval_point, inputs=("points", "train"),
              map_over=True, config=base)

    def summarize(result: RunResult) -> str:
        output = result.output("evaluate")
        lines = [f"bits={row['bits']}: {row['accuracy']:.2f}%"
                 for row in output.results]
        if output.failed_indices:
            lines.append(f"{len(output.failed_indices)} point(s) in the failsink")
        best = max(output.results, key=lambda row: row["accuracy"], default=None)
        if best is not None:
            lines.append(f"best: bits={best['bits']} at {best['accuracy']:.2f}%")
        return "\n".join(lines)

    return pipe, summarize


def _yield(fast: bool, seed: int) -> Tuple[Pipeline, Summarize]:
    import numpy as np

    from repro import datasets
    from repro.models.registry import build_model
    from repro.snc.montecarlo import YieldReport, die_accuracy, programming_image
    from repro.snc.system import SpikingSystemConfig, build_spiking_system

    n_dies, eval_samples, sigma, threshold = (
        (4, 60, 0.15, 0.05) if fast else (12, 200, 0.15, 0.5)
    )
    train_set, test_set = datasets.mnist_like(
        train_size=120, test_size=max(eval_samples, 60), seed=seed
    )
    base = {"model": "lenet", "seed": seed, "sigma": sigma,
            "threshold": threshold, "eval_samples": eval_samples}

    def prepare() -> tuple:
        model = build_model("lenet", rng=np.random.default_rng(seed))
        model.eval()
        system = build_spiking_system(
            model,
            SpikingSystemConfig(signal_bits=4, weight_bits=4, seed=seed),
            train_set.images[:64],
        )
        subset = test_set.subset(min(eval_samples, len(test_set)))
        return system, programming_image(system), subset

    def one_die(die: int, prepared: tuple) -> float:
        system, image, subset = prepared
        return die_accuracy(system, image, subset, sigma, seed + die)

    pipe = Pipeline("yield/montecarlo")
    pipe.step("prepare", prepare, config=base)
    pipe.step("dies", lambda: list(range(n_dies)),
              config={**base, "n_dies": n_dies})
    pipe.step("evaluate", one_die, inputs=("dies", "prepare"), map_over=True,
              item_seed=lambda index, die: seed + die, config=base)

    def summarize(result: RunResult) -> str:
        output = result.output("evaluate")
        report = YieldReport(
            variation_sigma=sigma, threshold=threshold,
            accuracies=list(output.results),
            failed_dies=len(output.failed_indices),
        )
        return report.summary()

    return pipe, summarize


#: name → builder(fast, seed) for every pipeline ``repro run`` accepts.
PIPELINES: Dict[str, Callable[[bool, int], Tuple[Pipeline, Summarize]]] = {
    "quantization": _quantization,
    "sweep": _sweep,
    "yield": _yield,
}


def build_named_pipeline(name: str, fast: bool = False,
                         seed: int = 0) -> Tuple[Pipeline, Summarize]:
    """Build the named pipeline and its result summarizer.

    Raises ``ValueError`` listing the valid names when ``name`` is
    unknown.
    """
    try:
        builder = PIPELINES[name]
    except KeyError:
        raise ValueError(
            f"unknown pipeline {name!r}; available: {', '.join(sorted(PIPELINES))}"
        ) from None
    return builder(fast, seed)
