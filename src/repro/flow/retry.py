"""Retry policy: bounded attempts, exponential backoff, deterministic jitter.

Backoff delays are ``base * 2^(attempt-1)`` capped at ``max_delay``, with
multiplicative jitter drawn from a :func:`repro.snc.seeding.substream`
keyed by ``(seed, step name, attempt)`` — so two runs of the same pipeline
produce *identical* delay schedules, and a chaos test can assert the exact
waits.  No wall clock is consulted anywhere: the runner injects a
:data:`~repro.obs.clock.Clock` to measure and a
:data:`~repro.obs.clock.Sleep` to wait (RL005).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.snc.seeding import substream

__all__ = ["RetryPolicy", "backoff_delay"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try a step and how long to wait between tries.

    ``max_attempts`` counts the first execution: ``max_attempts=1`` means
    no retries.  ``jitter`` is the half-width of the multiplicative noise
    band around each delay (0.2 → delays scaled by a deterministic factor
    in [0.8, 1.2]).  ``retry_unclassified=True`` additionally retries
    exceptions outside the flow taxonomy (default: they are fatal).
    """

    max_attempts: int = 1
    base_delay_s: float = 0.05
    max_delay_s: float = 5.0
    jitter: float = 0.2
    retry_unclassified: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")


def backoff_delay(policy: RetryPolicy, step: str, attempt: int, seed: int) -> float:
    """The deterministic wait before retry number ``attempt`` (1-based).

    ``attempt=1`` is the delay after the first failure.  Identical
    ``(policy, step, attempt, seed)`` always yields the identical delay.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    delay = min(policy.base_delay_s * (2.0 ** (attempt - 1)), policy.max_delay_s)
    if policy.jitter > 0.0 and delay > 0.0:
        rng = substream(seed, f"flow.retry.{step}", (attempt,))
        delay *= 1.0 + policy.jitter * float(rng.uniform(-1.0, 1.0))
    return delay
