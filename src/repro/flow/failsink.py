"""Per-item failure routing: record, skip, and keep the run alive.

A map-style step (one sweep point per item, one Monte-Carlo die per item)
must not lose an entire run to one bad input.  Each failing item becomes a
:class:`FailsinkRecord` — input repr, exception type/message, traceback,
and the *seed* that reproduces it — appended to a :class:`Failsink`.  The
sink keeps records in memory, optionally mirrors them to a JSONL file
(one atomic line per record, flushed immediately so a crash loses at most
the in-flight record), and surfaces counts through the obs registry
(``flow_failsink_records_total{step=...}``) when telemetry is attached.
"""

from __future__ import annotations

import json
import traceback as traceback_module
from dataclasses import asdict, dataclass, field
from typing import IO, List, Optional

__all__ = ["FailsinkRecord", "Failsink"]


@dataclass
class FailsinkRecord:
    """Everything needed to reproduce one skipped item offline."""

    step: str
    index: int
    item: str                    # repr of the failing input
    error_type: str
    message: str
    traceback: str
    seed: Optional[int] = None   # per-item seed, when the step has one

    def to_json(self) -> str:
        """One-line JSON encoding (the JSONL mirror format)."""
        return json.dumps(asdict(self), sort_keys=True)


@dataclass
class Failsink:
    """An append-only sink of :class:`FailsinkRecord`; never raises back."""

    path: Optional[str] = None
    records: List[FailsinkRecord] = field(default_factory=list)
    _handle: Optional[IO[str]] = field(default=None, repr=False, compare=False)

    def record(
        self,
        step: str,
        index: int,
        item: object,
        error: BaseException,
        seed: Optional[int] = None,
    ) -> FailsinkRecord:
        """Capture a failing item; returns the record just written."""
        entry = FailsinkRecord(
            step=step,
            index=index,
            item=repr(item),
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback_module.format_exception(type(error), error, error.__traceback__)
            ),
            seed=seed,
        )
        self.records.append(entry)
        if self.path is not None:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(entry.to_json() + "\n")
            self._handle.flush()
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def count_for(self, step: str) -> int:
        """How many records this sink holds for one step."""
        return sum(1 for r in self.records if r.step == step)

    def close(self) -> None:
        """Close the JSONL mirror (records stay in memory)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Failsink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def summary(self) -> str:
        """Human-readable one-liner for CLI output."""
        if not self.records:
            return "failsink: empty"
        by_step: dict = {}
        for record in self.records:
            by_step[record.step] = by_step.get(record.step, 0) + 1
        parts = ", ".join(f"{step}: {n}" for step, n in sorted(by_step.items()))
        return f"failsink: {len(self.records)} record(s) ({parts})"
