"""Typed error taxonomy for pipeline orchestration.

Every failure the runner handles is sorted into one of three classes,
because each class demands a different response:

- :class:`TransientError` — might succeed on a retry (flaky I/O, a
  seeded-fault die that trips a numeric guard, resource pressure).  The
  runner retries these under the step's :class:`~repro.flow.retry.RetryPolicy`.
- :class:`FatalError` — deterministic; retrying burns time and hides the
  bug.  The runner fails the step (and the run) immediately.
- :class:`CorruptCheckpointError` — a persisted artifact failed its
  integrity check.  The runner discards it and *recomputes* the step
  instead of loading garbage.

Exceptions outside the taxonomy (a stray ``ValueError`` from user step
code) are classified by :func:`classify_error`; by default they count as
fatal — retrying an unknown deterministic bug is how flaky pipelines are
born — but a :class:`~repro.flow.retry.RetryPolicy` can opt in to
retrying them (``retry_unclassified=True``).
"""

from __future__ import annotations

__all__ = [
    "FlowError",
    "TransientError",
    "FatalError",
    "CorruptCheckpointError",
    "StepTimeout",
    "StepFailed",
    "classify_error",
]


class FlowError(Exception):
    """Base class for every orchestration-layer error."""


class TransientError(FlowError):
    """A failure that may clear on retry; the runner retries it."""


class FatalError(FlowError):
    """A deterministic failure; retrying would only hide the bug."""


class CorruptCheckpointError(FlowError):
    """A checkpoint failed its digest check; recompute, never load."""


class StepTimeout(TransientError):
    """A step attempt exceeded its time budget (retryable)."""

    def __init__(self, step: str, elapsed_s: float, timeout_s: float) -> None:
        super().__init__(
            f"step {step!r} took {elapsed_s:.3f}s, over its "
            f"{timeout_s:.3f}s budget"
        )
        self.step = step
        self.elapsed_s = elapsed_s
        self.timeout_s = timeout_s


class StepFailed(FlowError):
    """Terminal verdict on a step: every permitted attempt failed.

    Carries the step name, the attempt count, and the final underlying
    exception (also chained as ``__cause__``).
    """

    def __init__(self, step: str, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"step {step!r} failed after {attempts} attempt(s): "
            f"{type(cause).__name__}: {cause}"
        )
        self.step = step
        self.attempts = attempts
        self.cause = cause


def classify_error(error: BaseException, retry_unclassified: bool = False) -> str:
    """Sort an exception into ``"transient"``, ``"fatal"``, or ``"corrupt"``.

    Taxonomy subclasses classify themselves; ``MemoryError`` and
    ``OSError`` are treated as transient (resource pressure / flaky I/O
    are exactly what retries exist for); everything else is fatal unless
    ``retry_unclassified`` says otherwise.
    """
    if isinstance(error, CorruptCheckpointError):
        return "corrupt"
    if isinstance(error, TransientError):
        return "transient"
    if isinstance(error, FatalError):
        return "fatal"
    if isinstance(error, (MemoryError, OSError)):
        return "transient"
    return "transient" if retry_unclassified else "fatal"
