"""repro.flow — crash-safe pipeline orchestration.

A checkpointed DAG runner with first-class robustness semantics:

- content-addressed checkpoints (resume-after-crash, selective ``force``
  invalidation, digest-verified loads) — :mod:`repro.flow.checkpoint`;
- a typed error taxonomy (transient / fatal / corrupt) —
  :mod:`repro.flow.errors`;
- bounded retries with deterministic backoff + jitter —
  :mod:`repro.flow.retry`;
- per-item failsink routing for map-style steps —
  :mod:`repro.flow.failsink`;
- a deterministic chaos harness that proves all of the above —
  :mod:`repro.flow.chaos`.

Typical use::

    from repro.flow import CheckpointStore, FlowRunner, Pipeline, RetryPolicy

    pipe = Pipeline("study")
    pipe.step("train", train_fn, config={"epochs": 10, "seed": 0})
    pipe.step("evaluate", eval_fn, inputs=("train",))

    runner = FlowRunner(store=CheckpointStore(".flow_runs/study"),
                        retry=RetryPolicy(max_attempts=3))
    result = runner.run(pipe)          # crash here? rerun resumes.
    accuracy = result.output("evaluate")

The named pipelines behind ``repro run <pipeline>`` live in
:mod:`repro.flow.pipelines`.
"""

from __future__ import annotations

from .checkpoint import CheckpointStore, canonical_config, step_key
from .chaos import (
    ChaosInjected,
    ClockStall,
    FlakyCalls,
    corrupt_checkpoint,
    fault_schedule,
    faulty,
    truncate_checkpoint,
)
from .errors import (
    CorruptCheckpointError,
    FatalError,
    FlowError,
    StepFailed,
    StepTimeout,
    TransientError,
    classify_error,
)
from .failsink import Failsink, FailsinkRecord
from .retry import RetryPolicy, backoff_delay
from .runner import FlowRunner, MapOutput, Pipeline, RunResult, Step, StepResult, run_map

__all__ = [
    # runner
    "Pipeline",
    "Step",
    "FlowRunner",
    "RunResult",
    "StepResult",
    "MapOutput",
    "run_map",
    # checkpoints
    "CheckpointStore",
    "step_key",
    "canonical_config",
    # errors
    "FlowError",
    "TransientError",
    "FatalError",
    "CorruptCheckpointError",
    "StepTimeout",
    "StepFailed",
    "classify_error",
    # retry
    "RetryPolicy",
    "backoff_delay",
    # failsink
    "Failsink",
    "FailsinkRecord",
    # chaos
    "ChaosInjected",
    "FlakyCalls",
    "ClockStall",
    "fault_schedule",
    "faulty",
    "corrupt_checkpoint",
    "truncate_checkpoint",
]
