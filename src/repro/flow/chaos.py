"""Deterministic fault injection: the harness that proves the runner.

Chaos here is *scheduled*, never random-at-runtime: every injector is
driven by an explicit call count or a :func:`repro.snc.seeding.substream`
seed, so a failing chaos test replays exactly.  The injectors cover the
three failure families the runner claims to survive:

- **crashes** — :class:`FlakyCalls` raises on chosen call numbers
  (raise-on-Nth), which simulates a step dying mid-pipeline; re-running
  the pipeline afterwards proves resume-after-crash;
- **checkpoint rot** — :func:`corrupt_checkpoint` /
  :func:`truncate_checkpoint` damage persisted blobs in place, proving
  digest verification catches them and the runner recomputes;
- **stalls** — :class:`ClockStall` advances a
  :class:`~repro.obs.clock.FakeClock` from inside a step, deterministically
  tripping the cooperative timeout path.

:func:`fault_schedule` picks which items of a map-style step fail, as a
seed-derived index set — e.g. "10% of dies blow up" — so tests can assert
the failsink holds *exactly* the injected items.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Collection, FrozenSet, Optional

from repro.obs.clock import FakeClock
from repro.snc.seeding import substream

from .errors import TransientError

__all__ = [
    "ChaosInjected",
    "FlakyCalls",
    "ClockStall",
    "fault_schedule",
    "faulty",
    "corrupt_checkpoint",
    "truncate_checkpoint",
]


class ChaosInjected(TransientError):
    """The exception every injector raises by default (retryable)."""


class FlakyCalls:
    """Wrap a callable; raise on chosen call numbers (1-based).

    ``FlakyCalls(fn, fail_on={1, 2})`` fails the first two calls and
    succeeds afterwards — the canonical "transient blip" for retry tests.
    ``fail_on=range(1, 10**9)`` (or any large range) models a hard crash.
    ``calls`` counts every invocation, so tests can assert how often the
    runner really called the step.
    """

    def __init__(
        self,
        fn: Callable[..., Any],
        fail_on: Collection[int],
        error: Optional[Callable[[int], BaseException]] = None,
    ) -> None:
        self.fn = fn
        # Keep ranges lazy: ``range(1, 10**9)`` is the documented idiom for
        # "always fail", and membership on a range is O(1) anyway.
        self.fail_on = (
            fail_on if isinstance(fail_on, range)
            else frozenset(int(n) for n in fail_on)
        )
        self.error = error or (lambda n: ChaosInjected(f"injected fault on call {n}"))
        self.calls = 0

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        self.calls += 1
        if self.calls in self.fail_on:
            raise self.error(self.calls)
        return self.fn(*args, **kwargs)


class ClockStall:
    """Wrap a callable; stall a :class:`FakeClock` during each call.

    The stall happens *inside* the step, so the runner's before/after
    clock readings straddle it — the deterministic way to exercise the
    cooperative timeout path without sleeping.
    """

    def __init__(self, fn: Callable[..., Any], clock: FakeClock, stall_s: float) -> None:
        self.fn = fn
        self.clock = clock
        self.stall_s = float(stall_s)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        value = self.fn(*args, **kwargs)
        self.clock.advance(self.stall_s)
        return value


def fault_schedule(n_items: int, fraction: float, seed: int,
                   token: str = "chaos.items") -> FrozenSet[int]:
    """A deterministic set of item indices to fail.

    ``round(n_items * fraction)`` distinct indices drawn without
    replacement from ``substream(seed, token)`` — identical arguments
    always schedule identical faults.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    n_faults = int(round(n_items * fraction))
    if n_faults == 0:
        return frozenset()
    rng = substream(seed, token)
    picks = rng.choice(n_items, size=n_faults, replace=False)
    return frozenset(int(i) for i in picks)


def faulty(fn: Callable[[Any], Any], schedule: Collection[int]) -> Callable[[Any], Any]:
    """Per-item injector: fail when the item's *ordinal* is scheduled.

    Returns a wrapper suitable as a map-step ``fn``; the Nth invocation
    (0-based) raises :class:`ChaosInjected` iff ``N in schedule``.
    """
    scheduled = frozenset(int(n) for n in schedule)
    counter = {"n": -1}

    def wrapper(item: Any) -> Any:
        counter["n"] += 1
        if counter["n"] in scheduled:
            raise ChaosInjected(f"injected item fault at index {counter['n']}")
        return fn(item)

    return wrapper


def corrupt_checkpoint(path: str, offset: int = -1) -> None:
    """Flip one byte of a checkpoint file in place (digest now fails).

    ``offset`` indexes into the file (negative = from the end, default:
    last byte, i.e. inside the payload).
    """
    with open(path, "rb") as handle:
        raw = bytearray(handle.read())
    if not raw:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    raw[offset] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(raw))


def truncate_checkpoint(path: str, keep_bytes: Optional[int] = None) -> None:
    """Truncate a checkpoint file, simulating a crash mid-write.

    Defaults to keeping half the file.  (The runner's own writes are
    atomic, so this models *external* damage — a full disk, a copied
    partial file — which digest verification must still catch.)
    """
    size = os.path.getsize(path)
    keep = size // 2 if keep_bytes is None else keep_bytes
    with open(path, "rb+") as handle:
        handle.truncate(keep)
