"""The checkpointed DAG runner.

A :class:`Pipeline` is an ordered DAG of :class:`Step` objects; each step
declares the upstream steps it consumes, a config dict (part of its
content address), and optional robustness knobs (retry policy, timeout,
map-style failsink routing).  A :class:`FlowRunner` executes the DAG:

- **resume** — with a :class:`~repro.flow.checkpoint.CheckpointStore`
  attached, each step's output is persisted under its content address
  (:func:`~repro.flow.checkpoint.step_key`); re-running the same pipeline
  loads completed steps instead of re-executing them, and a corrupted
  checkpoint (digest mismatch) is detected and recomputed, never loaded;
- **retry** — transient failures are retried under the step's
  :class:`~repro.flow.retry.RetryPolicy` with deterministic exponential
  backoff (injected :data:`~repro.obs.clock.Clock` /
  :data:`~repro.obs.clock.Sleep` — the runner never touches ``time.*``);
- **timeouts** — cooperative: the injected clock measures each attempt,
  and an attempt that overran its budget is discarded and retried as a
  :class:`~repro.flow.errors.StepTimeout` (deterministically testable via
  a stalled :class:`~repro.obs.clock.FakeClock`);
- **failsink** — map-style steps route per-item failures to a
  :class:`~repro.flow.failsink.Failsink` instead of aborting, recording
  input, exception, traceback, and per-item seed.

Counts for all of the above surface through the obs registry when a
:class:`~repro.obs.Telemetry` is attached (``flow_steps_total``,
``flow_step_retries_total``, ``flow_failsink_records_total``,
``flow_checkpoint_corrupt_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import Telemetry
from repro.obs.clock import SYSTEM_CLOCK, SYSTEM_SLEEP, Clock, Sleep

from .checkpoint import CheckpointStore, step_key
from .errors import (
    CorruptCheckpointError,
    FatalError,
    StepFailed,
    StepTimeout,
    classify_error,
)
from .failsink import Failsink
from .retry import RetryPolicy, backoff_delay

__all__ = [
    "Step",
    "Pipeline",
    "StepResult",
    "RunResult",
    "FlowRunner",
    "MapOutput",
    "run_map",
]


@dataclass
class Step:
    """One node of the DAG.

    ``fn`` receives the outputs of ``inputs`` positionally, in declared
    order.  ``config`` is hashed into the step's content address — put
    every knob that changes the output there, and nothing else.  A
    ``map_over`` step treats its *first* input's output as a sequence and
    applies ``fn`` per item, routing per-item failures to the run's
    failsink (``on_item_error="failsink"``) instead of aborting;
    ``item_seed(index, item)`` lets the failsink record carry the seed
    that reproduces a failing item.
    """

    name: str
    fn: Callable[..., Any]
    inputs: Tuple[str, ...] = ()
    config: Dict[str, Any] = field(default_factory=dict)
    retry: Optional[RetryPolicy] = None
    timeout_s: Optional[float] = None
    map_over: bool = False
    on_item_error: str = "failsink"
    item_seed: Optional[Callable[[int, Any], Optional[int]]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("step name must be non-empty")
        if self.map_over and not self.inputs:
            raise ValueError(f"map step {self.name!r} needs at least one input")
        if self.on_item_error not in ("failsink", "raise"):
            raise ValueError(
                f"on_item_error must be 'failsink' or 'raise', got {self.on_item_error!r}"
            )


class Pipeline:
    """An insertion-ordered DAG of named steps.

    ``add`` validates that names are unique and that every declared input
    refers to an already-added step — which makes the insertion order a
    topological order by construction, and cycles unrepresentable.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._steps: Dict[str, Step] = {}

    def add(self, step: Step) -> Step:
        """Append a step; returns it for chaining."""
        if step.name in self._steps:
            raise ValueError(f"duplicate step name {step.name!r}")
        for upstream in step.inputs:
            if upstream not in self._steps:
                raise ValueError(
                    f"step {step.name!r} consumes unknown step {upstream!r} "
                    "(inputs must be added before their consumers)"
                )
        self._steps[step.name] = step
        return step

    def step(self, name: str, fn: Callable[..., Any], **kwargs: Any) -> Step:
        """Convenience: build and :meth:`add` a :class:`Step` in one call."""
        return self.add(Step(name=name, fn=fn, **kwargs))

    @property
    def steps(self) -> List[Step]:
        """Steps in topological (= insertion) order."""
        return list(self._steps.values())

    def __getitem__(self, name: str) -> Step:
        """Look up a step by name (chaos harnesses wrap ``step.fn``)."""
        return self._steps[name]

    def __contains__(self, name: str) -> bool:
        return name in self._steps

    def __len__(self) -> int:
        return len(self._steps)


@dataclass
class MapOutput:
    """Result of a map-style step over ``n_items`` inputs.

    ``results`` holds the outputs of the items that succeeded, aligned
    with ``indices`` (their positions in the input sequence);
    ``failed_indices`` are the items routed to the failsink.
    """

    results: List[Any] = field(default_factory=list)
    indices: List[int] = field(default_factory=list)
    failed_indices: List[int] = field(default_factory=list)

    @property
    def n_items(self) -> int:
        """Total items offered to the step."""
        return len(self.indices) + len(self.failed_indices)


@dataclass
class StepResult:
    """What happened to one step during one run."""

    name: str
    status: str                  # "executed" | "cached" | "failed"
    value: Any = None
    key: Optional[str] = None
    digest: Optional[str] = None
    attempts: int = 0
    duration_s: float = 0.0
    error: Optional[BaseException] = None


@dataclass
class RunResult:
    """Outcome of one :meth:`FlowRunner.run` invocation."""

    pipeline: str
    steps: Dict[str, StepResult] = field(default_factory=dict)
    failsink: Optional[Failsink] = None

    def output(self, name: str) -> Any:
        """The output value of a completed step."""
        result = self.steps[name]
        if result.status == "failed":
            raise StepFailed(name, result.attempts, result.error)  # pragma: no cover
        return result.value

    @property
    def executed(self) -> List[str]:
        """Names of steps that actually ran (cache misses), in order."""
        return [r.name for r in self.steps.values() if r.status == "executed"]

    @property
    def cached(self) -> List[str]:
        """Names of steps satisfied from checkpoints, in order."""
        return [r.name for r in self.steps.values() if r.status == "cached"]


class FlowRunner:
    """Executes pipelines with resume, retry, timeout, and failsink semantics.

    ``store=None`` disables checkpointing (every step executes, nothing
    persists) — the mode in-process callers like
    :class:`~repro.core.pipeline.QuantizationPipeline` default to.
    ``seed`` keys the deterministic retry jitter.
    """

    def __init__(
        self,
        store: Optional[CheckpointStore] = None,
        retry: Optional[RetryPolicy] = None,
        failsink: Optional[Failsink] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Clock = SYSTEM_CLOCK,
        sleep: Sleep = SYSTEM_SLEEP,
        seed: int = 0,
    ) -> None:
        self.store = store
        self.default_retry = retry if retry is not None else RetryPolicy()
        self.failsink = failsink if failsink is not None else Failsink()
        self.telemetry = telemetry
        self.clock = clock
        self.sleep = sleep
        self.seed = seed

    # -- telemetry ----------------------------------------------------------
    def _count(self, name: str, help: str, **labels: str) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.counter(name, help, **labels).inc()

    def _mark_failsink(self, step: str) -> None:
        self._count("flow_failsink_records_total",
                    "items routed to the failsink instead of aborting",
                    step=step)
        if self.telemetry is not None:
            self.telemetry.registry.gauge(
                "flow_failsink_size", "records currently held by the failsink"
            ).set(float(len(self.failsink)))

    # -- execution ----------------------------------------------------------
    def run(
        self,
        pipeline: Pipeline,
        resume: bool = True,
        force: Union[bool, Iterable[str]] = False,
    ) -> RunResult:
        """Run every step; resume from checkpoints where possible.

        ``force=True`` recomputes everything; ``force={names}``
        invalidates just those steps (downstream steps recompute only if
        the forced step's output digest actually changes).  Raises
        :class:`StepFailed` when a step exhausts its attempts — completed
        steps keep their checkpoints, so the next run resumes after them.
        """
        forced = set() if force in (False, True) else set(force)
        force_all = force is True
        result = RunResult(pipeline=pipeline.name, failsink=self.failsink)
        digests: Dict[str, str] = {}

        for step in pipeline.steps:
            upstream_values = [result.output(name) for name in step.inputs]
            key: Optional[str] = None
            if self.store is not None:
                upstream_digests = {name: digests[name] for name in step.inputs}
                key = step_key(step.name, step.config, upstream_digests)
                if force_all or step.name in forced:
                    self.store.invalidate(key)
                elif resume and self.store.has(key):
                    try:
                        value, digest = self.store.load(key)
                    except CorruptCheckpointError:
                        self._count(
                            "flow_checkpoint_corrupt_total",
                            "checkpoints that failed integrity checks and were recomputed",
                            step=step.name,
                        )
                        self.store.invalidate(key)
                    else:
                        digests[step.name] = digest
                        result.steps[step.name] = StepResult(
                            name=step.name, status="cached", value=value,
                            key=key, digest=digest,
                        )
                        self._count("flow_steps_total", "step outcomes by status",
                                    status="cached")
                        continue

            step_result = self._execute(step, upstream_values)
            step_result.key = key
            result.steps[step.name] = step_result
            if step_result.status == "failed":
                self._count("flow_steps_total", "step outcomes by status",
                            status="failed")
                raise StepFailed(step.name, step_result.attempts, step_result.error)
            if self.store is not None:
                digest = self.store.save(key, step_result.value)
                step_result.digest = digest
                digests[step.name] = digest
            self._count("flow_steps_total", "step outcomes by status",
                        status="executed")
        return result

    def _execute(self, step: Step, upstream_values: Sequence[Any]) -> StepResult:
        """Run one step's attempts; never raises, reports via status."""
        policy = step.retry if step.retry is not None else self.default_retry
        result = StepResult(name=step.name, status="executed")
        started = self.clock()
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            result.attempts = attempt
            attempt_start = self.clock()
            try:
                value = self._call(step, upstream_values)
                elapsed = self.clock() - attempt_start
                if step.timeout_s is not None and elapsed > step.timeout_s:
                    raise StepTimeout(step.name, elapsed, step.timeout_s)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                last_error = error
                verdict = classify_error(error, policy.retry_unclassified)
                if verdict != "transient" or attempt == policy.max_attempts:
                    break
                self._count("flow_step_retries_total",
                            "transient step failures that were retried",
                            step=step.name)
                self.sleep(backoff_delay(policy, step.name, attempt, self.seed))
            else:
                result.value = value
                result.duration_s = self.clock() - started
                return result
        result.status = "failed"
        result.error = last_error
        result.duration_s = self.clock() - started
        return result

    def _call(self, step: Step, upstream_values: Sequence[Any]) -> Any:
        if not step.map_over:
            return step.fn(*upstream_values)
        items, rest = upstream_values[0], upstream_values[1:]
        return run_map(
            lambda item: step.fn(item, *rest),
            items,
            step=step.name,
            failsink=self.failsink if step.on_item_error == "failsink" else None,
            on_error=step.on_item_error,
            item_seed=step.item_seed,
            on_record=self._mark_failsink,
        )


def run_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    step: str = "map",
    failsink: Optional[Failsink] = None,
    on_error: str = "failsink",
    item_seed: Optional[Callable[[int, Any], Optional[int]]] = None,
    on_record: Optional[Callable[[str], None]] = None,
) -> MapOutput:
    """Apply ``fn`` to every item, routing failures to a failsink.

    The shared map-execution primitive: :class:`FlowRunner` map steps,
    :func:`repro.analysis.sweep.run_sweep`, and
    :func:`repro.snc.montecarlo.estimate_yield` all funnel through it.
    ``on_error="raise"`` propagates the first failure (strict mode);
    ``"failsink"`` records it — with the item's seed when ``item_seed``
    provides one — and moves on.  ``KeyboardInterrupt``/``SystemExit``
    always propagate.
    """
    if on_error not in ("failsink", "raise"):
        raise ValueError(f"on_error must be 'failsink' or 'raise', got {on_error!r}")
    sink = failsink if failsink is not None else Failsink()
    output = MapOutput()
    for index, item in enumerate(items):
        try:
            value = fn(item)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as error:
            if on_error == "raise":
                raise
            seed = item_seed(index, item) if item_seed is not None else None
            sink.record(step, index, item, error, seed=seed)
            if on_record is not None:
                on_record(step)
            output.failed_indices.append(index)
        else:
            output.results.append(value)
            output.indices.append(index)
    return output
