"""repro — reproduction of "Towards Accurate and High-Speed Spiking
Neuromorphic Systems with Data Quantization-Aware Deep Networks"
(F. Liu and C. Liu, DAC 2018).

The package is organised in five layers:

- :mod:`repro.nn` — a from-scratch numpy autograd deep-learning framework
  (the paper's Torch substrate).
- :mod:`repro.models` — the three network families evaluated by the paper
  (LeNet, AlexNet-for-CIFAR, ResNet-for-CIFAR).
- :mod:`repro.datasets` — deterministic synthetic MNIST-like and CIFAR-like
  datasets (this environment has no network access to the real ones).
- :mod:`repro.core` — the paper's contribution: Neuron Convergence
  (activation-range regularization, Sec. 3.1), Weight Clustering (fixed-point
  weight quantization, Sec. 3.2), the baseline quantizers, and the end-to-end
  quantization-aware pipeline.
- :mod:`repro.snc` — the memristor-based spiking neuromorphic substrate:
  device model, crossbar arrays, network-to-crossbar mapping, rate-coded
  spiking inference, and the speed/energy/area cost model behind Table 5.

Quickstart::

    from repro import datasets, models
    from repro.core import QuantizationPipeline, PipelineConfig

    train, test = datasets.mnist_like(train_size=2000, test_size=500)
    model = models.LeNet(width_multiplier=0.5)
    pipeline = QuantizationPipeline(PipelineConfig(signal_bits=4, weight_bits=4))
    report = pipeline.run(model, train, test)
    print(report.summary())
"""

from repro.version import __version__

__all__ = ["__version__"]
