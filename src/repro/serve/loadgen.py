"""Deterministic closed-loop load generator for serving benchmarks.

Drives a :class:`~repro.serve.server.ModelServer` with ``clients``
threads, each submitting requests back-to-back (closed loop: a client
never has more than one request in flight, so offered load scales with
client count and observed latency — the standard way to measure a
server's throughput/latency trade-off without open-loop coordination
omission).

Reproducibility: request sizes and image offsets come from
:func:`repro.snc.seeding.substream` keyed by ``(seed, client, request)``
— RL001-compliant (no global RNG), and independent of thread scheduling,
so two runs against the same server offer the *same* request sequence
per client even though arrival interleaving differs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.snc.seeding import substream

__all__ = [
    "LoadGenConfig",
    "LoadReport",
    "StreamLoadConfig",
    "StreamLoadReport",
    "plan_requests",
    "plan_streams",
    "request_substream_key",
    "run_load",
    "run_stream_load",
    "stream_substream_key",
]

#: Substream token for frame-request planning (with ``(client, index)``).
REQUEST_TOKEN = "serve.loadgen"
#: Substream token for event-stream generation (with ``(client, index)``).
STREAM_TOKEN = "serve.loadgen.stream"


@dataclass
class LoadGenConfig:
    """Shape of the offered load.

    ``min_rows``/``max_rows`` bound the per-request image count
    (uniformly drawn from the request's substream); ``deadline_ms``
    forwards an SLO deadline with every request.
    """

    clients: int = 4
    requests_per_client: int = 32
    min_rows: int = 1
    max_rows: int = 16
    deadline_ms: Optional[float] = None
    seed: int = 0
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.requests_per_client < 1:
            raise ValueError(
                f"requests_per_client must be >= 1, got {self.requests_per_client}"
            )
        if not 1 <= self.min_rows <= self.max_rows:
            raise ValueError(
                f"need 1 <= min_rows <= max_rows, got {self.min_rows}..{self.max_rows}"
            )


@dataclass
class LoadReport:
    """What one load run measured."""

    clients: int
    requests_sent: int
    requests_ok: int
    requests_rejected: int
    requests_deadline_expired: int
    requests_failed: int
    rows_served: int
    wall_s: float
    latencies_s: List[float] = field(default_factory=list)
    #: Per-request provenance: ``{"client", "index", "offset", "rows",
    #: "substream"}`` for every *scheduled* request, in schedule order.
    #: The ``substream`` entry is the exact :func:`request_substream_key`
    #: that generated the request, so any single request can be rebuilt
    #: in isolation without replanning the whole run.
    request_log: List[dict] = field(default_factory=list)

    @property
    def throughput_rows_per_s(self) -> float:
        """Served image rows per wall-clock second."""
        return self.rows_served / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def throughput_requests_per_s(self) -> float:
        """Completed requests per wall-clock second."""
        return self.requests_ok / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        """A latency percentile over successful requests, in ms."""
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(np.array(self.latencies_s), percentile) * 1e3)

    def to_dict(self) -> dict:
        """A JSON-ready summary (percentiles, not raw samples)."""
        return {
            "clients": self.clients,
            "requests_sent": self.requests_sent,
            "requests_ok": self.requests_ok,
            "requests_rejected": self.requests_rejected,
            "requests_deadline_expired": self.requests_deadline_expired,
            "requests_failed": self.requests_failed,
            "rows_served": self.rows_served,
            "wall_s": self.wall_s,
            "throughput_rows_per_s": self.throughput_rows_per_s,
            "throughput_requests_per_s": self.throughput_requests_per_s,
            "latency_p50_ms": self.latency_ms(50),
            "latency_p99_ms": self.latency_ms(99),
            "request_log": list(self.request_log),
        }


def request_substream_key(config: LoadGenConfig, client: int, index: int) -> dict:
    """The exact seeding key behind one scheduled request.

    ``substream(**key_without_the_doc_fields)`` — i.e.
    ``substream(seed, token, coordinates)`` — reproduces the request's
    RNG in isolation, with no need to replan the other requests.
    """
    return {
        "seed": config.seed,
        "token": REQUEST_TOKEN,
        "coordinates": [client, index],
    }


def _plan_one(config: LoadGenConfig, image_pool_size: int,
              client: int, index: int) -> tuple:
    rng = substream(config.seed, REQUEST_TOKEN, (client, index))
    rows = int(rng.integers(config.min_rows, config.max_rows + 1))
    rows = min(rows, image_pool_size)
    offset = int(rng.integers(0, image_pool_size - rows + 1))
    return (offset, rows)


def plan_requests(config: LoadGenConfig, image_pool_size: int) -> List[List[tuple]]:
    """The deterministic request schedule: per client, ``(offset, rows)``.

    Exposed separately so tests (and bit-exactness checks) can replay
    the exact slices a load run submitted.
    """
    return [
        [
            _plan_one(config, image_pool_size, client, index)
            for index in range(config.requests_per_client)
        ]
        for client in range(config.clients)
    ]


def run_load(server, images: np.ndarray, config: LoadGenConfig) -> LoadReport:
    """Offer the configured closed-loop load to ``server``; measure it.

    ``images`` is the pool request payloads are sliced from.  Rejected
    submissions (:class:`~repro.serve.queue.ServerOverloaded`) and
    expired deadlines (:class:`~repro.serve.queue.DeadlineExceeded`) are
    counted, not raised — shedding load is the behaviour under test.
    """
    from repro.serve.queue import DeadlineExceeded, ServerOverloaded

    schedule = plan_requests(config, len(images))
    report = LoadReport(
        clients=config.clients,
        requests_sent=0, requests_ok=0, requests_rejected=0,
        requests_deadline_expired=0, requests_failed=0,
        rows_served=0, wall_s=0.0,
    )
    # Provenance is a property of the schedule, not the run — record it
    # up front so even rejected/failed requests stay reproducible.
    report.request_log = [
        {
            "client": client,
            "index": index,
            "offset": offset,
            "rows": rows,
            "substream": request_substream_key(config, client, index),
        }
        for client, plan in enumerate(schedule)
        for index, (offset, rows) in enumerate(plan)
    ]
    lock = threading.Lock()

    def client_loop(client: int) -> None:
        for offset, rows in schedule[client]:
            payload = images[offset : offset + rows]
            start = time.perf_counter()
            try:
                with lock:
                    report.requests_sent += 1
                logits = server.submit(
                    payload,
                    deadline_ms=config.deadline_ms,
                    timeout=config.timeout_s,
                )
                latency = time.perf_counter() - start
                with lock:
                    report.requests_ok += 1
                    report.rows_served += len(logits)
                    report.latencies_s.append(latency)
            except ServerOverloaded:
                with lock:
                    report.requests_rejected += 1
            except DeadlineExceeded:
                with lock:
                    report.requests_deadline_expired += 1
            except Exception:
                with lock:
                    report.requests_failed += 1

    threads = [
        threading.Thread(target=client_loop, args=(client,), daemon=True,
                         name=f"repro-loadgen-{client}")
        for client in range(config.clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - wall_start
    return report


# ---------------------------------------------------------------------------
# Event-stream traffic mode
# ---------------------------------------------------------------------------

@dataclass
class StreamLoadConfig:
    """Shape of an event-stream (session) load.

    Each client opens one streaming session per generated stream and
    serves it end-to-end (closed loop).  Streams come from
    :func:`repro.datasets.event_stream.generate_event_stream`, seeded
    per ``(client, index)`` via :data:`STREAM_TOKEN` — so any individual
    stream is reproducible in isolation from its recorded key.
    """

    clients: int = 2
    streams_per_client: int = 4
    duration_us: int = 100_000
    seed: int = 0
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"clients must be >= 1, got {self.clients}")
        if self.streams_per_client < 1:
            raise ValueError(
                f"streams_per_client must be >= 1, got {self.streams_per_client}"
            )
        if self.duration_us < 1:
            raise ValueError(f"duration_us must be >= 1, got {self.duration_us}")


@dataclass
class StreamLoadReport:
    """What one event-stream load run measured."""

    clients: int
    streams_sent: int
    streams_ok: int
    streams_failed: int
    windows_served: int
    predictions_correct: int
    wall_s: float
    session_latencies_s: List[float] = field(default_factory=list)
    #: Per-stream provenance mirroring :attr:`LoadReport.request_log`:
    #: ``{"client", "index", "label", "events", "substream"}``.
    stream_log: List[dict] = field(default_factory=list)

    @property
    def windows_per_second(self) -> float:
        """Served event windows per wall-clock second."""
        return self.windows_served / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms(self, percentile: float) -> float:
        """A whole-session latency percentile (push → decision), in ms."""
        if not self.session_latencies_s:
            return float("nan")
        return float(
            np.percentile(np.array(self.session_latencies_s), percentile) * 1e3
        )

    def to_dict(self) -> dict:
        """A JSON-ready summary (percentiles, not raw samples)."""
        return {
            "clients": self.clients,
            "streams_sent": self.streams_sent,
            "streams_ok": self.streams_ok,
            "streams_failed": self.streams_failed,
            "windows_served": self.windows_served,
            "predictions_correct": self.predictions_correct,
            "wall_s": self.wall_s,
            "windows_per_second": self.windows_per_second,
            "session_p50_ms": self.latency_ms(50),
            "session_p99_ms": self.latency_ms(99),
            "stream_log": list(self.stream_log),
        }


def stream_substream_key(config: StreamLoadConfig, client: int, index: int) -> dict:
    """The exact seeding key behind one generated event stream."""
    return {
        "seed": config.seed,
        "token": STREAM_TOKEN,
        "coordinates": [client, index],
    }


def plan_streams(config: StreamLoadConfig) -> List[List]:
    """Deterministic per-client event streams (independent of scheduling).

    Regenerating with the same config yields byte-identical streams;
    a single stream can be rebuilt from its
    :func:`stream_substream_key` alone.
    """
    from repro.datasets.event_stream import NUM_CLASSES, generate_event_stream

    schedule: List[List] = []
    for client in range(config.clients):
        plan = []
        for index in range(config.streams_per_client):
            rng = substream(config.seed, STREAM_TOKEN, (client, index))
            label = int(rng.integers(0, NUM_CLASSES))
            plan.append(generate_event_stream(
                label, rng, duration_us=config.duration_us))
        schedule.append(plan)
    return schedule


def run_stream_load(streaming, config: StreamLoadConfig) -> StreamLoadReport:
    """Offer closed-loop event-stream traffic to a
    :class:`~repro.serve.stream.StreamingServer`; measure it.

    Each client thread serves its planned streams one session at a time
    (push → finish → decision).  Failures are counted, not raised.
    """
    schedule = plan_streams(config)
    report = StreamLoadReport(
        clients=config.clients,
        streams_sent=0, streams_ok=0, streams_failed=0,
        windows_served=0, predictions_correct=0, wall_s=0.0,
    )
    report.stream_log = [
        {
            "client": client,
            "index": index,
            "label": stream.label,
            "events": len(stream.t),
            "substream": stream_substream_key(config, client, index),
        }
        for client, plan in enumerate(schedule)
        for index, stream in enumerate(plan)
    ]
    lock = threading.Lock()

    def client_loop(client: int) -> None:
        for stream in schedule[client]:
            start = time.perf_counter()
            try:
                with lock:
                    report.streams_sent += 1
                result = streaming.serve_stream(stream, timeout=config.timeout_s)
                latency = time.perf_counter() - start
                with lock:
                    report.streams_ok += 1
                    report.windows_served += result.total_windows
                    report.predictions_correct += int(result.correct)
                    report.session_latencies_s.append(latency)
            except Exception:
                with lock:
                    report.streams_failed += 1

    threads = [
        threading.Thread(target=client_loop, args=(client,), daemon=True,
                         name=f"repro-streamgen-{client}")
        for client in range(config.clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - wall_start
    return report
