"""Multi-process replica pool: one engine per worker *process*.

BENCH_PR4 showed the threaded :class:`~repro.serve.pool.ReplicaPool` is
serialized by the interpreter, not by compute — adding workers bought
nothing.  This pool moves each replica into its own OS process so plan
replay runs on a private interpreter, and keeps the serving contract
(bit-exact scatter, degraded-mode fallback, graceful drain) intact:

- **spec, not factory** — a worker is built from a picklable
  :class:`WorkerSpec` (the deployed module's bytes plus engine-config
  overrides); every worker traces its own
  :class:`~repro.runtime.engine.InferenceEngine` plan and owns its own
  buffer pools.
- **shared-memory data plane** — the dispatcher leases a
  generation-tagged range from the :class:`~repro.serve.shm.
  SlabAllocator`, copies the micro-batch rows in once, and the worker
  reads them as a zero-copy numpy view; logits come back through the
  worker's private :class:`~repro.serve.shm.SpscRing`.  Only tiny
  descriptors cross the control pipe — activations are never pickled.
- **health folded into the guard path** — a heartbeat rides on every
  reply; every ``probe_every_batches`` dispatches the worker must also
  reproduce the expected logits of a functional probe vector (same
  in-range random-stimulus idea as :mod:`repro.snc.diagnosis`; a
  hardware fault there and a corrupted worker here are the same failure
  class).  A dead worker is respawned up to ``max_restarts`` times; a
  worker that stays dead, or fails its probe, demotes to the in-process
  guarded fallback — requests keep being answered, bit-exactly, just
  slower.
- **no lost or duplicated responses** — an in-flight batch whose worker
  dies is retried exactly once through the restarted worker or the
  fallback; futures complete once (first completion wins), and the
  batch's lease is recycled only after the reply or the death
  certificate, so shared memory can never be scribbled mid-read.

The pool plugs in behind :class:`~repro.serve.server.ModelServer` as
``ServeConfig(pool="process")``; the admission queue and micro-batcher
are exactly the ones the thread pool uses.
"""

from __future__ import annotations

import os
import pickle
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import SYSTEM_CLOCK, Telemetry
from repro.obs.clock import Clock
from repro.serve.batcher import MicroBatch, MicroBatcher
from repro.serve.pool import PoolStats, Replica
from repro.serve.queue import ServerClosed
from repro.serve.shm import ShmLease, SlabAllocator, SpscRing, attach_segment

__all__ = [
    "WorkerSpec",
    "WorkerDied",
    "WorkerComputeError",
    "ProcessWorker",
    "ProcessReplicaPool",
]

#: substream token for functional probe vectors (see snc/diagnosis).
PROBE_TOKEN = "serve.procpool.probe"


class WorkerDied(RuntimeError):
    """The worker process exited (or hung past the timeout) mid-protocol."""


class WorkerComputeError(RuntimeError):
    """The worker's engine raised while serving a batch."""


@dataclass
class WorkerSpec:
    """Everything a worker process needs to rebuild its replica.

    ``model_blob`` is the pickled deployed module (hooks dropped, eval
    mode); ``engine_overrides`` feed the worker's
    :class:`~repro.runtime.engine.EngineConfig`; ``batch_rows`` fixes the
    pow2-bucket padding so worker logits are bit-identical to a thread
    replica's.  Build one with :meth:`for_module`.
    """

    model_blob: bytes
    engine_overrides: Dict[str, object] = field(default_factory=dict)
    batch_rows: int = 128
    ring_bytes: int = 1 << 20

    @classmethod
    def for_module(cls, deployed, batch_rows: int = 128,
                   ring_bytes: int = 1 << 20, **engine_overrides) -> "WorkerSpec":
        """Spec a worker for a deployed module (hooks cloned away).

        ``engine_overrides`` mirror :func:`~repro.core.deployment.
        make_inference_engine` keywords (``int_path``, ``int_kernels``,
        ``dtype`` …) so thread and process pools select kernels the same
        way.
        """
        from repro.core.surgery import clone_module  # lazy: core sits below serve

        twin = clone_module(deployed)
        twin.eval()
        return cls(
            model_blob=pickle.dumps(twin, protocol=4),
            engine_overrides=dict(engine_overrides),
            batch_rows=batch_rows,
            ring_bytes=ring_bytes,
        )

    def build_replica(self, index: int = 0,
                      telemetry: Optional[Telemetry] = None) -> Replica:
        """Materialize the replica (worker side, or the parent fallback)."""
        from repro.runtime.engine import EngineConfig, InferenceEngine

        module = pickle.loads(self.model_blob)
        engine = InferenceEngine(module, EngineConfig(**self.engine_overrides),
                                 telemetry=telemetry)
        return Replica(index=index, engine=engine, batch_rows=self.batch_rows)


def _worker_main(spec_bytes: bytes, conn, ring_name: str) -> None:  # pragma: no cover — runs only in spawned workers
    """Worker-process entry point: serve descriptors until told to stop.

    Protocol (tuples over the duplex pipe; payloads in shared memory):

    - ``("run", seq, descriptor, shape)`` → run the leased rows through
      the replica; reply ``("ok", seq, out_shape)`` after writing the
      float64 logits into the ring, or ``("err", seq, repr)``.
    - ``("ping", seq)`` → ``("pong", seq)`` (heartbeat).
    - ``("stop",)`` → ``("bye",)`` and exit.

    The worker never creates segments — it attaches to the parent's
    slabs read-only-by-convention and to its private result ring as the
    sole writer.
    """
    spec: WorkerSpec = pickle.loads(spec_bytes)
    replica = spec.build_replica()
    ring = SpscRing.attach(ring_name)
    segments: Dict[str, object] = {}
    conn.send(("ready", os.getpid()))
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:  # parent vanished; nothing left to answer
                break
            kind = message[0]
            if kind == "stop":
                conn.send(("bye",))
                break
            if kind == "ping":
                conn.send(("pong", message[1]))
                continue
            _, seq, descriptor, shape = message
            _lease_id, _generation, segment_name, offset, _nbytes = descriptor
            segment = segments.get(segment_name)
            if segment is None:
                segment = attach_segment(segment_name)
                segments[segment_name] = segment
            rows = np.ndarray(tuple(shape), dtype=np.float64,
                              buffer=segment.buf, offset=offset)
            try:
                logits = np.ascontiguousarray(
                    replica.run_rows(rows), dtype=np.float64)
            except Exception as error:  # reported to the parent, never fatal
                conn.send(("err", seq, repr(error)))
                continue
            ring.write(logits.tobytes())
            conn.send(("ok", seq, logits.shape))
    finally:
        ring.close()
        for segment in segments.values():
            segment.close()
        conn.close()


@dataclass
class _WorkerStats:
    """Parent-side operational counters for one worker process."""

    batches: int = 0
    rows: int = 0
    fallback_batches: int = 0
    engine_failures: int = 0
    probes_run: int = 0
    probes_failed: int = 0
    restarts: int = 0
    degraded: bool = False


class ProcessWorker:
    """Parent-side handle: process + control pipe + result ring + seq."""

    def __init__(self, index: int, spec: WorkerSpec, context,
                 clock: Clock = SYSTEM_CLOCK,
                 spawn_timeout_s: float = 120.0) -> None:
        self.index = index
        self.spec = spec
        self.stats = _WorkerStats()
        self._context = context
        self._clock = clock
        self._spawn_timeout_s = spawn_timeout_s
        self._seq = 0
        self.process = None
        self.conn = None
        self.ring: Optional[SpscRing] = None
        self.pid: Optional[int] = None
        self.spawn()

    # -- lifecycle ----------------------------------------------------------
    def spawn(self) -> None:
        """Start (or restart) the worker process with a fresh pipe + ring."""
        self._teardown_channels()
        self.ring = SpscRing.create(self.spec.ring_bytes, clock=self._clock)
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        self.process = self._context.Process(
            target=_worker_main,
            args=(pickle.dumps(self.spec, protocol=4), child_conn, self.ring.name),
            name=f"repro-serve-proc-{self.index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        kind, payload = self._recv(timeout_s=self._spawn_timeout_s)
        if kind != "ready":
            raise WorkerDied(f"worker {self.index} failed to report ready: {kind}")
        self.pid = payload

    def _teardown_channels(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.ring is not None:
            self.ring.close()
            self.ring = None

    def alive(self) -> bool:
        """Whether the worker process is currently running."""
        return self.process is not None and self.process.is_alive()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Politely stop the worker; escalate to kill on a hang."""
        if self.process is None:
            return
        if self.alive() and self.conn is not None:
            try:
                self.conn.send(("stop",))
                deadline = self._clock() + timeout_s
                while self.conn.poll(0.05):
                    if self.conn.recv()[0] == "bye":
                        break
                    if self._clock() >= deadline:
                        break
            except (BrokenPipeError, EOFError, OSError) as error:
                self.last_stop_error = error  # already dying; join below anyway
        self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout_s)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout_s)
        self._teardown_channels()
        self.process = None
        self.pid = None

    # -- request path -------------------------------------------------------
    def run(self, lease: ShmLease, shape: Tuple[int, ...],
            timeout_s: float) -> np.ndarray:
        """Send one leased batch; block for its logits.

        Raises :class:`WorkerDied` if the process exits or stalls past
        ``timeout_s`` (a stalled worker is killed first, so the lease is
        safe to recycle the moment this raises), and
        :class:`WorkerComputeError` if the worker's engine raised.
        """
        self._seq += 1
        seq = self._seq
        try:
            self.conn.send(("run", seq, lease.descriptor(), tuple(shape)))
        except (BrokenPipeError, OSError) as error:
            self._reap()
            raise WorkerDied(f"worker {self.index} pipe broke: {error}") from error
        kind, rseq, payload = self._recv_run(timeout_s)
        if rseq != seq:
            self._kill()
            raise WorkerDied(
                f"worker {self.index} answered seq {rseq} for request {seq}"
            )
        if kind == "err":
            raise WorkerComputeError(
                f"worker {self.index} engine failed: {payload}"
            )
        out_shape = tuple(payload)
        nbytes = int(np.prod(out_shape)) * 8
        data = self.ring.read(nbytes, timeout_s=timeout_s)
        return np.frombuffer(data, dtype=np.float64).reshape(out_shape)

    def ping(self, timeout_s: float = 10.0) -> bool:
        """Heartbeat: does the worker still answer its control pipe?"""
        if not self.alive():
            return False
        self._seq += 1
        try:
            self.conn.send(("ping", self._seq))
            kind, payload = self._recv(timeout_s)
        except (WorkerDied, BrokenPipeError, EOFError, OSError):
            return False
        return kind == "pong" and payload == self._seq

    # -- plumbing -----------------------------------------------------------
    def _recv(self, timeout_s: float) -> tuple:
        deadline = self._clock() + timeout_s
        while not self.conn.poll(0.05):
            if not self.alive():
                self._reap()
                raise WorkerDied(f"worker {self.index} exited mid-protocol")
            if self._clock() >= deadline:
                self._kill()
                raise WorkerDied(
                    f"worker {self.index} unresponsive for {timeout_s}s; killed"
                )
        try:
            message = self.conn.recv()
        except (EOFError, OSError) as error:  # SIGKILL → reset, exit → EOF
            self._reap()
            raise WorkerDied(f"worker {self.index} closed its pipe") from error
        if len(message) == 1:
            return message[0], None
        return message[0], message[1]

    def _recv_run(self, timeout_s: float) -> tuple:
        deadline = self._clock() + timeout_s
        while not self.conn.poll(0.05):
            if not self.alive():
                self._reap()
                raise WorkerDied(f"worker {self.index} died mid-batch")
            if self._clock() >= deadline:
                self._kill()
                raise WorkerDied(
                    f"worker {self.index} stalled {timeout_s}s mid-batch; killed"
                )
        try:
            message = self.conn.recv()
        except (EOFError, OSError) as error:  # SIGKILL → reset, exit → EOF
            self._reap()
            raise WorkerDied(f"worker {self.index} died mid-batch") from error
        return message[0], message[1], message[2] if len(message) > 2 else None

    def _reap(self) -> None:
        if self.process is not None:
            self.process.join(5.0)

    def _kill(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.kill()
        self._reap()


class ProcessReplicaPool:
    """Drive N worker processes from one shared :class:`MicroBatcher`.

    Interface-compatible with :class:`~repro.serve.pool.ReplicaPool`
    (``start``/``warmup``/``close``/``stats``), so
    :class:`~repro.serve.server.ModelServer` swaps pools by config.  One
    parent dispatcher thread per worker pulls micro-batches, scatters
    rows into shm leases, and blocks on the worker's reply — the heavy
    numerics run GIL-free in the worker processes.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        batcher: MicroBatcher,
        workers: int = 4,
        fallback: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        probe_every_batches: int = 0,
        probe_rows: int = 4,
        max_restarts: int = 2,
        worker_timeout_s: float = 60.0,
        mp_start_method: str = "spawn",
        slab_bytes: Optional[int] = None,
        max_slabs: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if worker_timeout_s <= 0:
            raise ValueError(
                f"worker_timeout_s must be positive, got {worker_timeout_s}"
            )
        import multiprocessing

        self.spec = spec
        self.batcher = batcher
        self.workers = workers
        self.fallback = fallback
        self.probe_every_batches = probe_every_batches
        self.probe_rows = probe_rows
        self.max_restarts = max_restarts
        self.worker_timeout_s = worker_timeout_s
        self.telemetry = telemetry
        self.clock: Clock = clock if clock is not None else (
            telemetry.clock if telemetry is not None else SYSTEM_CLOCK
        )
        self._context = multiprocessing.get_context(mp_start_method)
        self.compute_slots = workers  # one process ≡ one compute slot
        self.allocator = SlabAllocator(
            slab_bytes=slab_bytes if slab_bytes is not None else (8 << 20),
            max_slabs=max_slabs if max_slabs is not None else max(2 * workers, 4),
            telemetry=telemetry,
        )
        self._workers: List[ProcessWorker] = []
        self._local_replica: Optional[Replica] = None
        self._local_lock = threading.Lock()
        self._probe_images: Optional[np.ndarray] = None
        self._probe_expected: Optional[np.ndarray] = None
        # Guards the start/close lifecycle state below (same discipline —
        # and the same RL007 contract — as the thread pool).
        self._lifecycle_lock = threading.Lock()
        self._dispatchers: List[threading.Thread] = []
        self._started = False
        self._closed = False
        # Instrument families keyed by worker index; empty dicts when
        # telemetry is off so the hot path only ever checks one None.
        self._obs_restarts: dict = {}
        self._obs_depth: dict = {}
        self._obs_batches: dict = {}
        self._obs_rows: dict = {}
        self._obs_fallback: dict = {}
        if telemetry is not None:
            registry = telemetry.registry
            registry.gauge(
                "serve_pool_workers", help="Replica workers in the pool",
            ).set(workers)
            registry.gauge(
                "serve_pool_processes",
                help="Worker processes backing the pool (0 = thread pool)",
            ).set(workers)
            self._obs_restarts = {
                i: registry.counter(
                    "serve_worker_restarts_total",
                    help="Worker processes respawned after death",
                    replica=str(i))
                for i in range(workers)
            }
            self._obs_depth = {
                i: registry.gauge(
                    "serve_worker_queue_depth",
                    help="Batches in flight to the worker (0 or 1: SPSC)",
                    replica=str(i))
                for i in range(workers)
            }
            self._obs_batches = {
                i: registry.counter(
                    "serve_replica_batches_total",
                    help="Micro-batches served, by replica", replica=str(i))
                for i in range(workers)
            }
            self._obs_rows = {
                i: registry.counter(
                    "serve_replica_rows_total",
                    help="Image rows served, by replica", replica=str(i))
                for i in range(workers)
            }
            self._obs_fallback = {
                i: registry.counter(
                    "serve_fallback_batches_total",
                    help="Micro-batches served by the fallback path",
                    replica=str(i))
                for i in range(workers)
            }

    # -- lifecycle ----------------------------------------------------------
    def _ensure_workers_locked(self) -> None:
        if self._closed:
            raise ServerClosed("process pool is closed")
        while len(self._workers) < self.workers:
            self._workers.append(ProcessWorker(
                index=len(self._workers), spec=self.spec,
                context=self._context, clock=self.clock,
            ))

    def start(self) -> None:
        """Spawn worker processes and their dispatcher threads (idempotent)."""
        with self._lifecycle_lock:
            if self._started:
                return
            self._ensure_workers_locked()
            self._started = True
            for worker in self._workers:
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    args=(worker,),
                    name=f"repro-serve-dispatch-{worker.index}",
                    daemon=True,
                )
                self._dispatchers.append(thread)
                thread.start()

    def warmup(self, sample: np.ndarray) -> None:
        """Trace every worker's plan (and arm the probe reference).

        Runs the sample through each worker before traffic so tracing
        never happens on the serving path, then records the expected
        logits of the functional probe vectors from the in-process
        reference replica — the cross-process analogue of
        :func:`repro.snc.diagnosis.probe_array`'s functional probes.
        """
        sample = np.ascontiguousarray(sample, dtype=np.float64)
        with self._lifecycle_lock:
            self._ensure_workers_locked()
            workers = list(self._workers)
        for worker in workers:
            self._worker_run(worker, sample)
        if self.probe_every_batches > 0:
            self._arm_probe(sample)

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with ``drain`` the queue is flushed first.

        Shutdown order matters for the zero-leak guarantee: the queue
        closes (or is failed out), dispatchers drain and exit, workers
        stop, and only then are rings and slabs unlinked — at that point
        the lease table must be empty, and a crash-reclaimed remainder
        is force-released so no segment outlives the pool.
        """
        queue = self.batcher.queue
        queue.close()
        if not drain:
            while True:
                request = queue.pop_nowait()
                if request is None:
                    break
                request.future.set_exception(
                    ServerClosed("server closed without draining")
                )
        with self._lifecycle_lock:
            self._closed = True
            for thread in self._dispatchers:
                thread.join(timeout)
            self._dispatchers = []
            self._started = False
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()
        self.allocator.close(force=True)

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker PIDs (chaos tests aim their SIGKILLs with this)."""
        with self._lifecycle_lock:
            return [worker.pid for worker in self._workers]

    # -- dispatch -----------------------------------------------------------
    def _dispatch_loop(self, worker: ProcessWorker) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:  # queue closed and drained
                return
            self._serve_batch(worker, batch)

    def _serve_batch(self, worker: ProcessWorker, batch: MicroBatch) -> None:
        """Serve one micro-batch through the worker (never raises)."""
        stats = worker.stats
        stats.batches += 1
        stats.rows += batch.rows
        self._obs_inc(self._obs_batches, worker)
        self._obs_inc(self._obs_rows, worker, batch.rows)
        if stats.degraded:
            self._serve_fallback(worker, batch)
            return
        if self._probe_due(worker):
            self._run_probe(worker)
            if stats.degraded:
                self._serve_fallback(worker, batch)
                return
        logits = self._run_with_retry(worker, batch)
        if logits is not None:
            batch.scatter(logits)

    def _run_with_retry(self, worker: ProcessWorker,
                        batch: MicroBatch) -> Optional[np.ndarray]:
        """One worker attempt, one restart attempt, then the fallback.

        Returns the logits to scatter, or ``None`` when the batch was
        already completed (fallback path or clean failure).
        """
        images = np.ascontiguousarray(batch.images, dtype=np.float64)
        for attempt in (0, 1):
            try:
                return self._worker_run(worker, images)
            except WorkerComputeError as error:
                stats = worker.stats
                stats.engine_failures += 1
                if self.fallback is not None or self._can_build_local():
                    self._serve_fallback(worker, batch)
                else:
                    batch.fail(error)
                return None
            except WorkerDied:
                if attempt == 0 and self._try_restart(worker):
                    continue  # retried exactly once through the new process
                self._demote(worker)
                self._serve_fallback(worker, batch)
                return None
        return None  # unreachable; the loop always returns

    def _worker_run(self, worker: ProcessWorker,
                    images: np.ndarray) -> np.ndarray:
        """Lease → copy → run → read → release (lease always recycled)."""
        images = np.ascontiguousarray(images, dtype=np.float64)
        lease = self.allocator.lease(images.nbytes)
        self._obs_set(self._obs_depth, worker, 1.0)
        try:
            np.copyto(self.allocator.view(lease, images.shape), images)
            return worker.run(lease, images.shape, self.worker_timeout_s)
        finally:
            # By the time run() returns or raises, the worker has either
            # answered or been killed — the bytes have no reader left.
            self.allocator.release(lease)
            self._obs_set(self._obs_depth, worker, 0.0)

    def _try_restart(self, worker: ProcessWorker) -> bool:
        if worker.stats.restarts >= self.max_restarts:
            return False
        worker.stats.restarts += 1
        if self.telemetry is not None:
            self._obs_restarts[worker.index].inc()
        try:
            worker.spawn()
        except (WorkerDied, OSError):
            return False
        return True

    def _demote(self, worker: ProcessWorker) -> None:
        worker.stats.degraded = True
        if self.telemetry is not None:
            self.telemetry.registry.gauge(
                "serve_replica_degraded",
                help="1 while the replica serves from its fallback path",
                replica=str(worker.index)).set(1.0)

    # -- fallback -----------------------------------------------------------
    def _can_build_local(self) -> bool:
        return True  # the spec always reconstructs an in-process replica

    def _local_fallback(self, images: np.ndarray) -> np.ndarray:
        """The in-process guarded fallback: a replica built from the spec.

        Used when no explicit ``fallback`` (e.g. a
        :meth:`~repro.runtime.guard.GuardedSpikingSystem.infer`) was
        wired in; serialized by a lock the way the guard path is.
        """
        with self._local_lock:
            if self._local_replica is None:
                self._local_replica = self.spec.build_replica(index=-1)
            return self._local_replica.run_rows(images)

    def _serve_fallback(self, worker: ProcessWorker, batch: MicroBatch) -> None:
        stats = worker.stats
        stats.fallback_batches += 1
        self._obs_inc(self._obs_fallback, worker)
        fallback = self.fallback if self.fallback is not None else self._local_fallback
        try:
            batch.scatter(np.asarray(fallback(
                np.ascontiguousarray(batch.images, dtype=np.float64))))
        except Exception as error:  # surfaced on every member future
            batch.fail(error)

    # -- health -------------------------------------------------------------
    def _arm_probe(self, sample: np.ndarray) -> None:
        """Fix the probe vectors and their expected logits.

        Functional probes after :mod:`repro.snc.diagnosis`: deterministic
        in-range stimuli (seed-substream uniform in the input window,
        shaped like real rows) whose reference logits come from the
        in-process replica — same module bytes, same engine config, so
        agreement is exact by construction.
        """
        from repro.snc.seeding import substream

        rng = substream(0, PROBE_TOKEN)
        shape = (self.probe_rows,) + tuple(sample.shape[1:])
        self._probe_images = np.ascontiguousarray(
            rng.uniform(0.0, 1.0, size=shape), dtype=np.float64)
        self._probe_expected = np.ascontiguousarray(
            self._local_fallback(self._probe_images), dtype=np.float64)

    def _probe_due(self, worker: ProcessWorker) -> bool:
        if self.probe_every_batches <= 0 or worker.stats.degraded:
            return False
        return worker.stats.batches % self.probe_every_batches == 0

    def _run_probe(self, worker: ProcessWorker) -> bool:
        """Heartbeat + probe-vector check; demote the worker on failure."""
        stats = worker.stats
        stats.probes_run += 1
        if self._probe_images is None:
            healthy = worker.ping(self.worker_timeout_s)
        else:
            try:
                logits = self._worker_run(worker, self._probe_images)
                healthy = np.array_equal(logits, self._probe_expected)
            except WorkerDied:
                healthy = self._try_restart(worker) and self._retry_probe(worker)
            except WorkerComputeError:
                healthy = False
        if not healthy:
            stats.probes_failed += 1
            self._demote(worker)
        return healthy

    def _retry_probe(self, worker: ProcessWorker) -> bool:
        try:
            logits = self._worker_run(worker, self._probe_images)
        except (WorkerDied, WorkerComputeError):
            return False
        return bool(np.array_equal(logits, self._probe_expected))

    # -- observability ------------------------------------------------------
    def _obs_inc(self, family: dict, worker: ProcessWorker,
                 amount: float = 1) -> None:
        if self.telemetry is not None:
            family[worker.index].inc(amount)

    def _obs_set(self, family: dict, worker: ProcessWorker,
                 value: float) -> None:
        if self.telemetry is not None:
            family[worker.index].set(value)

    def stats(self) -> PoolStats:
        """Aggregate counters (shape-compatible with the thread pool's)."""
        with self._lifecycle_lock:
            workers = list(self._workers)
        aggregate = PoolStats(workers=self.workers)
        for worker in workers:
            stats = worker.stats
            aggregate.batches += stats.batches
            aggregate.rows += stats.rows
            aggregate.fallback_batches += stats.fallback_batches
            aggregate.engine_failures += stats.engine_failures
            aggregate.degraded_replicas += int(stats.degraded)
            aggregate.replicas.append({
                "index": worker.index,
                "pid": worker.pid,
                "alive": worker.alive(),
                "batches": stats.batches,
                "rows": stats.rows,
                "fallback_batches": stats.fallback_batches,
                "engine_failures": stats.engine_failures,
                "probes_run": stats.probes_run,
                "probes_failed": stats.probes_failed,
                "restarts": stats.restarts,
                "degraded": stats.degraded,
                "backend": "process",
            })
        return aggregate

    def shm_stats(self) -> dict:
        """The slab allocator's counters (leases, bytes in flight)."""
        return self.allocator.stats()
