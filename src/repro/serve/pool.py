"""Engine replica pool: N worker threads, each owning one compiled engine.

Each :class:`Replica` holds its **own** :class:`~repro.runtime.engine.
InferenceEngine` — execution plans and buffer pools are per-replica, so
the hot path shares no mutable state between workers (the deployed
module's weights are shared, but only read).  The numpy GEMMs that
dominate plan replay release the GIL, so replicas genuinely overlap on
multicore hosts.

Two extra behaviours production demands:

- **degraded mode** — every ``probe_every_batches`` dispatches a replica
  runs its health probe; a tripped probe (or repeated engine failures)
  flips the replica to the fallback path — typically
  :meth:`~repro.runtime.guard.GuardedSpikingSystem.infer`, which is
  itself internally locked, probed, and never worse than the software
  twin.  A replica with no fallback fails the batch instead.
- **graceful drain** — :meth:`ReplicaPool.close` with ``drain=True``
  stops admissions but keeps workers pulling until the queue is empty,
  so every in-flight and queued request gets an answer before the
  threads exit.

Tracing is serialized across replicas: ``compile_plan`` attaches forward
hooks to the (shared) module while tracing, so only one replica may
trace at a time; steady-state replay never touches the module's hooks.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.obs import Telemetry
from repro.serve.batcher import MicroBatch, MicroBatcher
from repro.serve.queue import ServerClosed


@dataclass
class ReplicaStats:
    """Operational counters of one replica (scraped into server stats)."""

    batches: int = 0
    rows: int = 0
    fallback_batches: int = 0
    engine_failures: int = 0
    probes_run: int = 0
    probes_failed: int = 0
    degraded: bool = False


class Replica:
    """One worker: a private engine plus the shared fallback path."""

    #: consecutive engine failures before a replica condemns itself.
    MAX_CONSECUTIVE_FAILURES = 3
    #: smallest padded run (tiny batches share one buffer-pool shape).
    MIN_BUCKET = 8

    def __init__(
        self,
        index: int,
        engine,
        fallback: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        health_probe: Optional[Callable[[], bool]] = None,
        probe_every_batches: int = 0,
        trace_lock: Optional[threading.Lock] = None,
        batch_rows: int = 128,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if batch_rows < 1:
            raise ValueError(f"batch_rows must be >= 1, got {batch_rows}")
        self.index = index
        self.engine = engine
        self.fallback = fallback
        self.health_probe = health_probe
        self.probe_every_batches = probe_every_batches
        self.batch_rows = batch_rows
        self.telemetry = telemetry
        self.stats = ReplicaStats()
        self._trace_lock = trace_lock or threading.Lock()
        self._consecutive_failures = 0
        self._pad_buffers: dict = {}
        # Instruments resolved once; the replica label keeps per-worker
        # series while sums across replicas give the pool-wide view.
        if telemetry is not None:
            registry = telemetry.registry
            label = str(index)
            self._obs = {
                "batches": registry.counter(
                    "serve_replica_batches_total",
                    help="Micro-batches served, by replica", replica=label),
                "rows": registry.counter(
                    "serve_replica_rows_total",
                    help="Image rows served, by replica", replica=label),
                "fallback_batches": registry.counter(
                    "serve_fallback_batches_total",
                    help="Micro-batches served by the fallback path",
                    replica=label),
                "engine_failures": registry.counter(
                    "serve_engine_failures_total",
                    help="Engine exceptions caught while serving",
                    replica=label),
            }
            self._obs_degraded = registry.gauge(
                "serve_replica_degraded",
                help="1 while the replica serves from its fallback path",
                replica=label)

    def _obs_inc(self, key: str, amount: float = 1) -> None:
        if self.telemetry is not None:
            self._obs[key].inc(amount)

    # -- serving ------------------------------------------------------------
    def serve(self, batch: MicroBatch) -> None:
        """Run one micro-batch and complete its futures (never raises)."""
        if self.telemetry is None:
            self._serve(batch)
            return
        with self.telemetry.tracer.span(
            "replica.serve", replica=self.index, rows=batch.rows,
        ):
            self._serve(batch)

    def _serve(self, batch: MicroBatch) -> None:
        self.stats.batches += 1
        self.stats.rows += batch.rows
        self._obs_inc("batches")
        self._obs_inc("rows", batch.rows)
        if self._probe_due():
            self.run_probe()
        if self.stats.degraded:
            self._serve_fallback(batch)
            return
        try:
            logits = self._engine_run(batch.images)
        except Exception as error:
            self.stats.engine_failures += 1
            self._obs_inc("engine_failures")
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.MAX_CONSECUTIVE_FAILURES:
                self._set_degraded()
            if self.fallback is not None:
                self._serve_fallback(batch)
            else:
                batch.fail(error)
            return
        self._consecutive_failures = 0
        batch.scatter(logits)

    def _set_degraded(self) -> None:
        self.stats.degraded = True
        if self.telemetry is not None:
            self._obs_degraded.set(1.0)

    def _engine_run(self, images: np.ndarray) -> np.ndarray:
        """Run ``images`` through the engine in shape-stable chunks.

        The plan's :class:`~repro.runtime.plan.BufferPool` keys its
        workspaces by shape, so feeding it a different row count every
        dispatch (coalesced batches naturally vary) would allocate a
        fresh multi-megabyte buffer set per batch — a ~16x slowdown and
        unbounded pool growth.  Chunking to ``batch_rows`` and padding
        the tail up to a power-of-two bucket keeps the set of shapes the
        engine ever sees small and fixed.  Padding rows are zeros and
        are sliced off the output; on the integer fast path (and the
        float64 path's row-independent GEMMs) the kept rows are
        bit-identical to an unpadded run.
        """
        rows = len(images)
        if rows == self.batch_rows:
            return self._engine_call(images)
        outputs = [
            self._run_chunk(images[start : start + self.batch_rows])
            for start in range(0, rows, self.batch_rows)
        ]
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)

    def _engine_call(self, array: np.ndarray) -> np.ndarray:
        if self.engine.plan is None:
            # Tracing attaches forward hooks to the (shared) module: one
            # replica at a time.  Engines that stay planless (graph-only
            # fallback) keep serializing here, which is safe — the graph
            # executor walks the shared module's hook lists.
            with self._trace_lock:
                return self.engine.run(array)
        return self.engine.run(array)

    def _bucket(self, rows: int) -> int:
        bucket = self.MIN_BUCKET
        while bucket < rows:
            bucket *= 2
        return min(bucket, self.batch_rows) if rows <= self.batch_rows else rows

    def _run_chunk(self, chunk: np.ndarray) -> np.ndarray:
        rows = len(chunk)
        bucket = self._bucket(rows)
        if bucket == rows:
            return self.engine.run(chunk)
        key = (bucket, chunk.shape[1:])
        buffer = self._pad_buffers.get(key)
        if buffer is None:
            # float64 up front: engine.run casts inputs to float64 anyway.
            buffer = np.zeros((bucket,) + chunk.shape[1:], dtype=np.float64)
            self._pad_buffers[key] = buffer
        buffer[:rows] = chunk
        buffer[rows:] = 0.0
        return self._engine_call(buffer)[:rows]

    def _serve_fallback(self, batch: MicroBatch) -> None:
        if self.fallback is None:
            batch.fail(RuntimeError(
                f"replica {self.index} is degraded and has no fallback path"
            ))
            return
        self.stats.fallback_batches += 1
        self._obs_inc("fallback_batches")
        try:
            batch.scatter(np.asarray(self.fallback(batch.images)))
        except Exception as error:
            batch.fail(error)

    # -- health -------------------------------------------------------------
    def _probe_due(self) -> bool:
        if self.probe_every_batches <= 0 or self.health_probe is None:
            return False
        if self.stats.degraded:
            return False
        return self.stats.batches % self.probe_every_batches == 0

    def run_probe(self) -> bool:
        """Run the health probe now; trip degraded mode on failure."""
        if self.health_probe is None:
            return True
        self.stats.probes_run += 1
        try:
            healthy = bool(self.health_probe())
        except Exception:
            healthy = False
        if not healthy:
            self.stats.probes_failed += 1
            self._set_degraded()
        return healthy

    def run_rows(self, images: np.ndarray) -> np.ndarray:
        """Run rows through the engine with the pool's chunk/pad policy.

        The public face of :meth:`_engine_run`: process-pool workers call
        this so their logits go through byte-identical bucketing (and
        therefore byte-identical padding) to a thread replica's — the
        cross-process conformance suite depends on it.
        """
        return self._engine_run(images)

    def warmup(self, sample: np.ndarray) -> None:
        """Trace this replica's plan outside the serving path."""
        self._engine_run(sample)


@dataclass
class PoolStats:
    """Aggregate view over every replica (plus per-replica detail)."""

    workers: int = 0
    batches: int = 0
    rows: int = 0
    fallback_batches: int = 0
    engine_failures: int = 0
    degraded_replicas: int = 0
    replicas: List[dict] = field(default_factory=list)


def _available_cores() -> int:
    """Cores this process may schedule on (affinity-aware where possible)."""
    if hasattr(os, "sched_getaffinity"):
        return max(len(os.sched_getaffinity(0)), 1)
    return max(os.cpu_count() or 1, 1)


class ReplicaPool:
    """Drive N replicas from one shared :class:`MicroBatcher`.

    ``compute_slots`` bounds how many replicas *execute* at once
    (batch formation still overlaps freely).  It defaults to
    ``min(workers, available cores)``: engine GEMMs release the GIL, so
    more concurrent runs than cores just timeslice against each other
    and thrash caches — on an oversubscribed host the semaphore keeps
    per-run working sets hot instead.
    """

    def __init__(
        self,
        engine_factory: Callable[[], object],
        batcher: MicroBatcher,
        workers: int = 4,
        fallback: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        health_probe: Optional[Callable[[], bool]] = None,
        probe_every_batches: int = 0,
        compute_slots: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if compute_slots is not None and compute_slots < 1:
            raise ValueError(f"compute_slots must be >= 1, got {compute_slots}")
        self.batcher = batcher
        self.telemetry = telemetry
        self.compute_slots = compute_slots or min(workers, _available_cores())
        self._compute = threading.BoundedSemaphore(self.compute_slots)
        trace_lock = threading.Lock()
        self.replicas = [
            Replica(
                index=i,
                engine=engine_factory(),
                fallback=fallback,
                health_probe=health_probe,
                probe_every_batches=probe_every_batches,
                trace_lock=trace_lock,
                batch_rows=batcher.batch_size,
                telemetry=telemetry,
            )
            for i in range(workers)
        ]
        if telemetry is not None:
            telemetry.registry.gauge(
                "serve_pool_workers", help="Replica workers in the pool",
            ).set(workers)
            telemetry.registry.gauge(
                "serve_compute_slots",
                help="Replicas allowed to execute concurrently",
            ).set(self.compute_slots)
        # Guards the start/close lifecycle state below.  Worker threads
        # never take it, so joining them while holding it cannot deadlock.
        self._lifecycle_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Spawn one daemon worker thread per replica (idempotent)."""
        with self._lifecycle_lock:
            if self._started:
                return
            self._started = True
            for replica in self.replicas:
                thread = threading.Thread(
                    target=self._worker_loop,
                    args=(replica,),
                    name=f"repro-serve-replica-{replica.index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def warmup(self, sample: np.ndarray) -> None:
        """Trace every replica's plan before serving traffic."""
        for replica in self.replicas:
            replica.warmup(sample)

    def _worker_loop(self, replica: Replica) -> None:
        while True:
            # The compute slot is taken *before* pulling: surplus workers
            # (workers > slots) park on the semaphore fully idle instead
            # of forming batches that then wait on compute — on an
            # oversubscribed host that churn steals the GIL from the
            # replica actually running.
            with self._compute:
                batch = self.batcher.next_batch()
                if batch is None:  # queue closed and drained
                    return
                replica.serve(batch)

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with ``drain`` the queue is flushed first.

        The queue is closed *before* the no-drain failure sweep: closing
        first means a submit racing with ``close`` either lands before
        the close (and is failed by the sweep) or is rejected with
        :class:`ServerClosed` at admission — it can never slip in after
        the sweep and be served against ``drain=False`` semantics.
        Idempotent and safe to call concurrently; worker threads release
        their compute slot exactly once on exit regardless of whether a
        health probe was in flight when the queue closed.
        """
        queue = self.batcher.queue
        queue.close()
        if not drain:
            # Fail whatever was still queued when the door shut.
            while True:
                request = queue.pop_nowait()
                if request is None:
                    break
                request.future.set_exception(
                    ServerClosed("server closed without draining")
                )
        with self._lifecycle_lock:
            threads, self._threads = self._threads, []
            self._started = False
        for thread in threads:
            thread.join(timeout)

    # -- observability ------------------------------------------------------
    def stats(self) -> PoolStats:
        """Aggregate counters across replicas (point-in-time snapshot)."""
        aggregate = PoolStats(workers=len(self.replicas))
        for replica in self.replicas:
            stats = replica.stats
            aggregate.batches += stats.batches
            aggregate.rows += stats.rows
            aggregate.fallback_batches += stats.fallback_batches
            aggregate.engine_failures += stats.engine_failures
            aggregate.degraded_replicas += int(stats.degraded)
            detail = {
                "index": replica.index,
                "batches": stats.batches,
                "rows": stats.rows,
                "fallback_batches": stats.fallback_batches,
                "engine_failures": stats.engine_failures,
                "probes_run": stats.probes_run,
                "probes_failed": stats.probes_failed,
                "degraded": stats.degraded,
                "backend": getattr(replica.engine, "active_backend", "unknown"),
            }
            aggregate.replicas.append(detail)
        return aggregate
