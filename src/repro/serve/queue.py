"""Bounded admission queue: backpressure and per-request deadlines.

The front door of the serving layer.  Every inference request enters
through :class:`AdmissionQueue`, which enforces the two properties a
traffic-scale server cannot live without:

- **bounded memory** — the queue holds at most ``max_rows`` image rows;
  a submit that would exceed the bound is rejected *immediately* with
  :class:`ServerOverloaded` (explicit backpressure beats unbounded
  growth followed by an OOM kill);
- **per-request deadlines** — a request may carry an absolute deadline
  (monotonic clock); requests that expire while queued are completed
  with :class:`DeadlineExceeded` instead of wasting engine time on an
  answer nobody is waiting for.

Results travel back through :class:`ServeFuture`, a minimal
event-backed future (stdlib ``concurrent.futures`` is deliberately not
used: the batcher completes futures from worker threads and needs
nothing beyond set/wait semantics).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.obs import SYSTEM_CLOCK, Telemetry


class ServeError(RuntimeError):
    """Base class of all serving-layer errors."""


class ServerOverloaded(ServeError):
    """The admission queue is full; the caller should back off and retry."""


class DeadlineExceeded(ServeError):
    """The request's deadline passed before an engine could serve it."""


class ServerClosed(ServeError):
    """The server is draining or closed; no new requests are admitted."""


class ServeFuture:
    """A minimal thread-safe future for one request's logits."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["ServeFuture"], None]] = []
        self._lock = threading.Lock()

    def add_done_callback(self, callback: Callable[["ServeFuture"], None]) -> None:
        """Invoke ``callback(self)`` on completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                # Drained on completion; holds O(1) callbacks per request.
                self._callbacks.append(callback)  # lint: ignore[RL004]
                return
        callback(self)

    def set_result(self, value: np.ndarray) -> None:
        """Complete the future with logits (first completion wins)."""
        with self._lock:
            if self._event.is_set():
                return
            self._result = value
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def set_exception(self, error: BaseException) -> None:
        """Complete the future with an error (first completion wins)."""
        with self._lock:
            if self._event.is_set():
                return
            self._error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def done(self) -> bool:
        """Whether a result or error has been delivered."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until completion; return logits or raise the stored error."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class ServeRequest:
    """One admitted inference request (``rows`` images → ``rows`` logits)."""

    request_id: int
    images: np.ndarray
    future: ServeFuture
    enqueued_at: float
    deadline: Optional[float] = None  # absolute, on the queue's clock

    @property
    def rows(self) -> int:
        """Number of image rows (= logit rows owed back to the caller)."""
        return len(self.images)

    def expired(self, now: float) -> bool:
        """Whether the deadline (if any) has passed at time ``now``."""
        return self.deadline is not None and now >= self.deadline


class AdmissionQueue:
    """A bounded FIFO of :class:`ServeRequest` with condition signalling.

    ``max_rows`` bounds total queued image rows — the quantity that
    actually costs memory and engine time — rather than request count,
    so a flood of large requests cannot hide behind a small count bound.
    The internal buffer is a plain list appended only after the bound
    check passes (see lint rule RL004).
    """

    def __init__(
        self,
        max_rows: int = 4096,
        clock: Optional[Callable[[], float]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows
        self.telemetry = telemetry
        # Clock resolution order: explicit arg, telemetry's injected
        # clock, system monotonic (RL005: never read time.* directly).
        if clock is not None:
            self.clock = clock
        elif telemetry is not None:
            self.clock = telemetry.clock
        else:
            self.clock = SYSTEM_CLOCK
        self._items: List[ServeRequest] = []
        self._rows = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._ids = itertools.count()
        # Instruments are resolved once; hot-path cost is a lock + add.
        if telemetry is not None:
            registry = telemetry.registry
            self._obs_admitted = registry.counter(
                "serve_admitted_total", help="Requests admitted to the queue")
            self._obs_rejected_overload = registry.counter(
                "serve_rejected_total", help="Requests refused at admission",
                reason="overloaded")
            self._obs_rejected_closed = registry.counter(
                "serve_rejected_total", help="Requests refused at admission",
                reason="closed")
            self._obs_expired = registry.counter(
                "serve_deadline_expired_total",
                help="Queued requests that expired before dispatch")
            self._obs_depth_requests = registry.gauge(
                "serve_queue_requests", help="Requests currently queued")
            self._obs_depth_rows = registry.gauge(
                "serve_queue_rows", help="Image rows currently queued")
            self._obs_wait = registry.histogram(
                "serve_queue_wait_seconds",
                help="Time requests spent queued before dispatch")

    def _obs_depth_locked(self) -> None:
        if self.telemetry is not None:
            self._obs_depth_requests.set(len(self._items))
            self._obs_depth_rows.set(self._rows)

    # -- producer side ------------------------------------------------------
    def submit(
        self,
        images: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> ServeRequest:
        """Admit one request or raise; returns the queued request.

        Raises :class:`ServerOverloaded` when admitting ``images`` would
        push queued rows past ``max_rows``, and :class:`ServerClosed`
        after :meth:`close`.  ``deadline_s`` is a relative budget from
        now; ``None`` means no deadline.
        """
        images = np.asarray(images)
        if images.ndim < 2:
            raise ValueError(
                f"images must be a batch (rows first), got shape {images.shape}"
            )
        rows = len(images)
        if rows < 1:
            raise ValueError("cannot submit an empty request")
        now = self.clock()
        request = ServeRequest(
            request_id=next(self._ids),
            images=images,
            future=ServeFuture(),
            enqueued_at=now,
            deadline=None if deadline_s is None else now + deadline_s,
        )
        with self._lock:
            if self._closed:
                if self.telemetry is not None:
                    self._obs_rejected_closed.inc()
                raise ServerClosed("server is closed to new requests")
            if self._rows + rows > self.max_rows:
                if self.telemetry is not None:
                    self._obs_rejected_overload.inc()
                raise ServerOverloaded(
                    f"queue holds {self._rows} rows; admitting {rows} more "
                    f"would exceed the bound of {self.max_rows}"
                )
            self._items.append(request)
            self._rows += rows
            if self.telemetry is not None:
                self._obs_admitted.inc()
                self._obs_depth_locked()
            self._not_empty.notify()
        return request

    def close(self) -> None:
        """Stop admitting; queued requests remain to be drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    # -- consumer side ------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[ServeRequest]:
        """Pop the oldest *unexpired* request; block up to ``timeout``.

        Expired requests are completed with :class:`DeadlineExceeded`
        on the way past, never returned.  Returns ``None`` on timeout or
        when the queue is closed and empty.
        """
        deadline = None if timeout is None else self.clock() + timeout
        with self._lock:
            while True:
                request = self._pop_admissible_locked()
                if request is not None:
                    return request
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - self.clock()
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)

    def pop_nowait(self) -> Optional[ServeRequest]:
        """Non-blocking :meth:`pop` (the batcher's coalescing path)."""
        with self._lock:
            return self._pop_admissible_locked()

    def _pop_admissible_locked(self) -> Optional[ServeRequest]:
        now = self.clock()
        observed = self.telemetry is not None
        while self._items:
            request = self._items.pop(0)
            self._rows -= request.rows
            if request.expired(now):
                if observed:
                    self._obs_expired.inc()
                    self._obs_depth_locked()
                request.future.set_exception(DeadlineExceeded(
                    f"request {request.request_id} expired after "
                    f"{now - request.enqueued_at:.4f}s in queue"
                ))
                continue
            if observed:
                self._obs_wait.observe(now - request.enqueued_at)
                self._obs_depth_locked()
            return request
        return None

    # -- observability ------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def depth(self) -> dict:
        """Current queue occupancy: ``{"requests": ..., "rows": ...}``."""
        with self._lock:
            return {"requests": len(self._items), "rows": self._rows}

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
