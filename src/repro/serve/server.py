"""The :class:`ModelServer` facade: submit → batch → replicate → answer.

Composes the serving layer end to end::

    callers ──submit──▶ AdmissionQueue ──▶ MicroBatcher ──▶ ReplicaPool
                 │  (bounded, deadlines)   (coalesce to      │ (N engines)
                 │                          batch/max-wait)  ├─▶ InferenceEngine
                 ◀──────────── ServeFuture ◀─ scatter ───────┴─▶ guard fallback

A server is built from an *engine factory* so each replica owns its own
compiled plan and buffer pool; the usual entry points are
:func:`repro.core.deployment.make_model_server` (software deployments)
and :meth:`repro.snc.system.SpikingSystem.serve` (hardware twins with a
guarded fallback).

SLO-aware admission: every request can carry a latency deadline
(``deadline_ms``, defaulting to ``ServeConfig.default_deadline_ms``).
The queue bound rejects load the server cannot absorb
(:class:`~repro.serve.queue.ServerOverloaded`); deadlines shed load it
absorbed but cannot serve in time
(:class:`~repro.serve.queue.DeadlineExceeded`).  Together they keep tail
latency bounded instead of letting the queue build unbounded delay.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.obs import SYSTEM_CLOCK, Telemetry
from repro.serve.batcher import MicroBatcher
from repro.serve.pool import ReplicaPool
from repro.serve.queue import AdmissionQueue, ServeFuture

__all__ = ["ServeConfig", "ModelServer", "LatencyWindow"]


@dataclass
class ServeConfig:
    """Serving-layer policy knobs.

    Attributes
    ----------
    workers:
        Replica count (one engine + one thread each).
    batch_size:
        Target micro-batch rows; dispatch happens at this size or at
        ``max_wait_ms``, whichever first.
    max_wait_ms:
        Batch-formation wait budget.  ``0`` disables coalescing delay
        (lowest latency, smallest batches); a few ms trades p50 latency
        for throughput under load.
    max_queue_rows:
        Admission bound (image rows).  Submissions beyond it are
        rejected with :class:`~repro.serve.queue.ServerOverloaded`.
    default_deadline_ms:
        Deadline applied to requests that do not carry their own;
        ``None`` means queued requests never expire.
    probe_every_batches:
        Per-replica health-probe cadence (``0`` = never probe).
    compute_slots:
        Max replicas *executing* simultaneously; ``None`` defaults to
        ``min(workers, available cores)`` so oversubscribed hosts do
        not timeslice engine runs against each other.
    latency_window:
        How many recent request latencies the server retains for
        percentile stats (bounded ring buffer).
    pool:
        ``"thread"`` (default) keeps replicas in-process;
        ``"process"`` moves each replica into its own worker process
        with shared-memory tensor transport (requires a ``worker_spec``
        — see :func:`repro.core.deployment.make_model_server`).
    mp_start_method:
        Start method for process-pool workers.  ``"spawn"`` (default)
        is safe alongside threads and BLAS pools; ``"fork"`` starts
        faster but inherits the parent's locks.
    max_restarts:
        Times a dead worker process is respawned before it demotes to
        the in-process fallback (process pool only).
    worker_timeout_s:
        Per-batch reply budget for a worker process; a worker that
        stalls past it is killed and treated as dead.
    """

    workers: int = 4
    batch_size: int = 128
    max_wait_ms: float = 2.0
    max_queue_rows: int = 4096
    default_deadline_ms: Optional[float] = None
    probe_every_batches: int = 0
    compute_slots: Optional[int] = None
    latency_window: int = 4096
    pool: str = "thread"
    mp_start_method: str = "spawn"
    max_restarts: int = 2
    worker_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.pool not in ("thread", "process"):
            raise ValueError(
                f"pool must be 'thread' or 'process', got {self.pool!r}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.worker_timeout_s <= 0:
            raise ValueError(
                f"worker_timeout_s must be positive, got {self.worker_timeout_s}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_queue_rows < 1:
            raise ValueError(f"max_queue_rows must be >= 1, got {self.max_queue_rows}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {self.default_deadline_ms}"
            )
        if self.compute_slots is not None and self.compute_slots < 1:
            raise ValueError(f"compute_slots must be >= 1, got {self.compute_slots}")
        if self.latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {self.latency_window}")


class LatencyWindow:
    """A fixed-size ring of recent latencies (seconds) with percentiles."""

    def __init__(self, size: int) -> None:
        self._values = np.zeros(size, dtype=np.float64)
        self._count = 0
        self._lock = threading.Lock()

    def record(self, latency_s: float) -> None:
        """Append one latency sample, evicting the oldest beyond the window."""
        with self._lock:
            self._values[self._count % len(self._values)] = latency_s
            self._count += 1

    def snapshot(self) -> np.ndarray:
        """The retained samples (oldest-beyond-window already evicted)."""
        with self._lock:
            filled = min(self._count, len(self._values))
            return np.array(self._values[:filled])

    def percentiles(self, qs: Sequence[float] = (50, 99)) -> dict:
        """``{"p50_ms": ..., "p99_ms": ...}`` over the window (empty → {})."""
        values = self.snapshot()
        if values.size == 0:
            return {}
        return {
            f"p{int(q)}_ms": float(np.percentile(values, q) * 1e3) for q in qs
        }


class ModelServer:
    """Serve concurrent inference requests through batched engine replicas."""

    def __init__(
        self,
        engine_factory: Optional[Callable[[], object]] = None,
        config: Optional[ServeConfig] = None,
        fallback: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        health_probe: Optional[Callable[[], bool]] = None,
        warmup_images: Optional[np.ndarray] = None,
        clock: Optional[Callable[[], float]] = None,
        telemetry: Optional[Telemetry] = None,
        worker_spec=None,
    ) -> None:
        self.config = config or ServeConfig()
        if self.config.pool == "process":
            if worker_spec is None:
                raise ValueError(
                    "pool='process' needs a worker_spec (WorkerSpec); build "
                    "the server via repro.core.deployment.make_model_server"
                )
        elif engine_factory is None:
            raise ValueError("pool='thread' needs an engine_factory")
        self.telemetry = telemetry
        # One clock drives queue, batcher, and latency accounting (RL005:
        # injected, never read from time.* here).
        if clock is not None:
            self.clock = clock
        elif telemetry is not None:
            self.clock = telemetry.clock
        else:
            self.clock = SYSTEM_CLOCK
        clock = self.clock
        self.queue = AdmissionQueue(
            max_rows=self.config.max_queue_rows, clock=clock, telemetry=telemetry,
        )
        self.batcher = MicroBatcher(
            self.queue,
            batch_size=self.config.batch_size,
            max_wait_s=self.config.max_wait_ms / 1e3,
            clock=clock,
            telemetry=telemetry,
        )
        if self.config.pool == "process":
            # Imported here so thread-pool servers never touch
            # multiprocessing (keeps fork-safety concerns out of the
            # default path).
            from repro.serve.procpool import ProcessReplicaPool

            self.pool = ProcessReplicaPool(
                worker_spec,
                self.batcher,
                workers=self.config.workers,
                fallback=fallback,
                probe_every_batches=self.config.probe_every_batches,
                max_restarts=self.config.max_restarts,
                worker_timeout_s=self.config.worker_timeout_s,
                mp_start_method=self.config.mp_start_method,
                telemetry=telemetry,
                clock=clock,
            )
        else:
            self.pool = ReplicaPool(
                engine_factory,
                self.batcher,
                workers=self.config.workers,
                fallback=fallback,
                health_probe=health_probe,
                probe_every_batches=self.config.probe_every_batches,
                compute_slots=self.config.compute_slots,
                telemetry=telemetry,
            )
        if telemetry is not None:
            registry = telemetry.registry
            self._obs_completed = registry.counter(
                "serve_completed_total", help="Requests completed (any outcome)")
            self._obs_latency = registry.histogram(
                "serve_request_seconds",
                help="Submit-to-completion latency per request")
        self.latencies = LatencyWindow(self.config.latency_window)
        self._completed = 0
        self._rejected = 0
        self._stats_lock = threading.Lock()
        if warmup_images is not None:
            self.pool.warmup(warmup_images)
        self.pool.start()

    # -- request path -------------------------------------------------------
    def submit_async(
        self,
        images: np.ndarray,
        deadline_ms: Optional[float] = None,
    ) -> ServeFuture:
        """Admit one request; returns its future immediately.

        Raises :class:`~repro.serve.queue.ServerOverloaded` (queue full)
        or :class:`~repro.serve.queue.ServerClosed` synchronously — the
        backpressure signal must reach the caller, not the future.
        """
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        try:
            request = self.queue.submit(
                images,
                deadline_s=None if deadline_ms is None else deadline_ms / 1e3,
            )
        except Exception:
            with self._stats_lock:
                self._rejected += 1
            raise
        start = request.enqueued_at

        def record_latency(_future: ServeFuture) -> None:
            latency_s = self.clock() - start
            self.latencies.record(latency_s)
            with self._stats_lock:
                self._completed += 1
            if self.telemetry is not None:
                self._obs_completed.inc()
                self._obs_latency.observe(latency_s)

        request.future.add_done_callback(record_latency)
        return request.future

    def submit(
        self,
        images: np.ndarray,
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = 60.0,
    ) -> np.ndarray:
        """Admit one request and block for its logits."""
        return self.submit_async(images, deadline_ms=deadline_ms).result(timeout)

    def submit_many(
        self,
        batches: Sequence[np.ndarray],
        deadline_ms: Optional[float] = None,
        timeout: Optional[float] = 60.0,
    ) -> List[np.ndarray]:
        """Admit several requests at once, then wait for all of them.

        Submitting before waiting lets the batcher coalesce the whole
        group into engine-sized runs.
        """
        futures = [self.submit_async(b, deadline_ms=deadline_ms) for b in batches]
        return [future.result(timeout) for future in futures]

    # -- lifecycle ----------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` every queued request is answered first."""
        self.pool.close(drain=drain)

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        """One nested dict of queue depth, pool counters, and latency."""
        pool = self.pool.stats()
        with self._stats_lock:
            completed, rejected = self._completed, self._rejected
        stats = {
            "completed_requests": completed,
            "rejected_requests": rejected,
            "queue": self.queue.depth(),
            "workers": pool.workers,
            "compute_slots": self.pool.compute_slots,
            "batches": pool.batches,
            "rows": pool.rows,
            "mean_batch_rows": pool.rows / pool.batches if pool.batches else 0.0,
            "fallback_batches": pool.fallback_batches,
            "engine_failures": pool.engine_failures,
            "degraded_replicas": pool.degraded_replicas,
            "replicas": pool.replicas,
        }
        shm_stats = getattr(self.pool, "shm_stats", None)
        if shm_stats is not None:  # process pool: slab/lease accounting
            stats["shm"] = shm_stats()
        stats.update(self.latencies.percentiles())
        return stats
