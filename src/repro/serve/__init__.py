"""repro.serve — the traffic-scale serving layer.

:mod:`repro.runtime` makes a *single caller* fast (compiled plans,
integer fast path); this package multiplexes *many concurrent callers*
onto those engines, the missing layer between "fast kernel" and "fast
system":

- :mod:`repro.serve.queue` — bounded admission with explicit
  backpressure (:class:`ServerOverloaded`) and per-request deadlines
  (:class:`DeadlineExceeded`).
- :mod:`repro.serve.batcher` — dynamic micro-batching: coalesce queued
  requests to ``batch_size`` rows or a ``max_wait`` budget, scatter
  logits back bit-exactly.
- :mod:`repro.serve.pool` — a replica pool of worker threads, each
  owning its own :class:`~repro.runtime.engine.InferenceEngine`, with
  health probes, degraded-mode fallback, and graceful drain.
- :mod:`repro.serve.shm` — the shared-memory data plane: a slab
  allocator with generation-tagged leases plus a per-worker SPSC
  result ring (every segment in the repo goes through it — lint
  RL008).
- :mod:`repro.serve.procpool` — the multi-process replica pool
  (``ServeConfig(pool="process")``): worker processes rebuilt from a
  picklable :class:`WorkerSpec`, zero-copy tensors over
  :mod:`repro.serve.shm`, heartbeat + probe-vector health folded into
  the same degraded-mode fallback.
- :mod:`repro.serve.server` — the :class:`ModelServer` facade
  (``submit`` / ``submit_many`` / ``stats`` / ``close``).
- :mod:`repro.serve.loadgen` — a deterministic closed-loop load
  generator for benchmarking (seeded via :mod:`repro.snc.seeding`).
- :mod:`repro.serve.stream` — event-driven streaming sessions
  (:class:`StreamingServer`), sliding-window micro-batching of event
  streams through the same queue/batcher path.  See
  ``docs/streaming.md``.

Build one with :func:`repro.core.deployment.make_model_server` or
:meth:`repro.snc.system.SpikingSystem.serve`; see ``docs/serving.md``.
"""

from repro.serve.batcher import MicroBatch, MicroBatcher
from repro.serve.loadgen import (
    LoadGenConfig,
    LoadReport,
    StreamLoadConfig,
    StreamLoadReport,
    run_load,
    run_stream_load,
)
from repro.serve.pool import Replica, ReplicaPool, ReplicaStats
from repro.serve.procpool import (
    ProcessReplicaPool,
    ProcessWorker,
    WorkerDied,
    WorkerSpec,
)
from repro.serve.queue import (
    AdmissionQueue,
    DeadlineExceeded,
    ServeError,
    ServeFuture,
    ServeRequest,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.server import LatencyWindow, ModelServer, ServeConfig
from repro.serve.shm import (
    ShmError,
    ShmExhausted,
    ShmLease,
    SlabAllocator,
    SpscRing,
    StaleLease,
)
from repro.serve.stream import (
    SessionClosed,
    SessionExpired,
    StreamBufferFull,
    StreamConfig,
    StreamingServer,
    StreamSession,
    TooManySessions,
)

__all__ = [
    "AdmissionQueue",
    "DeadlineExceeded",
    "LatencyWindow",
    "LoadGenConfig",
    "LoadReport",
    "MicroBatch",
    "MicroBatcher",
    "ModelServer",
    "ProcessReplicaPool",
    "ProcessWorker",
    "Replica",
    "ReplicaPool",
    "ReplicaStats",
    "ServeConfig",
    "ShmError",
    "ShmExhausted",
    "ShmLease",
    "SlabAllocator",
    "SpscRing",
    "StaleLease",
    "WorkerDied",
    "WorkerSpec",
    "ServeError",
    "ServeFuture",
    "ServeRequest",
    "ServerClosed",
    "ServerOverloaded",
    "SessionClosed",
    "SessionExpired",
    "StreamBufferFull",
    "StreamConfig",
    "StreamLoadConfig",
    "StreamLoadReport",
    "StreamSession",
    "StreamingServer",
    "TooManySessions",
    "run_load",
    "run_stream_load",
]
