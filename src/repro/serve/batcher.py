"""Dynamic micro-batching: coalesce small requests into engine-sized runs.

The paper's pipelined crossbar layers (and their software twin, the
compiled :class:`~repro.runtime.engine.InferenceEngine`) amortize their
per-invocation overhead across the batch dimension — Table 5's speedups
assume the substrate is kept *full*.  Interactive traffic arrives one
small request at a time, so the :class:`MicroBatcher` sits between the
admission queue and the engines and coalesces:

- dispatch as soon as ``batch_size`` rows are gathered, **or**
- after ``max_wait_s`` has elapsed since the first request of the batch
  was pulled (bounded latency: a lone request never waits for company
  longer than the wait budget),

whichever comes first.  The request→row mapping is carried in the
:class:`MicroBatch` so logits are scattered back to each caller's future
bit-exactly — batching is a throughput optimization, never a semantic
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.obs import SYSTEM_CLOCK, Telemetry
from repro.serve.queue import AdmissionQueue, ServeRequest


@dataclass
class MicroBatch:
    """A dispatchable unit: concatenated rows plus the scatter map."""

    requests: List[ServeRequest]
    images: np.ndarray
    formed_at: float

    @property
    def rows(self) -> int:
        """Total image rows across all member requests."""
        return len(self.images)

    def scatter(self, logits: np.ndarray) -> None:
        """Split ``logits`` back onto each request's future, row-exact."""
        if len(logits) != self.rows:
            self.fail(RuntimeError(
                f"engine returned {len(logits)} rows for a {self.rows}-row batch"
            ))
            return
        offset = 0
        for request in self.requests:
            # np.array(...) gives each caller an owned copy, so one
            # caller mutating its logits cannot corrupt a neighbour's.
            request.future.set_result(np.array(logits[offset : offset + request.rows]))
            offset += request.rows

    def fail(self, error: BaseException) -> None:
        """Complete every member request with ``error``."""
        for request in self.requests:
            request.future.set_exception(error)


class MicroBatcher:
    """Form :class:`MicroBatch` units from an :class:`AdmissionQueue`.

    Thread-safe by construction: all state lives in the queue, and each
    call to :meth:`next_batch` builds an independent batch, so any number
    of pool workers can call it concurrently.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        batch_size: int,
        max_wait_s: float = 0.002,
        clock: Optional[Callable[[], float]] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.queue = queue
        self.batch_size = batch_size
        self.max_wait_s = max_wait_s
        self.telemetry = telemetry
        if clock is not None:
            self.clock = clock
        elif telemetry is not None:
            self.clock = telemetry.clock
        else:
            self.clock = SYSTEM_CLOCK
        if telemetry is not None:
            registry = telemetry.registry
            self._obs_batches = registry.counter(
                "serve_batches_formed_total", help="Micro-batches dispatched")
            self._obs_rows = registry.histogram(
                "serve_batch_rows", help="Image rows per micro-batch")
            self._obs_coalesced = registry.histogram(
                "serve_batch_requests", help="Requests coalesced per micro-batch")

    def next_batch(self, poll_s: float = 0.25) -> Optional[MicroBatch]:
        """Block for the next batch; ``None`` once the queue is drained shut.

        Waits (in ``poll_s`` slices, so a closed queue is noticed) for a
        first request, then coalesces more until the batch is full or the
        wait budget is spent.
        """
        first = None
        while first is None:
            first = self.queue.pop(timeout=poll_s)
            if first is None and self.queue.closed:
                return None
        requests = [first]
        gathered = first.rows
        wait_until = self.clock() + self.max_wait_s
        while gathered < self.batch_size:
            request = self.queue.pop_nowait()
            if request is None:
                remaining = wait_until - self.clock()
                if remaining <= 0 or self.queue.closed:
                    break
                # Blocking pop waits on the queue's condition variable —
                # no sleep-polling, so a coalescing worker costs nothing
                # until a request actually arrives.
                request = self.queue.pop(timeout=remaining)
                if request is None:
                    break
            requests.append(request)
            gathered += request.rows
        return self._assemble(requests)

    def _assemble(self, requests: List[ServeRequest]) -> MicroBatch:
        if len(requests) == 1:
            images = np.asarray(requests[0].images)
        else:
            images = np.concatenate([r.images for r in requests], axis=0)
        batch = MicroBatch(requests=requests, images=images, formed_at=self.clock())
        if self.telemetry is not None:
            self._obs_batches.inc()
            self._obs_rows.observe(batch.rows)
            self._obs_coalesced.observe(len(requests))
            self.telemetry.tracer.record(
                "batch.form",
                min(r.enqueued_at for r in requests), batch.formed_at,
                rows=batch.rows, requests=len(requests),
            )
        return batch
