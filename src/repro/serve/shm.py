"""Shared-memory transport for the multi-process serving pool.

Request rows cross the process boundary as bytes in
``multiprocessing.shared_memory`` segments, never as pickles: the parent
scatters a micro-batch into a leased slab region, the worker maps the
same segment and wraps it in a zero-copy numpy view, and logits return
through a per-worker :class:`SpscRing`.  Three invariants make that safe
enough to carry the paper's bit-exact serving guarantee:

- **every segment goes through the lease allocator** — lint rule RL008
  forbids bare ``SharedMemory`` construction anywhere else in
  ``src/repro``, so the lease table below is a complete account of live
  shared memory and the leak checks in the test suite are sound;
- **generation-tagged leases** — a lease is ``(lease_id, generation,
  segment, offset, nbytes)``; the allocator recycles a region only when
  the *exact* lease that covers it is released, and a stale release
  (e.g. bookkeeping racing a worker restart) raises :class:`StaleLease`
  instead of silently freeing bytes another worker may still read;
- **bounded slabs** — at most ``max_slabs`` segments exist; when the
  working set cannot fit, :class:`ShmExhausted` propagates as explicit
  backpressure (RL004: the serving layer sheds load, it never grows
  without bound).

The :class:`SpscRing` is a single-producer single-consumer byte FIFO in
one shared segment: the worker (sole writer) advances ``tail``, the
parent (sole reader) advances ``head``, and the control-plane pipe
message that announces each payload provides the cross-process
happens-before edge, so no locks are needed.
"""

from __future__ import annotations

import os
import secrets
import struct
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.obs import Telemetry
from repro.obs.clock import SYSTEM_CLOCK, SYSTEM_SLEEP, Clock, Sleep

__all__ = [
    "ShmError",
    "ShmExhausted",
    "ShmLeak",
    "StaleLease",
    "ShmLease",
    "SlabAllocator",
    "SpscRing",
    "attach_segment",
    "active_segment_names",
]

#: lease offsets/sizes are rounded up to this many bytes (cache line).
ALIGNMENT = 64

#: ring header: two little-endian u64 monotonic byte counters.
_RING_HEADER = struct.Struct("<QQ")


class ShmError(RuntimeError):
    """Base class of shared-memory transport errors."""


class ShmExhausted(ShmError):
    """The slab budget cannot hold another lease; shed load and retry."""


class StaleLease(ShmError):
    """A release named a (lease_id, generation) the table does not hold."""


class ShmLeak(ShmError):
    """Leases were still outstanding when the allocator closed."""


# -- segment registry ---------------------------------------------------------
# Every segment this process *created* is recorded here so tests can
# assert nothing survives a server's close().  Guarded by a module lock:
# multiple allocators/rings may be created from concurrent tests.
_SEGMENTS_LOCK = threading.Lock()
_ACTIVE_SEGMENTS: Set[str] = set()


def active_segment_names() -> List[str]:
    """Names of shared-memory segments created by this process and not
    yet unlinked — the leak-check fixture asserts this drains to empty."""
    with _SEGMENTS_LOCK:
        return sorted(_ACTIVE_SEGMENTS)


def _register_segment(name: str) -> None:
    with _SEGMENTS_LOCK:
        _ACTIVE_SEGMENTS.add(name)


def _forget_segment(name: str) -> None:
    with _SEGMENTS_LOCK:
        _ACTIVE_SEGMENTS.discard(name)


def _create_segment(nbytes: int, tag: str) -> shared_memory.SharedMemory:
    """Create a fresh segment with a collision-resistant name."""
    name = f"repro-{tag}-{os.getpid()}-{secrets.token_hex(4)}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
    _register_segment(segment.name)
    return segment


def _destroy_segment(segment: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment created by this process."""
    name = segment.name
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:
        # Already unlinked by a concurrent close; drop it from the
        # registry all the same so the leak check does not misfire.
        _forget_segment(name)
        return
    _forget_segment(name)


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment *without* adopting ownership.

    CPython's resource tracker registers shared memory on attach as well
    as on create (bpo-39959).  Spawned workers share the parent's
    tracker process, where registrations are a *set*: the attach-side
    re-registration dedups against the creator's entry, and the single
    balancing unregister happens inside the owner's ``unlink()`` — so
    attachers must never unregister themselves, or the owner's unlink
    would hit an empty cache and the tracker would spew KeyErrors at
    shutdown.  Unlink authority stays with the creating process by
    convention: attachers only ever ``close()``.
    """
    return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class ShmLease:
    """One leased byte range: the unit the parent may write and recycle.

    ``generation`` is globally unique per lease; the allocator recycles
    the range only when released with the matching tag, so bytes are
    never reused while any party could still hold the old descriptor.
    """

    lease_id: int
    generation: int
    segment: str
    offset: int
    nbytes: int

    def descriptor(self) -> Tuple[int, int, str, int, int]:
        """The picklable tuple sent over the control pipe to a worker."""
        return (self.lease_id, self.generation, self.segment, self.offset,
                self.nbytes)


class _Slab:
    """One shared segment plus its free list (offset-sorted, coalesced)."""

    def __init__(self, segment: shared_memory.SharedMemory) -> None:
        self.segment = segment
        self.free: List[Tuple[int, int]] = [(0, segment.size)]  # (offset, size)
        self.used_bytes = 0

    def take(self, nbytes: int) -> Optional[int]:
        """First-fit: carve ``nbytes`` out of the free list, or ``None``."""
        for i, (offset, size) in enumerate(self.free):
            if size >= nbytes:
                if size == nbytes:
                    self.free.pop(i)
                else:
                    self.free[i] = (offset + nbytes, size - nbytes)
                self.used_bytes += nbytes
                return offset
        return None

    def give_back(self, offset: int, nbytes: int) -> None:
        """Return a range to the free list, coalescing neighbours.

        The free list is bounded by construction: it never holds more
        entries than outstanding leases + 1, and leases are bounded by
        the segment size over the alignment grain.
        """
        self.free.append((offset, nbytes))  # lint: ignore[RL004]
        self.free.sort()
        merged: List[Tuple[int, int]] = []
        for start, size in self.free:
            if merged and merged[-1][0] + merged[-1][1] == start:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((start, size))
        self.free = merged
        self.used_bytes -= nbytes


class SlabAllocator:
    """Lease generation-tagged byte ranges out of bounded shm slabs.

    The parent-side dispatcher leases a range per micro-batch, copies the
    request rows in, hands the descriptor to a worker, and releases the
    lease once the worker's reply (or its death certificate) arrives.
    Oversize requests get a dedicated segment; both kinds count against
    ``max_slabs``.  All methods are thread-safe.
    """

    def __init__(
        self,
        slab_bytes: int = 8 << 20,
        max_slabs: int = 16,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if slab_bytes < ALIGNMENT:
            raise ValueError(f"slab_bytes must be >= {ALIGNMENT}, got {slab_bytes}")
        if max_slabs < 1:
            raise ValueError(f"max_slabs must be >= 1, got {max_slabs}")
        self.slab_bytes = int(slab_bytes)
        self.max_slabs = int(max_slabs)
        self._slabs: List[_Slab] = []
        self._leases: Dict[int, ShmLease] = {}
        self._by_segment: Dict[str, _Slab] = {}
        self._next_id = 0
        self._next_generation = 0
        self._lock = threading.Lock()
        self._closed = False
        self.leases_issued_total = 0
        self.leases_recycled_total = 0
        self.stale_releases_total = 0
        self._telemetry = telemetry
        if telemetry is not None:
            registry = telemetry.registry
            self._obs_bytes = registry.gauge(
                "serve_shm_bytes_in_flight",
                help="Leased shared-memory bytes awaiting worker replies")
            self._obs_slabs = registry.gauge(
                "serve_shm_slabs", help="Live shared-memory slab segments")
            self._obs_recycled = registry.counter(
                "serve_shm_lease_recycled_total",
                help="Leases released back to the slab free lists")

    # -- lease lifecycle ----------------------------------------------------
    def lease(self, nbytes: int) -> ShmLease:
        """Lease ``nbytes`` (rounded up to the alignment grain).

        Raises :class:`ShmExhausted` when no slab can hold the request
        and the slab budget is spent — callers surface that as serving
        backpressure rather than growing without bound.
        """
        if nbytes < 1:
            raise ValueError(f"cannot lease {nbytes} bytes")
        need = -(-int(nbytes) // ALIGNMENT) * ALIGNMENT
        with self._lock:
            if self._closed:
                raise ShmError("allocator is closed")
            offset: Optional[int] = None
            slab: Optional[_Slab] = None
            for candidate in self._slabs:
                offset = candidate.take(need)
                if offset is not None:
                    slab = candidate
                    break
            if offset is None:
                if len(self._slabs) >= self.max_slabs:
                    raise ShmExhausted(
                        f"{len(self._slabs)} slabs at the max_slabs="
                        f"{self.max_slabs} budget cannot hold {need} bytes "
                        f"({self.bytes_in_flight_locked()} in flight)"
                    )
                segment = _create_segment(max(need, self.slab_bytes), "slab")
                slab = _Slab(segment)
                self._slabs.append(slab)
                self._by_segment[segment.name] = slab
                offset = slab.take(need)
                assert offset is not None  # fresh slab always fits `need`
            lease = ShmLease(
                lease_id=self._next_id,
                generation=self._next_generation,
                segment=slab.segment.name,
                offset=offset,
                nbytes=need,
            )
            self._next_id += 1
            self._next_generation += 1
            self._leases[lease.lease_id] = lease
            self.leases_issued_total += 1
            self._update_gauges_locked()
            return lease

    def view(self, lease: ShmLease, shape: Tuple[int, ...],
             dtype=np.float64) -> np.ndarray:
        """A zero-copy numpy view over the leased range (creator side)."""
        with self._lock:
            self._check_lease_locked(lease)
            slab = self._by_segment[lease.segment]
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if nbytes > lease.nbytes:
            raise ShmError(
                f"view of {nbytes} bytes exceeds the {lease.nbytes}-byte "
                f"lease {lease.lease_id}"
            )
        return np.ndarray(shape, dtype=dtype, buffer=slab.segment.buf,
                          offset=lease.offset)

    def release(self, lease: ShmLease) -> None:
        """Recycle a lease; the range becomes reusable immediately.

        Only call once the worker's reply arrived or the worker is
        confirmed dead — this is the point where the bytes may be
        overwritten.  Raises :class:`StaleLease` when the tag does not
        match the table (double release, or a descriptor from before a
        worker restart).
        """
        with self._lock:
            self._check_lease_locked(lease)
            del self._leases[lease.lease_id]
            self._by_segment[lease.segment].give_back(lease.offset, lease.nbytes)
            self.leases_recycled_total += 1
            if self._telemetry is not None:
                self._obs_recycled.inc()
            self._update_gauges_locked()

    def _check_lease_locked(self, lease: ShmLease) -> None:
        held = self._leases.get(lease.lease_id)
        if held is None or held.generation != lease.generation:
            self.stale_releases_total += 1
            raise StaleLease(
                f"lease {lease.lease_id} (generation {lease.generation}) is "
                f"not outstanding; held={held}"
            )

    # -- lifecycle ----------------------------------------------------------
    def close(self, force: bool = False) -> None:
        """Unlink every slab.  Outstanding leases raise :class:`ShmLeak`
        unless ``force`` (shutdown after a worker crash reclaims them)."""
        with self._lock:
            if self._closed:
                return
            if self._leases and not force:
                raise ShmLeak(
                    f"{len(self._leases)} leases still outstanding: "
                    f"{sorted(self._leases)}"
                )
            self._leases.clear()
            self._closed = True
            slabs, self._slabs = self._slabs, []
            self._by_segment.clear()
            self._update_gauges_locked()
        for slab in slabs:
            _destroy_segment(slab.segment)

    # -- observability ------------------------------------------------------
    def bytes_in_flight_locked(self) -> int:
        """Leased bytes (callers hold :attr:`_lock`; stats() wraps this)."""
        return sum(lease.nbytes for lease in self._leases.values())

    def _update_gauges_locked(self) -> None:
        if self._telemetry is not None:
            self._obs_bytes.set(float(self.bytes_in_flight_locked()))
            self._obs_slabs.set(float(len(self._slabs)))

    @property
    def outstanding(self) -> int:
        """Number of leases not yet released."""
        with self._lock:
            return len(self._leases)

    def stats(self) -> dict:
        """Point-in-time allocator counters (for server stats / tests)."""
        with self._lock:
            return {
                "slabs": len(self._slabs),
                "slab_bytes": self.slab_bytes,
                "leases_outstanding": len(self._leases),
                "bytes_in_flight": self.bytes_in_flight_locked(),
                "leases_issued_total": self.leases_issued_total,
                "leases_recycled_total": self.leases_recycled_total,
                "stale_releases_total": self.stale_releases_total,
            }


class SpscRing:
    """A single-producer single-consumer byte FIFO in shared memory.

    Layout: 16-byte header (``head``/``tail`` as monotonically increasing
    little-endian u64 byte counters) followed by ``capacity`` data bytes.
    The writer alone advances ``tail``; the reader alone advances
    ``head``; each side only ever *reads* the other's counter, so the
    single aligned 8-byte stores need no lock.  The announcing pipe
    message (sent after the payload is written) is the ordering edge the
    reader relies on before touching the data.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        owner: bool,
        clock: Clock = SYSTEM_CLOCK,
        sleep: Sleep = SYSTEM_SLEEP,
    ) -> None:
        self._segment = segment
        self._owner = owner
        self.capacity = segment.size - _RING_HEADER.size
        if self.capacity < 1:
            raise ValueError(f"segment of {segment.size} bytes is too small")
        self._clock = clock
        self._sleep = sleep

    # -- construction -------------------------------------------------------
    @classmethod
    def create(cls, capacity: int, clock: Clock = SYSTEM_CLOCK,
               sleep: Sleep = SYSTEM_SLEEP) -> "SpscRing":
        """Create the ring segment (reader/owner side: the parent)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        segment = _create_segment(capacity + _RING_HEADER.size, "ring")
        _RING_HEADER.pack_into(segment.buf, 0, 0, 0)
        return cls(segment, owner=True, clock=clock, sleep=sleep)

    @classmethod
    def attach(cls, name: str, clock: Clock = SYSTEM_CLOCK,
               sleep: Sleep = SYSTEM_SLEEP) -> "SpscRing":
        """Attach to an existing ring (writer side: the worker)."""
        return cls(attach_segment(name), owner=False, clock=clock, sleep=sleep)

    @property
    def name(self) -> str:
        """The shared segment's name (sent to the worker at spawn)."""
        return self._segment.name

    # -- counters -----------------------------------------------------------
    def _read_counters(self) -> Tuple[int, int]:
        return _RING_HEADER.unpack_from(self._segment.buf, 0)

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self._segment.buf, 0, value)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._segment.buf, 8, value)

    # -- data plane ---------------------------------------------------------
    def write(self, payload: bytes, timeout_s: float = 30.0) -> None:
        """Append ``payload`` (writer side); waits for reader progress.

        Payloads larger than the ring can never fit: that raises
        :class:`ShmError` immediately (the worker reports the error
        instead of deadlocking against a reader that is waiting for it).
        """
        view = memoryview(payload)
        if len(view) > self.capacity:
            raise ShmError(
                f"payload of {len(view)} bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        deadline = self._clock() + timeout_s
        while True:
            head, tail = self._read_counters()
            if self.capacity - (tail - head) >= len(view):
                break
            if self._clock() >= deadline:
                raise ShmError(
                    f"ring full for {timeout_s}s (reader stalled at {head})"
                )
            self._sleep(0.0002)
        data = memoryview(self._segment.buf)[_RING_HEADER.size:]
        start = tail % self.capacity
        first = min(len(view), self.capacity - start)
        data[start:start + first] = view[:first]
        if first < len(view):
            data[:len(view) - first] = view[first:]
        self._set_tail(tail + len(view))

    def read(self, nbytes: int, timeout_s: float = 30.0) -> bytes:
        """Consume exactly ``nbytes`` (reader side).

        The protocol announces payload sizes over the pipe before the
        reader calls this, so the wait only covers scheduling skew.
        """
        if nbytes > self.capacity:
            raise ShmError(
                f"cannot read {nbytes} bytes from a {self.capacity}-byte ring"
            )
        deadline = self._clock() + timeout_s
        while True:
            head, tail = self._read_counters()
            if tail - head >= nbytes:
                break
            if self._clock() >= deadline:
                raise ShmError(
                    f"ring has {tail - head} of {nbytes} bytes after "
                    f"{timeout_s}s (writer stalled)"
                )
            self._sleep(0.0002)
        data = memoryview(self._segment.buf)[_RING_HEADER.size:]
        start = head % self.capacity
        first = min(nbytes, self.capacity - start)
        out = bytearray(nbytes)
        out[:first] = data[start:start + first]
        if first < nbytes:
            out[first:] = data[:nbytes - first]
        self._set_head(head + nbytes)
        return bytes(out)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Detach; the owner also unlinks the segment."""
        if self._owner:
            _destroy_segment(self._segment)
        else:
            self._segment.close()
