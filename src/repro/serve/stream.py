"""Streaming sessions: event-driven traffic on :class:`ModelServer`.

A frame request is self-contained; an event stream is *stateful* — the
server must remember a session's events long enough to cut them into
sliding windows.  :class:`StreamingServer` adds that state on top of an
existing :class:`~repro.serve.server.ModelServer` without touching its
internals: sessions buffer events (bounded), cut completed windows into
M-bit count frames, and submit each *window group* through the ordinary
admission queue → micro-batcher → replica pool path.

Determinism contract
--------------------
Engine logits are bit-reproducible only for identical batch shapes
(BLAS reduction order), so grouping is part of the temporal numeric
contract (:class:`~repro.snc.temporal.TemporalConfig.batch_windows`).
Sessions submit windows in exactly the canonical
:func:`~repro.snc.temporal.window_groups` grouping, and the constructor
*requires* the server's ``batch_size`` to equal ``batch_windows`` with
``max_wait_ms == 0`` — a full group fills a micro-batch on arrival, so
the batcher dispatches it alone and served logits are bit-equal to a
direct :func:`~repro.snc.temporal.replay_frames` of the same stream.
(The final, shorter group of a stream can in principle coalesce with a
*concurrently pending* foreign request; finish sessions one at a time,
or accept last-ulp differences on tail windows under contended closes.)

Lifecycle
---------
Sessions expire after ``session_ttl_s`` of inactivity; expiry is swept
lazily on every server call using the injected clock (RL005: no
``time.*`` here, no background threads).  Buffers are bounded
(``max_buffer_events``, ``max_sessions``) and overflow *raises* — load
shedding is explicit, never silent (RL004).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.datasets.event_stream import (
    EventStream,
    counts_to_frames,
    events_to_counts,
    num_windows,
)
from repro.snc.temporal import TemporalConfig, TemporalResult, window_groups

__all__ = [
    "SessionClosed",
    "SessionExpired",
    "StreamBufferFull",
    "StreamConfig",
    "StreamSession",
    "StreamingServer",
    "TooManySessions",
]


class SessionExpired(RuntimeError):
    """The session idled past ``session_ttl_s`` and was reclaimed."""


class SessionClosed(RuntimeError):
    """The session was finished or the streaming server shut down."""


class StreamBufferFull(RuntimeError):
    """A push would exceed the session's bounded event buffer."""


class TooManySessions(RuntimeError):
    """``max_sessions`` concurrent sessions already exist."""


@dataclass
class StreamConfig:
    """Streaming-layer policy knobs.

    ``temporal`` fixes windowing/binning (and, through ``batch_windows``,
    the micro-batch grouping).  ``max_buffer_events`` bounds each
    session's event memory; ``max_sessions`` bounds session count;
    ``session_ttl_s`` reclaims sessions idle longer than the TTL.
    """

    temporal: TemporalConfig = field(default_factory=TemporalConfig)
    height: int = 28
    width: int = 28
    max_buffer_events: int = 262_144
    max_sessions: int = 64
    session_ttl_s: float = 300.0
    deadline_ms: Optional[float] = None
    timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.height < 1 or self.width < 1:
            raise ValueError("height and width must be positive")
        if self.max_buffer_events < 1:
            raise ValueError(
                f"max_buffer_events must be >= 1, got {self.max_buffer_events}"
            )
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.session_ttl_s <= 0:
            raise ValueError(f"session_ttl_s must be positive, got {self.session_ttl_s}")
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")


class StreamSession:
    """One client's event stream in flight.

    Not constructed directly — use :meth:`StreamingServer.open_session`.
    Methods raise :class:`SessionExpired` / :class:`SessionClosed` once
    the session is gone; pushing out-of-order chunks or overflowing the
    bounded buffer raises immediately (``ValueError`` /
    :class:`StreamBufferFull`).
    """

    def __init__(self, server: "StreamingServer", session_id: str,
                 label: int = -1) -> None:
        self._server = server
        self.session_id = session_id
        self.label = label
        self.config = server.config
        self._chunks: List[np.ndarray] = []   # (n, 4) int64 [t, x, y, polarity]
        self._buffered = 0
        self._watermark_us = 0                # no more events before this time
        self._submitted_windows = 0
        self._futures: List = []              # one per submitted window group
        self._group_sizes: List[int] = []
        self._duration_us: Optional[int] = None
        self.closed = False
        self.expired = False
        self.last_activity = server.clock()
        self._lock = threading.Lock()

    # -- event ingestion ----------------------------------------------------
    def push(self, t_us, x, y, polarity) -> int:
        """Append a chunk of events (parallel arrays, arrival order).

        Timestamps must be non-decreasing within the chunk and not
        precede the current watermark (events already binned cannot be
        amended).  Returns the number of buffered events.
        """
        self._server._sweep()
        with self._lock:
            self._check_alive()
            t_us = np.asarray(t_us, dtype=np.int64)
            x = np.asarray(x, dtype=np.int64)
            y = np.asarray(y, dtype=np.int64)
            polarity = np.asarray(polarity, dtype=np.int64)
            if not (len(t_us) == len(x) == len(y) == len(polarity)):
                raise ValueError("event chunk arrays must be parallel")
            if len(t_us) == 0:
                return self._buffered
            if np.any(np.diff(t_us) < 0):
                raise ValueError("event timestamps must be non-decreasing")
            if int(t_us[0]) < self._watermark_us:
                raise ValueError(
                    f"chunk starts at {int(t_us[0])}µs, before the session "
                    f"watermark {self._watermark_us}µs (already binned)"
                )
            if self._buffered + len(t_us) > self.config.max_buffer_events:
                raise StreamBufferFull(
                    f"session {self.session_id}: buffering {len(t_us)} more "
                    f"events would exceed max_buffer_events="
                    f"{self.config.max_buffer_events}"
                )
            self._chunks.append(np.stack([t_us, x, y, polarity], axis=1))
            self._buffered += len(t_us)
            self.last_activity = self._server.clock()
            return self._buffered

    def push_stream(self, stream: EventStream) -> int:
        """Push a whole :class:`EventStream` (and remember its label)."""
        if stream.label is not None:
            self.label = stream.label
        return self.push(stream.t, stream.x, stream.y, stream.polarity)

    # -- window formation ---------------------------------------------------
    def advance(self, watermark_us: int) -> int:
        """Declare that no event before ``watermark_us`` will arrive.

        Every window whose end lies at or before the watermark becomes
        cuttable; complete groups of ``batch_windows`` windows are binned
        and submitted.  Returns the number of windows submitted so far.
        """
        self._server._sweep()
        with self._lock:
            self._check_alive()
            if watermark_us < self._watermark_us:
                raise ValueError("watermark may not move backwards")
            self._watermark_us = watermark_us
            temporal = self.config.temporal
            # Window k covers [k·stride, k·stride + window).
            ready = 0
            while ready * temporal.stride_us + temporal.window_us <= watermark_us:
                ready += 1
            self._submit_groups(ready, final=False)
            self.last_activity = self._server.clock()
            return self._submitted_windows

    def finish(self, duration_us: Optional[int] = None) -> int:
        """Mark end of stream and submit all remaining windows.

        ``duration_us`` fixes the recording length (default: one past the
        last buffered event, or the watermark if higher) and thereby the
        total window count.  Returns that total.  The session stops
        accepting events but its results stay retrievable until expiry.
        """
        self._server._sweep()
        with self._lock:
            self._check_alive()
            if duration_us is None:
                last_event = max(
                    (int(chunk[-1, 0]) for chunk in self._chunks), default=0
                )
                duration_us = max(last_event + 1, self._watermark_us, 1)
            temporal = self.config.temporal
            total = num_windows(duration_us, temporal.window_us, temporal.stride_us)
            if total < self._submitted_windows:
                raise ValueError(
                    f"duration_us={duration_us} implies {total} windows but "
                    f"{self._submitted_windows} were already submitted"
                )
            self._duration_us = duration_us
            self._watermark_us = duration_us
            self._submit_groups(total, final=True)
            self.closed = True
            self.last_activity = self._server.clock()
            return total

    def _submit_groups(self, ready_windows: int, final: bool) -> None:
        """Submit canonical window groups covered by ``ready_windows``.

        Non-final calls only send *full* groups (a partial group might
        still grow); ``finish`` sends the tail too.  Grouping replicates
        :func:`~repro.snc.temporal.window_groups` exactly — that equality
        is what the conformance suite checks.
        """
        temporal = self.config.temporal
        batch = temporal.batch_windows
        while True:
            start = self._submitted_windows
            stop = min(start + batch, ready_windows)
            if stop <= start or (stop - start < batch and not final):
                break
            frames = self._bin_windows(start, stop)
            future = self._server.server.submit_async(
                frames, deadline_ms=self.config.deadline_ms
            )
            self._futures.append(future)
            self._group_sizes.append(stop - start)
            self._submitted_windows = stop
            self._server._record_windows(stop - start)

    def _bin_windows(self, start: int, stop: int) -> np.ndarray:
        temporal = self.config.temporal
        events = (
            np.concatenate(self._chunks, axis=0)
            if self._chunks else np.zeros((0, 4), dtype=np.int64)
        )
        # Chunks are time-ordered between and within themselves, so the
        # concatenation is already sorted.
        horizon = int(events[-1, 0]) + 1 if len(events) else 1
        stream = EventStream(
            t=events[:, 0],
            x=events[:, 1].astype(np.int16),
            y=events[:, 2].astype(np.int16),
            polarity=events[:, 3].astype(np.int8),
            label=self.label,
            duration_us=max(self._watermark_us, horizon),
            height=self.config.height,
            width=self.config.width,
        )
        counts = np.stack([
            events_to_counts(
                stream,
                k * temporal.stride_us,
                k * temporal.stride_us + temporal.window_us,
                temporal.signal_bits,
                polarity=temporal.polarity,
            )
            for k in range(start, stop)
        ])
        return counts_to_frames(counts, temporal.signal_bits)

    # -- results ------------------------------------------------------------
    def logits(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block for every submitted group; per-window logits, in order."""
        timeout = timeout if timeout is not None else self.config.timeout_s
        with self._lock:
            futures = list(self._futures)
        parts = [np.asarray(f.result(timeout), dtype=np.float64) for f in futures]
        if not parts:
            return np.zeros((0, 0), dtype=np.float64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    def result(self, timeout: Optional[float] = None) -> TemporalResult:
        """Rate-coded readout over everything served so far.

        Call after :meth:`finish` for the whole-stream decision.
        """
        logits = self.logits(timeout)
        if logits.size == 0:
            raise RuntimeError("no windows were submitted; push events first")
        prediction = int(logits.sum(axis=0).argmax())
        return TemporalResult(
            per_window_logits=logits,
            prediction=prediction,
            label=self.label,
            decision_window=len(logits) - 1,
            total_windows=len(logits),
        )

    @property
    def windows_submitted(self) -> int:
        return self._submitted_windows

    @property
    def buffered_events(self) -> int:
        return self._buffered

    # -- internals ----------------------------------------------------------
    def _check_alive(self) -> None:
        if self.expired:
            raise SessionExpired(
                f"session {self.session_id} expired after "
                f"{self.config.session_ttl_s}s idle"
            )
        if self.closed:
            raise SessionClosed(f"session {self.session_id} is finished")


class StreamingServer:
    """Session manager layering event-stream traffic onto a ModelServer.

    The wrapped server must be grouping-aligned (see the module
    docstring): ``batch_size == temporal.batch_windows`` and
    ``max_wait_ms == 0``.  :meth:`for_system` builds such a server from a
    :class:`~repro.snc.system.SpikingSystem` directly.
    """

    def __init__(self, server, config: Optional[StreamConfig] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.config = config or StreamConfig()
        self.server = server
        server_config = getattr(server, "config", None)
        if server_config is not None:
            if server_config.batch_size != self.config.temporal.batch_windows:
                raise ValueError(
                    f"server batch_size ({server_config.batch_size}) must equal "
                    f"temporal.batch_windows "
                    f"({self.config.temporal.batch_windows}) — grouping is the "
                    f"bit-exactness contract"
                )
            if server_config.max_wait_ms != 0:
                raise ValueError(
                    "server max_wait_ms must be 0 for streaming sessions "
                    "(coalescing across sessions breaks grouping)"
                )
        self.clock = clock if clock is not None else server.clock
        self.sessions: Dict[str, StreamSession] = {}
        self._ids = itertools.count()
        self._lock = threading.Lock()
        self._windows_served = 0
        self._sessions_expired = 0
        self.telemetry = getattr(server, "telemetry", None)
        if self.telemetry is not None:
            registry = self.telemetry.registry
            self._obs_sessions = registry.counter(
                "stream_sessions_opened_total", help="Streaming sessions opened")
            self._obs_windows = registry.counter(
                "stream_windows_submitted_total",
                help="Event windows submitted through sessions")
            self._obs_expired = registry.counter(
                "stream_sessions_expired_total",
                help="Streaming sessions reclaimed by TTL expiry")

    @classmethod
    def for_system(cls, system, config: Optional[StreamConfig] = None,
                   workers: int = 2, telemetry=None) -> "StreamingServer":
        """Build a grouping-aligned ModelServer over ``system`` and wrap it."""
        from repro.serve.server import ServeConfig

        config = config or StreamConfig()
        server = system.serve(
            serve_config=ServeConfig(
                workers=workers,
                batch_size=config.temporal.batch_windows,
                max_wait_ms=0.0,
            ),
            telemetry=telemetry,
        )
        return cls(server, config)

    # -- session lifecycle --------------------------------------------------
    def open_session(self, label: int = -1) -> StreamSession:
        """Create a session (bounded by ``max_sessions``)."""
        self._sweep()
        with self._lock:
            if len(self.sessions) >= self.config.max_sessions:
                raise TooManySessions(
                    f"{len(self.sessions)} sessions open; max_sessions="
                    f"{self.config.max_sessions}"
                )
            session_id = f"s{next(self._ids)}"
            session = StreamSession(self, session_id, label=label)
            self.sessions[session_id] = session
        if self.telemetry is not None:
            self._obs_sessions.inc()
        return session

    def session(self, session_id: str) -> StreamSession:
        """Look up a live session by id."""
        self._sweep()
        with self._lock:
            if session_id not in self.sessions:
                raise KeyError(f"no session {session_id!r} (expired or never opened)")
            return self.sessions[session_id]

    def drop_session(self, session_id: str) -> None:
        """Forget a session explicitly (its pending futures keep running)."""
        with self._lock:
            session = self.sessions.pop(session_id, None)
        if session is not None:
            session.closed = True

    def serve_stream(self, stream: EventStream,
                     timeout: Optional[float] = None) -> TemporalResult:
        """Convenience: one stream in, one rate-coded decision out."""
        session = self.open_session(label=stream.label)
        try:
            session.push_stream(stream)
            session.finish(stream.duration_us)
            return session.result(timeout)
        finally:
            self.drop_session(session.session_id)

    # -- lifecycle ----------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Drop every session and shut the underlying server down."""
        with self._lock:
            for session in self.sessions.values():
                session.closed = True
            self.sessions.clear()
        self.server.close(drain=drain)

    def __enter__(self) -> "StreamingServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- observability ------------------------------------------------------
    def stats(self) -> dict:
        """Session counters merged over the wrapped server's stats."""
        with self._lock:
            open_sessions = len(self.sessions)
            windows = self._windows_served
            expired = self._sessions_expired
        stats = dict(self.server.stats())
        stats.update({
            "open_sessions": open_sessions,
            "windows_served": windows,
            "sessions_expired": expired,
        })
        return stats

    # -- internals ----------------------------------------------------------
    def _record_windows(self, count: int) -> None:
        with self._lock:
            self._windows_served += count
        if self.telemetry is not None:
            self._obs_windows.inc(count)

    def _sweep(self) -> None:
        """Reclaim sessions idle past the TTL (lazy, injected clock)."""
        now = self.clock()
        ttl = self.config.session_ttl_s
        with self._lock:
            stale = [
                sid for sid, session in self.sessions.items()
                if now - session.last_activity > ttl
            ]
            for sid in stale:
                session = self.sessions.pop(sid)
                session.expired = True
                self._sessions_expired += 1
        if stale and self.telemetry is not None:
            self._obs_expired.inc(len(stale))
