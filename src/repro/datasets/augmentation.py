"""Training-time data augmentation.

Standard augmentations for the synthetic image tasks: random translation
(padded crop), horizontal flip (meaningful for the CIFAR-like shape
classes, which are left-right symmetric families), and additive noise.
Augmentation operates on batches at load time via :class:`AugmentedLoader`
so the base dataset stays deterministic and cacheable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.nn.data import DataLoader, Dataset


@dataclass(frozen=True)
class AugmentationConfig:
    """Which augmentations to apply, and how strongly."""

    max_shift: int = 2           # random translation in pixels (0 = off)
    horizontal_flip: bool = True
    noise_sigma: float = 0.02    # additive Gaussian noise (0 = off)

    def __post_init__(self) -> None:
        if self.max_shift < 0:
            raise ValueError("max_shift must be >= 0")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")


def random_shift(
    images: np.ndarray, max_shift: int, rng: np.random.Generator
) -> np.ndarray:
    """Translate each image by an independent random (dy, dx); zero-pad."""
    if max_shift == 0:
        return images
    batch, channels, height, width = images.shape
    padded = np.pad(
        images,
        ((0, 0), (0, 0), (max_shift, max_shift), (max_shift, max_shift)),
    )
    out = np.empty_like(images)
    shifts = rng.integers(0, 2 * max_shift + 1, size=(batch, 2))
    for i, (dy, dx) in enumerate(shifts):
        out[i] = padded[i, :, dy : dy + height, dx : dx + width]
    return out


def random_horizontal_flip(
    images: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Flip each image left-right with probability ½."""
    flips = rng.random(images.shape[0]) < 0.5
    out = images.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def apply_augmentation(
    images: np.ndarray, config: AugmentationConfig, rng: np.random.Generator
) -> np.ndarray:
    """Apply the configured augmentations to one batch (copy, not in place)."""
    out = random_shift(images, config.max_shift, rng)
    if config.horizontal_flip:
        out = random_horizontal_flip(out, rng)
    if config.noise_sigma > 0:
        out = out + rng.normal(0.0, config.noise_sigma, size=out.shape)
    return out


class AugmentedLoader:
    """A :class:`DataLoader` that augments each batch as it is yielded."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        config: AugmentationConfig = AugmentationConfig(),
        rng: Optional[np.random.Generator] = None,
        shuffle: bool = True,
    ) -> None:
        self.config = config
        self.rng = rng or np.random.default_rng()
        self._loader = DataLoader(
            dataset, batch_size=batch_size, shuffle=shuffle, rng=self.rng
        )

    def __len__(self) -> int:
        return len(self._loader)

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for images, labels in self._loader:
            yield apply_augmentation(images, self.config, self.rng), labels
