"""repro.datasets — deterministic synthetic stand-ins for MNIST and CIFAR-10.

This environment has no network access, so the real datasets cannot be
downloaded.  These generators produce tasks with the same tensor formats
(28×28×1 and 32×32×3, ten classes each) whose classes are defined by shape
and structure rather than point statistics; see DESIGN.md for why this
preserves the behaviours the paper measures.
"""

from repro.datasets.augmentation import (
    AugmentationConfig,
    AugmentedLoader,
    apply_augmentation,
    random_horizontal_flip,
    random_shift,
)
from repro.datasets.cifar_like import cifar_like, generate_cifar_like, render_class_image
from repro.datasets.event_stream import (
    EventStream,
    EventStreamDataset,
    counts_to_frames,
    event_stream_like,
    events_to_counts,
    generate_event_stream,
    generate_event_streams,
    sliding_window_counts,
)
from repro.datasets.glyphs import all_glyphs, digit_glyph
from repro.datasets.mnist_like import generate_mnist_like, mnist_like, render_digit
from repro.datasets.registry import (
    available_datasets,
    clear_cache,
    load_dataset,
    register_dataset,
)

__all__ = [
    "mnist_like",
    "generate_mnist_like",
    "render_digit",
    "cifar_like",
    "generate_cifar_like",
    "render_class_image",
    "digit_glyph",
    "all_glyphs",
    "EventStream",
    "EventStreamDataset",
    "event_stream_like",
    "generate_event_stream",
    "generate_event_streams",
    "events_to_counts",
    "sliding_window_counts",
    "counts_to_frames",
    "load_dataset",
    "register_dataset",
    "available_datasets",
    "clear_cache",
    "AugmentationConfig",
    "AugmentedLoader",
    "apply_augmentation",
    "random_shift",
    "random_horizontal_flip",
]
