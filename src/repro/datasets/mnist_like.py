"""Synthetic MNIST-like digit dataset.

The real MNIST cannot be downloaded in this offline environment; this module
generates a drop-in replacement with the same tensor format (28×28×1, ten
classes).  Each sample renders a digit glyph and perturbs it with

- random rotation (±20°), scale (0.8–1.2), shear, and sub-pixel translation,
- random stroke thickness (box blur + threshold),
- additive Gaussian noise,

so intra-class variation is continuous while class identity is topological —
the same regime that makes MNIST easy for convnets yet sensitive to
aggressive activation/weight quantization, which is what the paper studies.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import transforms as T
from repro.datasets.glyphs import digit_glyph
from repro.nn.data import Dataset

IMAGE_SIZE = 28
NUM_CLASSES = 10
_UPSCALE = 4  # 7×5 glyph → 28×20 before the affine warp


def render_digit(
    digit: int,
    rng: np.random.Generator,
    noise_sigma: float = 0.08,
    max_rotation_deg: float = 20.0,
    max_shift: float = 2.5,
) -> np.ndarray:
    """Render one perturbed 28×28 digit image with values in [0, 1]."""
    glyph = digit_glyph(digit)
    big = T.upscale_nearest(glyph, _UPSCALE)  # 28×20
    canvas = T.center_in_canvas(big, (IMAGE_SIZE, IMAGE_SIZE))

    # Stroke thickness: blur then re-threshold at a random level.
    thickness = rng.uniform(0.25, 0.6)
    smooth = T.box_blur(canvas, radius=1)
    inked = np.clip((smooth - thickness) * 4.0, 0.0, 1.0)

    angle = np.deg2rad(rng.uniform(-max_rotation_deg, max_rotation_deg))
    scale = rng.uniform(0.8, 1.2)
    shear = rng.uniform(-0.15, 0.15)
    matrix = T.rotation_matrix(angle) @ T.scale_matrix(scale, scale) @ T.shear_matrix(shear)
    offset = (rng.uniform(-max_shift, max_shift), rng.uniform(-max_shift, max_shift))
    warped = T.affine_sample(inked, matrix, offset)

    return T.add_gaussian_noise(warped, noise_sigma, rng)


def generate_mnist_like(
    size: int,
    seed: int = 0,
    noise_sigma: float = 0.08,
    name: str = "mnist-like",
) -> Dataset:
    """Generate a dataset of ``size`` samples, balanced across the ten digits.

    Images are normalized to zero mean / unit-ish variance using fixed
    constants so train and test sets share the same scaling.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    rng = np.random.default_rng(seed)
    labels = np.arange(size) % NUM_CLASSES
    rng.shuffle(labels)
    images = np.empty((size, 1, IMAGE_SIZE, IMAGE_SIZE))
    for i, label in enumerate(labels):
        images[i, 0] = render_digit(int(label), rng, noise_sigma=noise_sigma)
    images = T.normalize(images, mean=0.15, std=0.35)
    return Dataset(images, labels.astype(np.int64), name=name)


def mnist_like(
    train_size: int = 2000,
    test_size: int = 500,
    seed: int = 0,
    noise_sigma: float = 0.08,
):
    """Return ``(train, test)`` MNIST-like datasets with disjoint seeds."""
    train = generate_mnist_like(train_size, seed=seed, noise_sigma=noise_sigma)
    test = generate_mnist_like(
        test_size, seed=seed + 1_000_003, noise_sigma=noise_sigma, name="mnist-like-test"
    )
    return train, test
