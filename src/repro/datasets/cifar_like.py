"""Synthetic CIFAR-like colour image dataset.

A ten-class 32×32×3 task standing in for CIFAR-10.  Classes are defined by
*structure* (which pattern family generated the image) while colour, phase,
frequency, position and noise vary freely within a class — so, as with
natural images, a classifier must learn spatial features rather than
point statistics.  The ten families:

0. horizontal stripes            5. filled squares
1. vertical stripes              6. rings (annuli)
2. diagonal stripes              7. radial gradient blobs
3. checkerboard                  8. crosses
4. filled circles                9. triangles

Intra-class difficulty is deliberately high (random colours on random
backgrounds, partial occlusion by noise) so that low-bit quantization of a
trained network produces the visible accuracy collapse the paper reports on
CIFAR-10 (Tables 2–4).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.datasets import transforms as T
from repro.nn.data import Dataset

IMAGE_SIZE = 32
NUM_CLASSES = 10


def _random_colors(rng: np.random.Generator):
    """Two distinct random RGB colours (foreground, background)."""
    fg = rng.uniform(0.1, 1.0, size=3)
    bg = rng.uniform(0.0, 0.9, size=3)
    # Re-draw until visibly distinct to keep the class learnable.
    while np.abs(fg - bg).sum() < 0.6:
        bg = rng.uniform(0.0, 0.9, size=3)
    return fg, bg


def _coords():
    ys, xs = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE].astype(np.float64)
    return ys, xs


def _stripes(rng: np.random.Generator, direction: str) -> np.ndarray:
    ys, xs = _coords()
    freq = rng.uniform(0.25, 0.9)
    phase = rng.uniform(0, 2 * np.pi)
    if direction == "h":
        field = ys
    elif direction == "v":
        field = xs
    else:  # diagonal
        angle = rng.uniform(np.pi / 6, np.pi / 3)
        field = ys * np.cos(angle) + xs * np.sin(angle)
    return (np.sin(field * freq + phase) > 0).astype(float)


def _checkerboard(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cell = rng.integers(3, 7)
    phase_y, phase_x = rng.integers(0, cell, size=2)
    return ((((ys + phase_y) // cell) + ((xs + phase_x) // cell)) % 2).astype(float)


def _disk(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cy, cx = rng.uniform(9, 23, size=2)
    radius = rng.uniform(5, 10)
    return ((ys - cy) ** 2 + (xs - cx) ** 2 <= radius ** 2).astype(float)


def _square(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cy, cx = rng.uniform(9, 23, size=2)
    half = rng.uniform(4, 9)
    angle = rng.uniform(0, np.pi / 4)
    ry = (ys - cy) * np.cos(angle) + (xs - cx) * np.sin(angle)
    rx = -(ys - cy) * np.sin(angle) + (xs - cx) * np.cos(angle)
    return ((np.abs(ry) <= half) & (np.abs(rx) <= half)).astype(float)


def _ring(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cy, cx = rng.uniform(11, 21, size=2)
    outer = rng.uniform(7, 11)
    inner = outer - rng.uniform(2.0, 3.5)
    dist2 = (ys - cy) ** 2 + (xs - cx) ** 2
    return ((dist2 <= outer ** 2) & (dist2 >= inner ** 2)).astype(float)


def _blob(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cy, cx = rng.uniform(8, 24, size=2)
    sigma = rng.uniform(3.5, 7.0)
    return np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2))


def _cross(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cy, cx = rng.uniform(10, 22, size=2)
    arm = rng.uniform(7, 12)
    thick = rng.uniform(1.5, 3.5)
    vertical = (np.abs(xs - cx) <= thick) & (np.abs(ys - cy) <= arm)
    horizontal = (np.abs(ys - cy) <= thick) & (np.abs(xs - cx) <= arm)
    return (vertical | horizontal).astype(float)


def _triangle(rng: np.random.Generator) -> np.ndarray:
    ys, xs = _coords()
    cy, cx = rng.uniform(11, 21, size=2)
    size = rng.uniform(7, 11)
    # Upward triangle: inside if below the two slanted edges and above base.
    below_base = ys <= cy + size / 2
    left_edge = (xs - cx) >= -(cy + size / 2 - ys) * 0.7
    right_edge = (xs - cx) <= (cy + size / 2 - ys) * 0.7
    above_apex = ys >= cy - size / 2
    return (below_base & left_edge & right_edge & above_apex).astype(float)


_FAMILIES: Dict[int, Callable[[np.random.Generator], np.ndarray]] = {
    0: lambda rng: _stripes(rng, "h"),
    1: lambda rng: _stripes(rng, "v"),
    2: lambda rng: _stripes(rng, "d"),
    3: _checkerboard,
    4: _disk,
    5: _square,
    6: _ring,
    7: _blob,
    8: _cross,
    9: _triangle,
}


def render_class_image(
    label: int, rng: np.random.Generator, noise_sigma: float = 0.06
) -> np.ndarray:
    """Render one 3×32×32 image of class ``label``, values roughly in [0, 1]."""
    if label not in _FAMILIES:
        raise ValueError(f"label must be 0-{NUM_CLASSES - 1}, got {label}")
    mask = _FAMILIES[label](rng)
    fg, bg = _random_colors(rng)
    image = mask[None, :, :] * fg[:, None, None] + (1 - mask[None, :, :]) * bg[:, None, None]
    # Background texture so point statistics are uninformative.
    texture = rng.normal(0.0, 0.05, size=image.shape)
    image = np.clip(image + texture, 0.0, 1.0)
    noisy = np.stack(
        [T.add_gaussian_noise(channel, noise_sigma, rng) for channel in image]
    )
    return noisy


def generate_cifar_like(
    size: int,
    seed: int = 0,
    noise_sigma: float = 0.06,
    name: str = "cifar-like",
) -> Dataset:
    """Generate a balanced dataset of ``size`` CIFAR-like samples."""
    if size <= 0:
        raise ValueError("size must be positive")
    rng = np.random.default_rng(seed)
    labels = np.arange(size) % NUM_CLASSES
    rng.shuffle(labels)
    images = np.empty((size, 3, IMAGE_SIZE, IMAGE_SIZE))
    for i, label in enumerate(labels):
        images[i] = render_class_image(int(label), rng, noise_sigma=noise_sigma)
    images = T.normalize(images, mean=0.45, std=0.27)
    return Dataset(images, labels.astype(np.int64), name=name)


def cifar_like(
    train_size: int = 2000,
    test_size: int = 500,
    seed: int = 0,
    noise_sigma: float = 0.06,
):
    """Return ``(train, test)`` CIFAR-like datasets with disjoint seeds."""
    train = generate_cifar_like(train_size, seed=seed, noise_sigma=noise_sigma)
    test = generate_cifar_like(
        test_size, seed=seed + 1_000_003, noise_sigma=noise_sigma, name="cifar-like-test"
    )
    return train, test
