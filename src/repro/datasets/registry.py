"""Named dataset registry with in-process caching.

The benchmark harness generates the same dataset many times (every table
row trains on it); caching by the full parameter tuple keeps reruns cheap
while staying deterministic.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.datasets.cifar_like import cifar_like
from repro.datasets.event_stream import event_stream_like
from repro.datasets.mnist_like import mnist_like
from repro.nn.data import Dataset

_BUILDERS: Dict[str, Callable[..., Tuple[Dataset, Dataset]]] = {
    "mnist-like": mnist_like,
    "cifar-like": cifar_like,
    "dvs-gesture-like": event_stream_like,
}

_CACHE: Dict[tuple, Tuple[Dataset, Dataset]] = {}


def available_datasets() -> list:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_BUILDERS)


def register_dataset(name: str, builder: Callable[..., Tuple[Dataset, Dataset]]) -> None:
    """Add a custom dataset builder (returns ``(train, test)``)."""
    if name in _BUILDERS:
        raise ValueError(f"dataset {name!r} already registered")
    _BUILDERS[name] = builder


def load_dataset(
    name: str, train_size: int = 2000, test_size: int = 500, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Build (or fetch from cache) the named dataset pair."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    key = (name, train_size, test_size, seed)
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[name](train_size=train_size, test_size=test_size, seed=seed)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to bound memory)."""
    _CACHE.clear()
