"""Bitmap glyphs for the ten digits.

A small 5×7 pixel font.  The MNIST-like generator renders these glyphs with
random affine jitter, stroke-thickness variation and noise, which yields an
image-classification task of the same flavour as handwritten digits:
classes are defined by shape topology, instances vary continuously.
"""

from __future__ import annotations

import numpy as np

# Each glyph is 7 rows × 5 columns; "#" marks ink.
_GLYPH_ROWS = {
    0: [" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "],
    1: ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    2: [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    3: [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    4: ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    5: ["#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "],
    6: [" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "],
    7: ["#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "],
    8: [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    9: [" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "],
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5
NUM_GLYPHS = 10


def digit_glyph(digit: int) -> np.ndarray:
    """Return the 7×5 binary bitmap of ``digit`` (0–9)."""
    if digit not in _GLYPH_ROWS:
        raise ValueError(f"digit must be 0-9, got {digit}")
    rows = _GLYPH_ROWS[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows])


def all_glyphs() -> np.ndarray:
    """Stack all ten glyphs into a ``(10, 7, 5)`` array."""
    return np.stack([digit_glyph(d) for d in range(NUM_GLYPHS)])
