"""Image transforms used by the synthetic dataset generators.

Everything is plain numpy.  The core primitive is :func:`affine_sample`,
which resamples an image under a 2×2 linear map plus translation with
bilinear interpolation — enough to express the rotation / scale / shift
jitter that makes synthetic classes non-trivial.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def affine_sample(
    image: np.ndarray,
    matrix: np.ndarray,
    offset: Tuple[float, float] = (0.0, 0.0),
    output_shape: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """Resample ``image`` (H, W) under an inverse affine map, bilinear.

    For each output pixel ``p``, the source location is
    ``matrix @ (p - center_out) + center_in + offset``; out-of-range samples
    read as zero.
    """
    if image.ndim != 2:
        raise ValueError(f"affine_sample expects a 2-D image, got {image.shape}")
    height, width = image.shape
    out_h, out_w = output_shape if output_shape is not None else (height, width)

    ys, xs = np.mgrid[0:out_h, 0:out_w].astype(np.float64)
    cy_out, cx_out = (out_h - 1) / 2.0, (out_w - 1) / 2.0
    cy_in, cx_in = (height - 1) / 2.0, (width - 1) / 2.0

    rel = np.stack([ys - cy_out, xs - cx_out])
    src = np.tensordot(matrix, rel, axes=(1, 0))
    sy = src[0] + cy_in + offset[0]
    sx = src[1] + cx_in + offset[1]

    y0 = np.floor(sy).astype(int)
    x0 = np.floor(sx).astype(int)
    wy = sy - y0
    wx = sx - x0

    def fetch(yy: np.ndarray, xx: np.ndarray) -> np.ndarray:
        valid = (yy >= 0) & (yy < height) & (xx >= 0) & (xx < width)
        values = np.zeros_like(sy)
        values[valid] = image[yy[valid], xx[valid]]
        return values

    top = (1 - wx) * fetch(y0, x0) + wx * fetch(y0, x0 + 1)
    bottom = (1 - wx) * fetch(y0 + 1, x0) + wx * fetch(y0 + 1, x0 + 1)
    return (1 - wy) * top + wy * bottom


def rotation_matrix(angle_rad: float) -> np.ndarray:
    """Inverse-map rotation matrix for :func:`affine_sample`."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, -s], [s, c]])


def scale_matrix(scale_y: float, scale_x: float) -> np.ndarray:
    """Inverse-map scaling matrix (``scale > 1`` magnifies the content)."""
    return np.array([[1.0 / scale_y, 0.0], [0.0, 1.0 / scale_x]])


def shear_matrix(shear: float) -> np.ndarray:
    """Inverse-map horizontal shear."""
    return np.array([[1.0, 0.0], [shear, 1.0]])


def upscale_nearest(image: np.ndarray, factor: int) -> np.ndarray:
    """Integer nearest-neighbour upscale of a 2-D image."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return np.repeat(np.repeat(image, factor, axis=0), factor, axis=1)


def box_blur(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Separable box blur; cheap stand-in for a Gaussian."""
    if radius < 1:
        return image
    size = 2 * radius + 1
    kernel = np.ones(size) / size
    padded = np.pad(image, radius, mode="edge")
    blurred = np.apply_along_axis(lambda r: np.convolve(r, kernel, mode="valid"), 1, padded)
    blurred = np.apply_along_axis(lambda c: np.convolve(c, kernel, mode="valid"), 0, blurred)
    return blurred


def add_gaussian_noise(
    image: np.ndarray, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Additive Gaussian pixel noise, clipped to [0, 1]."""
    return np.clip(image + rng.normal(0.0, sigma, size=image.shape), 0.0, 1.0)


def normalize(images: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Standard (x - mean) / std normalization."""
    if std <= 0:
        raise ValueError("std must be positive")
    return (images - mean) / std


def center_in_canvas(image: np.ndarray, canvas: Tuple[int, int]) -> np.ndarray:
    """Paste a small image centred on a zero canvas of shape ``canvas``."""
    out = np.zeros(canvas)
    h, w = image.shape
    ch, cw = canvas
    if h > ch or w > cw:
        raise ValueError(f"image {image.shape} larger than canvas {canvas}")
    top = (ch - h) // 2
    left = (cw - w) // 2
    out[top : top + h, left : left + w] = image
    return out
