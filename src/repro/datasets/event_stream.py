"""Procedural DVS-gesture-like event-stream dataset.

The paper's target substrate is a *spiking* neuromorphic system, whose
natural input is not a frame but an address-event stream: a sparse
sequence of ``(t, x, y, polarity)`` tuples emitted where scene brightness
changes — the output format of a dynamic vision sensor (DVS).  Real DVS
gesture recordings cannot be downloaded in this offline environment, so
this module generates a procedural stand-in with the same data shape:
each sample is an event stream whose *class identity is a temporal
pattern* (sweep direction, rotation sense, radial expansion…), not a
static shape — classifying a single frozen window is deliberately
ambiguous, while a handful of consecutive windows disambiguate.

Generation is a change-detection camera pointed at a procedurally moving
bright pattern: the pattern's occupancy grid is rasterized at a fixed
step rate, newly covered pixels emit ON events and vacated pixels emit
OFF events (timestamps jittered uniformly inside the step), plus a low
rate of salt-and-pepper noise events.  Every sample is deterministic
from ``(seed, index)`` via :func:`repro.snc.seeding.substream`, exactly
like the glyph-rendered image sets — regeneration order never matters.

Windowing (:func:`events_to_counts`, :func:`sliding_window_counts`)
turns a stream back into M-bit *count frames*: per-pixel event counts
over a time window, clipped to the ``2^M − 1`` spike window the SNC's
rate code can carry (Sec. 1 / Eq. 2) — counts above the window saturate,
exactly as a real IFC+counter pair would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


def _substream(seed: int, token: str, coordinates: Tuple[int, ...] = ()) -> np.random.Generator:
    # Imported lazily: repro.snc's package init reaches repro.core →
    # repro.analysis → datasets.registry, which imports this module — a
    # module-level import here would close that cycle.
    from repro.snc.seeding import substream

    return substream(seed, token, coordinates)


def _window_length(bits: int) -> int:
    from repro.snc.spikes import window_length  # lazy: see _substream

    return window_length(bits)


GRID_SIZE = 28
NUM_CLASSES = 10
DEFAULT_DURATION_US = 100_000  # 100 ms per gesture sample
DEFAULT_STEPS = 64             # rasterization steps per sample

#: Temporal pattern behind each class label.
CLASS_PATTERNS: Tuple[str, ...] = (
    "sweep-right", "sweep-left", "sweep-down", "sweep-up",
    "rotate-cw", "rotate-ccw", "expand", "contract",
    "converge", "diverge",
)


@dataclass(frozen=True)
class EventStream:
    """One address-event stream: parallel arrays sorted by timestamp.

    Attributes
    ----------
    t:
        Event timestamps in microseconds, ``int64``, ascending.
    x, y:
        Pixel coordinates, ``int16`` (``x`` is the column, ``y`` the row).
    polarity:
        ``int8``: ``1`` for ON (brightness increase), ``0`` for OFF.
    label:
        Class index (see :data:`CLASS_PATTERNS`).
    duration_us:
        Length of the recording — events satisfy ``0 <= t < duration_us``.
    height, width:
        Sensor grid size.
    """

    t: np.ndarray
    x: np.ndarray
    y: np.ndarray
    polarity: np.ndarray
    label: int
    duration_us: int
    height: int = GRID_SIZE
    width: int = GRID_SIZE

    def __post_init__(self) -> None:
        n = len(self.t)
        if not (len(self.x) == len(self.y) == len(self.polarity) == n):
            raise ValueError("event arrays must be parallel (equal length)")
        if n and np.any(np.diff(self.t) < 0):
            raise ValueError("event timestamps must be ascending")

    def __len__(self) -> int:
        return len(self.t)

    @property
    def num_events(self) -> int:
        """Number of events in the stream."""
        return len(self.t)

    def slice_time(self, t0_us: int, t1_us: int) -> "EventStream":
        """Events with ``t0_us <= t < t1_us`` (timestamps kept absolute)."""
        lo = int(np.searchsorted(self.t, t0_us, side="left"))
        hi = int(np.searchsorted(self.t, t1_us, side="left"))
        return EventStream(
            t=self.t[lo:hi], x=self.x[lo:hi], y=self.y[lo:hi],
            polarity=self.polarity[lo:hi], label=self.label,
            duration_us=self.duration_us, height=self.height, width=self.width,
        )


class EventStreamDataset:
    """A labeled collection of :class:`EventStream` samples.

    The event analogue of :class:`repro.nn.data.Dataset` — paired
    ``(streams, labels)`` rather than ``(images, labels)``; batch
    consumers window each stream into count frames first.
    """

    def __init__(self, streams: Sequence[EventStream], name: str = "events") -> None:
        self.streams: List[EventStream] = list(streams)
        self.labels = np.array([s.label for s in self.streams], dtype=np.int64)
        self.name = name

    def __len__(self) -> int:
        return len(self.streams)

    def __getitem__(self, index: int) -> EventStream:
        return self.streams[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def grid(self) -> Tuple[int, int]:
        """(height, width) of the sensor grid (uniform across samples)."""
        if not self.streams:
            return (GRID_SIZE, GRID_SIZE)
        first = self.streams[0]
        return (first.height, first.width)


# ---------------------------------------------------------------------------
# Pattern rasterization
# ---------------------------------------------------------------------------

def _occupancy(pattern: str, phase: float, height: int, width: int,
               jitter: np.ndarray) -> np.ndarray:
    """Boolean occupancy grid of ``pattern`` at ``phase`` ∈ [0, 1].

    ``jitter`` is a per-sample parameter vector (center offset, size and
    phase perturbations) so instances vary continuously within a class.
    """
    ys, xs = np.mgrid[0:height, 0:width]
    cy = (height - 1) / 2.0 + jitter[0]
    cx = (width - 1) / 2.0 + jitter[1]
    thickness = 1.2 + 0.6 * jitter[2]
    radius = (min(height, width) / 2.0 - 3.0) * (0.8 + 0.15 * jitter[3])
    p = (phase + 0.08 * jitter[4]) % 1.0 if pattern.startswith("rotate") else phase

    if pattern == "sweep-right":
        pos = p * (width - 1)
        return np.abs(xs - pos) <= thickness
    if pattern == "sweep-left":
        pos = (1.0 - p) * (width - 1)
        return np.abs(xs - pos) <= thickness
    if pattern == "sweep-down":
        pos = p * (height - 1)
        return np.abs(ys - pos) <= thickness
    if pattern == "sweep-up":
        pos = (1.0 - p) * (height - 1)
        return np.abs(ys - pos) <= thickness
    if pattern in ("rotate-cw", "rotate-ccw"):
        sign = 1.0 if pattern == "rotate-cw" else -1.0
        angle = sign * 2.0 * np.pi * p
        by = cy + radius * 0.8 * np.sin(angle)
        bx = cx + radius * 0.8 * np.cos(angle)
        return (ys - by) ** 2 + (xs - bx) ** 2 <= (1.6 + thickness) ** 2
    if pattern in ("expand", "contract"):
        r = (p if pattern == "expand" else 1.0 - p) * radius + 1.0
        distance = np.sqrt((ys - cy) ** 2 + (xs - cx) ** 2)
        return np.abs(distance - r) <= thickness
    if pattern in ("converge", "diverge"):
        d = ((1.0 - p) if pattern == "converge" else p) * radius
        blobs = np.zeros((height, width), dtype=bool)
        for sign in (-1.0, 1.0):
            by = cy + sign * d * 0.7
            bx = cx + sign * d * 0.7
            blobs |= (ys - by) ** 2 + (xs - bx) ** 2 <= (1.2 + thickness) ** 2
        return blobs
    raise ValueError(f"unknown pattern {pattern!r}")


def generate_event_stream(
    label: int,
    rng: np.random.Generator,
    height: int = GRID_SIZE,
    width: int = GRID_SIZE,
    duration_us: int = DEFAULT_DURATION_US,
    steps: int = DEFAULT_STEPS,
    noise_events_per_step: float = 1.0,
) -> EventStream:
    """Generate one labeled gesture as a change-detection event stream.

    Rasterizes the class pattern at ``steps`` phases over ``duration_us``;
    pixels entering the pattern emit ON events, pixels leaving emit OFF
    events, timestamps jittered uniformly within the step.  A Poisson
    number of noise events per step fires at random pixels/polarities.
    """
    if not 0 <= label < len(CLASS_PATTERNS):
        raise ValueError(f"label must be in [0, {len(CLASS_PATTERNS)}), got {label}")
    if duration_us < steps:
        raise ValueError("duration_us must be >= steps")
    pattern = CLASS_PATTERNS[label]
    jitter = rng.normal(0.0, 1.0, size=5)
    step_us = duration_us / steps

    ts: List[np.ndarray] = []
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    ps: List[np.ndarray] = []
    previous = np.zeros((height, width), dtype=bool)
    for step in range(steps):
        phase = step / max(steps - 1, 1)
        current = _occupancy(pattern, phase, height, width, jitter)
        t0 = step * step_us
        for mask, polarity in (((current & ~previous), 1), ((previous & ~current), 0)):
            yy, xx = np.nonzero(mask)
            if len(yy) == 0:
                continue
            ts.append((t0 + rng.uniform(0.0, step_us, size=len(yy))).astype(np.int64))
            xs.append(xx.astype(np.int16))
            ys.append(yy.astype(np.int16))
            ps.append(np.full(len(yy), polarity, dtype=np.int8))
        noise = rng.poisson(noise_events_per_step)
        if noise:
            ts.append((t0 + rng.uniform(0.0, step_us, size=noise)).astype(np.int64))
            xs.append(rng.integers(0, width, size=noise).astype(np.int16))
            ys.append(rng.integers(0, height, size=noise).astype(np.int16))
            ps.append(rng.integers(0, 2, size=noise).astype(np.int8))
        previous = current

    t = np.concatenate(ts) if ts else np.empty(0, dtype=np.int64)
    x = np.concatenate(xs) if xs else np.empty(0, dtype=np.int16)
    y = np.concatenate(ys) if ys else np.empty(0, dtype=np.int16)
    p = np.concatenate(ps) if ps else np.empty(0, dtype=np.int8)
    np.clip(t, 0, duration_us - 1, out=t)
    order = np.argsort(t, kind="stable")
    return EventStream(
        t=t[order], x=x[order], y=y[order], polarity=p[order],
        label=label, duration_us=duration_us, height=height, width=width,
    )


def generate_event_streams(
    size: int,
    seed: int = 0,
    name: str = "dvs-gesture-like",
    **stream_kwargs,
) -> EventStreamDataset:
    """Generate ``size`` samples balanced across the ten gesture classes.

    Sample ``i`` is drawn from ``substream(seed, "datasets.event-stream",
    (i,))`` — deterministic regardless of generation order or how many
    other streams were consumed (the glyph-set reproducibility contract).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    label_rng = _substream(seed, "datasets.event-stream.labels")
    labels = np.arange(size) % NUM_CLASSES
    label_rng.shuffle(labels)
    streams = [
        generate_event_stream(
            int(labels[i]),
            _substream(seed, "datasets.event-stream", (i,)),
            **stream_kwargs,
        )
        for i in range(size)
    ]
    return EventStreamDataset(streams, name=name)


def event_stream_like(
    train_size: int = 200,
    test_size: int = 50,
    seed: int = 0,
    **stream_kwargs,
) -> Tuple[EventStreamDataset, EventStreamDataset]:
    """Return ``(train, test)`` event-stream datasets with disjoint seeds."""
    train = generate_event_streams(train_size, seed=seed, **stream_kwargs)
    test = generate_event_streams(
        test_size, seed=seed + 1_000_003, name="dvs-gesture-like-test",
        **stream_kwargs,
    )
    return train, test


# ---------------------------------------------------------------------------
# Event → M-bit count-frame binning
# ---------------------------------------------------------------------------

def events_to_counts(
    stream: EventStream,
    t0_us: int,
    t1_us: int,
    bits: int,
    polarity: str = "merge",
) -> np.ndarray:
    """Bin one time window of events into an M-bit count frame.

    Counts per pixel are clipped to ``[0, 2^bits − 1]`` — the M-bit spike
    window (Eq. 2): a counter driven by an event stream saturates, it
    does not wrap.  ``polarity="merge"`` counts all events into one
    channel; ``"split"`` keeps OFF/ON in two channels.  Returns ``int64``
    of shape ``(C, height, width)``.
    """
    if t1_us <= t0_us:
        raise ValueError(f"need t0_us < t1_us, got [{t0_us}, {t1_us})")
    if polarity not in ("merge", "split"):
        raise ValueError(f"polarity must be 'merge' or 'split', got {polarity!r}")
    window = stream.slice_time(t0_us, t1_us)
    channels = 1 if polarity == "merge" else 2
    counts = np.zeros((channels, stream.height, stream.width), dtype=np.int64)
    if len(window):
        channel = (
            np.zeros(len(window), dtype=np.int64)
            if polarity == "merge"
            else window.polarity.astype(np.int64)
        )
        flat = (
            channel * (stream.height * stream.width)
            + window.y.astype(np.int64) * stream.width
            + window.x.astype(np.int64)
        )
        binned = np.bincount(flat, minlength=counts.size)
        counts = binned.reshape(counts.shape)
    return np.minimum(counts, _window_length(bits))


def num_windows(duration_us: int, window_us: int, stride_us: int) -> int:
    """How many sliding windows cover a recording of ``duration_us``.

    Windows start at ``k · stride_us`` while the start lies inside the
    recording; the final window may extend past the end (it just holds
    fewer events).  At least one window is always produced.
    """
    if window_us < 1 or stride_us < 1:
        raise ValueError("window_us and stride_us must be positive")
    if duration_us <= window_us:
        return 1
    return 1 + (duration_us - window_us + stride_us - 1) // stride_us


def sliding_window_counts(
    stream: EventStream,
    window_us: int,
    stride_us: int,
    bits: int,
    polarity: str = "merge",
) -> np.ndarray:
    """Bin a stream into overlapping M-bit count frames.

    Returns ``int64`` of shape ``(num_windows, C, height, width)`` where
    window ``k`` covers ``[k·stride_us, k·stride_us + window_us)``.
    """
    n = num_windows(stream.duration_us, window_us, stride_us)
    return np.stack([
        events_to_counts(
            stream, k * stride_us, k * stride_us + window_us, bits,
            polarity=polarity,
        )
        for k in range(n)
    ])


def counts_to_frames(counts: np.ndarray, bits: int) -> np.ndarray:
    """Normalize integer count frames to ``float64`` inputs in [0, 1].

    Deployed networks calibrate their :class:`~repro.core.modules.
    InputQuantizer` on ``[0, 1]``-ranged images; dividing by the window
    length maps a saturated pixel to exactly 1.0, so count frames reuse
    the image input path unchanged.
    """
    return np.asarray(counts, dtype=np.float64) / float(_window_length(bits))


def max_window_count(
    streams: Sequence[EventStream],
    window_us: int,
    stride_us: int,
) -> int:
    """Largest *unclipped* per-pixel event count in any sliding window.

    The measurement behind the temporal saturation rules (QT7xx): if this
    exceeds ``2^M − 1`` the M-bit binning provably clips.
    """
    peak = 0
    for stream in streams:
        n = num_windows(stream.duration_us, window_us, stride_us)
        for k in range(n):
            window = stream.slice_time(k * stride_us, k * stride_us + window_us)
            if len(window) == 0:
                continue
            flat = window.y.astype(np.int64) * stream.width + window.x.astype(np.int64)
            peak = max(peak, int(np.bincount(flat).max()))
    return peak


__all__ = [
    "CLASS_PATTERNS",
    "EventStream",
    "EventStreamDataset",
    "counts_to_frames",
    "event_stream_like",
    "events_to_counts",
    "generate_event_stream",
    "generate_event_streams",
    "max_window_count",
    "num_windows",
    "sliding_window_counts",
]
