"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so that
every experiment in the benchmark harness is reproducible from a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for linear and convolutional weights."""
    if len(shape) == 2:  # (out_features, in_features)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out_channels, in_channels, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialization for ReLU networks: N(0, sqrt(2 / fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialization, uniform variant: U(±sqrt(6 / fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot initialization: U(±sqrt(6 / (fan_in + fan_out)))."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot initialization, normal variant."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros (biases, batchnorm beta)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones (batchnorm gamma)."""
    return np.ones(shape)
