"""repro.nn — a from-scratch numpy deep-learning framework.

This package stands in for the Torch framework the paper trained its
networks on.  It provides reverse-mode autograd (:mod:`repro.nn.tensor`),
differentiable ops (:mod:`repro.nn.functional`), composable modules
(:mod:`repro.nn.modules`), losses, optimizers, a data pipeline and
state-dict serialization.
"""

from repro.nn import functional
from repro.nn.data import DataLoader, Dataset
from repro.nn.losses import cross_entropy, mse_loss, nll_loss
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)
from repro.nn.optim import SGD, Adam, CosineLR, Optimizer, StepLR
from repro.nn.serialization import (
    BlobError,
    StateDictError,
    atomic_write_bytes,
    atomic_write_text,
    load_blob,
    load_state,
    save_blob,
    save_state,
)
from repro.nn.tensor import Tensor, as_tensor, concatenate, no_grad, stack

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "no_grad",
    "stack",
    "functional",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Residual",
    "cross_entropy",
    "mse_loss",
    "nll_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "CosineLR",
    "Dataset",
    "DataLoader",
    "save_state",
    "load_state",
    "StateDictError",
    "save_blob",
    "load_blob",
    "BlobError",
    "atomic_write_bytes",
    "atomic_write_text",
]
