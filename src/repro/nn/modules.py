"""Composable neural-network modules.

:class:`Module` is the base: it auto-registers parameters, sub-modules and
buffers (assignment is enough), supports ``train()``/``eval()`` mode,
``state_dict`` round-trips, and — specific to this reproduction — *forward
hooks*, which the Neuron Convergence trainer uses to tap inter-layer signals
and which the SNC deployment uses to verify layer-by-layer equivalence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor

ForwardHook = Callable[["Module", Tensor, Tensor], None]


class Module:
    """Base class for all network components.

    Subclasses define ``forward``; calling the module invokes it and fires
    any registered forward hooks with ``(module, input, output)``.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._forward_hooks: List[ForwardHook] = []
        self.training = True

    # -- registration via attribute assignment ---------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batchnorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- invocation -------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        out = self.forward(x)
        for hook in self._forward_hooks:
            hook(self, x, out)
        return out

    def register_forward_hook(self, hook: ForwardHook) -> Callable[[], None]:
        """Attach ``hook(module, input, output)``; returns a remover."""
        self._forward_hooks.append(hook)

        def remove() -> None:
            if hook in self._forward_hooks:
                self._forward_hooks.remove(hook)

        return remove

    def clear_forward_hooks(self) -> None:
        """Drop all forward hooks on this module (not recursively)."""
        self._forward_hooks.clear()

    # -- traversal --------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(dotted_name, module)`` for self and all descendants."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` over the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> List[Tensor]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of trainable scalar weights."""
        return sum(p.size for p in self.parameters())

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    # -- mode & gradients ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ---------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of all parameters and buffers, copied."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict` (in place)."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in params:
                if params[name].data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].data.shape} vs {value.shape}"
                    )
                params[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name}")


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self._modules[str(index)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            init.kaiming_normal((out_features, in_features), rng), requires_grad=True
        )
        self.bias = Tensor(init.zeros((out_features,)), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution layer."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
            requires_grad=True,
        )
        self.bias = Tensor(init.zeros((out_channels,)), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class BatchNorm2d(Module):
    """Batch normalization for 4-D inputs, with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(init.ones((num_features,)), requires_grad=True)
        self.beta = Tensor(init.zeros((num_features,)), requires_grad=True)
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.gamma,
            self.beta,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    """ReLU activation as a module (so hooks can tap inter-layer signals)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class MaxPool2d(Module):
    """Max pooling module."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d({self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling module."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d({self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Collapse the spatial extent to a vector per channel."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)

    def __repr__(self) -> str:
        return "Flatten()"


class Dropout(Module):
    """Inverted dropout; inactive in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Identity(Module):
    """Pass-through module (used for trivial residual shortcuts)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Residual(Module):
    """Residual connection: ``out = relu(body(x) + shortcut(x))``.

    The ReLU after the addition is the inter-layer signal that the paper's
    Neuron Convergence regularizer constrains in ResNet.
    """

    def __init__(self, body: Module, shortcut: Optional[Module] = None) -> None:
        super().__init__()
        self.body = body
        self.shortcut = shortcut if shortcut is not None else Identity()
        self.activation = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.activation(self.body(x) + self.shortcut(x))

    def __repr__(self) -> str:
        return f"Residual(body={self.body!r}, shortcut={self.shortcut!r})"
