"""Save / load model state as ``.npz`` archives, plus atomic file helpers.

``save_state`` is atomic (temp file + ``os.replace``), so a crash mid-write
never leaves a truncated archive at the target path, and it pins the file
to exactly the path you asked for — working around ``np.savez`` silently
appending ``.npz`` when the suffix is missing.  ``load_state`` validates
the archive against the module before loading and reports *all* missing /
unexpected keys and shape mismatches in one error.

The same temp-file + rename discipline is exposed for any writer via
:func:`atomic_write_bytes` / :func:`atomic_write_text` (benchmark result
files use it so an interrupted bench cannot leave a truncated JSON), and
:func:`save_blob` / :func:`load_blob` generalize it to arbitrary pickled
payloads framed with a SHA-256 digest — the content-addressed checkpoint
format of the :mod:`repro.flow` runner.  A blob whose bytes do not hash to
the recorded digest raises :class:`BlobError` instead of deserializing
garbage, which is what lets the runner *detect* a corrupted checkpoint and
recompute the step rather than resume from it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import zipfile
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.nn.modules import Module


class StateDictError(ValueError):
    """A saved state does not match the module it is being loaded into."""


class BlobError(ValueError):
    """A blob file is missing, truncated, corrupted, or mislabeled."""


#: frame header of a digest-verified blob file (format version 1).
BLOB_MAGIC = b"REPRO-BLOB-1\n"


def _publish_permissions(tmp_path: str) -> None:
    """Give a mkstemp temp file the permissions a plain ``open()`` would.

    ``mkstemp`` creates files ``0600`` regardless of umask (it is built
    for private scratch files), but these temp files are renamed into
    place as durable artifacts — checkpoints, benchmark blobs — that
    should be readable like any other created file.  Re-apply the
    process umask to the conventional ``0666`` creation mode before the
    rename publishes the file.
    """
    umask = os.umask(0)
    os.umask(umask)
    os.chmod(tmp_path, 0o666 & ~umask)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via a temp sibling + ``os.replace``.

    Readers never observe a partial file: either the old content is still
    there or the new content is complete.  The parent directory is created
    if needed.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp_blob_", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        _publish_permissions(tmp_path)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def atomic_write_text(path: str, text: str, encoding: str = "utf-8") -> None:
    """Atomically write a text file (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))


def payload_digest(payload: bytes) -> str:
    """The hex SHA-256 content digest used to address blob payloads."""
    return hashlib.sha256(payload).hexdigest()


def save_blob(path: str, obj: Any) -> str:
    """Atomically persist a picklable object with a digest frame.

    The file layout is ``BLOB_MAGIC + <sha256 hex> + "\\n" + pickle``;
    returns the payload digest, which callers may use as a content
    address (the flow runner feeds it into downstream step keys).
    """
    payload = pickle.dumps(obj, protocol=4)
    digest = payload_digest(payload)
    atomic_write_bytes(path, BLOB_MAGIC + digest.encode("ascii") + b"\n" + payload)
    return digest


def load_blob(path: str, expected_digest: Optional[str] = None) -> Tuple[Any, str]:
    """Load a blob written by :func:`save_blob`; returns ``(obj, digest)``.

    Raises :class:`BlobError` when the file is absent, carries the wrong
    magic, is truncated, fails its recorded digest, mismatches
    ``expected_digest``, or does not unpickle — corruption is *reported*,
    never silently deserialized.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        raise BlobError(f"cannot read blob {path!r}: {error}") from error
    if not raw.startswith(BLOB_MAGIC):
        raise BlobError(f"{path!r} is not a repro blob (bad magic)")
    body = raw[len(BLOB_MAGIC):]
    newline = body.find(b"\n")
    if newline != 64:  # a hex sha256 is exactly 64 bytes
        raise BlobError(f"{path!r} has a malformed digest header")
    recorded = body[:newline].decode("ascii")
    payload = body[newline + 1:]
    actual = payload_digest(payload)
    if actual != recorded:
        raise BlobError(
            f"{path!r} failed its integrity check: payload hashes to "
            f"{actual[:12]}… but the header records {recorded[:12]}… "
            "(truncated or corrupted)"
        )
    if expected_digest is not None and actual != expected_digest:
        raise BlobError(
            f"{path!r} holds content {actual[:12]}… but "
            f"{expected_digest[:12]}… was expected (stale or substituted)"
        )
    try:
        obj = pickle.loads(payload)
    except Exception as error:
        raise BlobError(f"{path!r} payload does not unpickle: {error}") from error
    return obj, actual


def save_state(module: Module, path: str) -> None:
    """Write a module's state dict to ``path`` (numpy ``.npz``), atomically.

    The archive lands at exactly ``path`` (whether or not it ends in
    ``.npz``): the write goes to a temporary sibling file first and is
    moved into place with ``os.replace``, so readers never observe a
    partially written archive.
    """
    state = module.state_dict()
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    # np.savez appends ".npz" unless the name already has it; write to a
    # temp file that carries the suffix, then rename to the exact target.
    fd, tmp_path = tempfile.mkstemp(suffix=".npz", prefix=".tmp_state_", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            # npz keys cannot contain "/" reliably; dots are fine.
            np.savez(handle, **state)
        _publish_permissions(tmp_path)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _resolve_archive_path(path: str) -> str:
    """Find the archive, tolerating a silently appended ``.npz`` suffix."""
    if os.path.exists(path):
        return path
    suffixed = path + ".npz"
    if not path.endswith(".npz") and os.path.exists(suffixed):
        return suffixed
    raise FileNotFoundError(f"no saved state at {path!r} (also tried {path + '.npz'!r})")


def load_state(module: Module, path: str) -> None:
    """Load a state dict previously written by :func:`save_state`.

    Raises :class:`StateDictError` listing every missing key, unexpected
    key, and shape mismatch between the archive and ``module`` — instead
    of whatever ``np.load`` / ``load_state_dict`` would hit first.
    """
    archive_path = _resolve_archive_path(path)
    try:
        with np.load(archive_path) as archive:
            state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as error:
        raise StateDictError(
            f"{archive_path!r} is not a readable .npz state archive: {error}"
        ) from error

    expected = module.state_dict()
    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    mismatched = sorted(
        name
        for name in set(expected) & set(state)
        if expected[name].shape != state[name].shape
    )
    if missing or unexpected or mismatched:
        problems = []
        if missing:
            problems.append(f"missing keys: {', '.join(missing)}")
        if unexpected:
            problems.append(f"unexpected keys: {', '.join(unexpected)}")
        if mismatched:
            details = ", ".join(
                f"{name} (module {expected[name].shape} vs file {state[name].shape})"
                for name in mismatched
            )
            problems.append(f"shape mismatches: {details}")
        raise StateDictError(
            f"state in {archive_path!r} does not match module: " + "; ".join(problems)
        )
    module.load_state_dict(state)
