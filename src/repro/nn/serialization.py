"""Save / load model state as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.modules import Module


def save_state(module: Module, path: str) -> None:
    """Write a module's state dict to ``path`` (numpy ``.npz``)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # npz keys cannot contain "/" reliably; dots are fine.
    np.savez(path, **state)


def load_state(module: Module, path: str) -> None:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
