"""Save / load model state as ``.npz`` archives.

``save_state`` is atomic (temp file + ``os.replace``), so a crash mid-write
never leaves a truncated archive at the target path, and it pins the file
to exactly the path you asked for — working around ``np.savez`` silently
appending ``.npz`` when the suffix is missing.  ``load_state`` validates
the archive against the module before loading and reports *all* missing /
unexpected keys and shape mismatches in one error.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from typing import Dict

import numpy as np

from repro.nn.modules import Module


class StateDictError(ValueError):
    """A saved state does not match the module it is being loaded into."""


def save_state(module: Module, path: str) -> None:
    """Write a module's state dict to ``path`` (numpy ``.npz``), atomically.

    The archive lands at exactly ``path`` (whether or not it ends in
    ``.npz``): the write goes to a temporary sibling file first and is
    moved into place with ``os.replace``, so readers never observe a
    partially written archive.
    """
    state = module.state_dict()
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    # np.savez appends ".npz" unless the name already has it; write to a
    # temp file that carries the suffix, then rename to the exact target.
    fd, tmp_path = tempfile.mkstemp(suffix=".npz", prefix=".tmp_state_", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            # npz keys cannot contain "/" reliably; dots are fine.
            np.savez(handle, **state)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def _resolve_archive_path(path: str) -> str:
    """Find the archive, tolerating a silently appended ``.npz`` suffix."""
    if os.path.exists(path):
        return path
    suffixed = path + ".npz"
    if not path.endswith(".npz") and os.path.exists(suffixed):
        return suffixed
    raise FileNotFoundError(f"no saved state at {path!r} (also tried {path + '.npz'!r})")


def load_state(module: Module, path: str) -> None:
    """Load a state dict previously written by :func:`save_state`.

    Raises :class:`StateDictError` listing every missing key, unexpected
    key, and shape mismatch between the archive and ``module`` — instead
    of whatever ``np.load`` / ``load_state_dict`` would hit first.
    """
    archive_path = _resolve_archive_path(path)
    try:
        with np.load(archive_path) as archive:
            state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, zipfile.BadZipFile, EOFError) as error:
        raise StateDictError(
            f"{archive_path!r} is not a readable .npz state archive: {error}"
        ) from error

    expected = module.state_dict()
    missing = sorted(set(expected) - set(state))
    unexpected = sorted(set(state) - set(expected))
    mismatched = sorted(
        name
        for name in set(expected) & set(state)
        if expected[name].shape != state[name].shape
    )
    if missing or unexpected or mismatched:
        problems = []
        if missing:
            problems.append(f"missing keys: {', '.join(missing)}")
        if unexpected:
            problems.append(f"unexpected keys: {', '.join(unexpected)}")
        if mismatched:
            details = ", ".join(
                f"{name} (module {expected[name].shape} vs file {state[name].shape})"
                for name in mismatched
            )
            problems.append(f"shape mismatches: {details}")
        raise StateDictError(
            f"state in {archive_path!r} does not match module: " + "; ".join(problems)
        )
    module.load_state_dict(state)
