"""Loss functions.

The paper's training objective (Eq. 2) is

    E(W) = E_D(W) + λ·R(W) + Σ_i λ_i·Rg(O_i)

where ``E_D`` is the data loss implemented here (cross entropy), ``R`` is
ordinary weight decay (handled by the optimizer), and ``Rg`` is the Neuron
Convergence regularizer from :mod:`repro.core.regularizers`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean cross-entropy between logits and integer class labels.

    Parameters
    ----------
    logits:
        ``(batch, num_classes)`` raw scores.
    targets:
        ``(batch,)`` integer labels.
    """
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D integer labels, got shape {targets.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"batch mismatch: {logits.shape[0]} logits vs {targets.shape[0]} targets"
        )
    log_probs = F.log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets.astype(np.int64)]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Union[np.ndarray, Tensor]) -> Tensor:
    """Mean squared error."""
    if isinstance(target, Tensor):
        target = target.data
    diff = prediction - Tensor(np.asarray(target))
    return (diff * diff).mean()


def nll_loss(log_probs: Tensor, targets: Union[np.ndarray, Tensor]) -> Tensor:
    """Negative log likelihood given log-probabilities."""
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets).astype(np.int64)
    batch = log_probs.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()
