"""Minimal dataset / dataloader abstractions.

A :class:`Dataset` is just paired arrays; :class:`DataLoader` yields shuffled
mini-batches as plain numpy arrays (the training loop wraps the images in a
:class:`~repro.nn.tensor.Tensor` itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """Paired ``(images, labels)`` arrays.

    ``images`` has shape ``(n, channels, height, width)`` (float) and
    ``labels`` has shape ``(n,)`` (int).
    """

    images: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images ({len(self.images)}) and labels ({len(self.labels)}) disagree"
            )
        if self.images.ndim != 4:
            raise ValueError(f"images must be 4-D (N, C, H, W), got {self.images.shape}")

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """(channels, height, width) of one sample."""
        return tuple(self.images.shape[1:])

    def subset(self, size: int, rng: Optional[np.random.Generator] = None) -> "Dataset":
        """Return a random (or leading, if rng is None) subset of ``size`` samples."""
        size = min(size, len(self))
        if rng is None:
            indices = np.arange(size)
        else:
            indices = rng.choice(len(self), size=size, replace=False)
        return Dataset(self.images[indices], self.labels[indices], name=self.name)

    def split(self, fraction: float, rng: np.random.Generator) -> Tuple["Dataset", "Dataset"]:
        """Randomly split into ``(first, second)`` with ``fraction`` in the first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        permutation = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        first, second = permutation[:cut], permutation[cut:]
        return (
            Dataset(self.images[first], self.labels[first], name=self.name),
            Dataset(self.images[second], self.labels[second], name=self.name),
        )


class DataLoader:
    """Iterate a dataset in mini-batches.

    Shuffling uses the provided generator, making epochs reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng or np.random.default_rng()
        self.drop_last = drop_last

    def __len__(self) -> int:
        full, rem = divmod(len(self.dataset), self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                return
            yield self.dataset.images[batch], self.dataset.labels[batch]
