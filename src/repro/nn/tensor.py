"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class, the leaf of the whole
framework.  A tensor wraps a ``numpy.ndarray`` and, when
``requires_grad=True``, records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients to every leaf.

The design follows the classic tape-less dynamic graph: each tensor produced
by an operation keeps

- ``_parents`` — the input tensors of the op, and
- ``_backward`` — a closure that, given the already-accumulated gradient of
  this tensor, pushes gradient contributions into the parents.

:meth:`Tensor.backward` topologically sorts the graph and runs the closures
in reverse order.  Gradients accumulate in ``Tensor.grad`` (a plain numpy
array) only on tensors with ``requires_grad=True``.

Broadcasting is handled uniformly by :func:`unbroadcast`, which reduces a
gradient back to the shape of the operand that was broadcast.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[np.ndarray, Number, Sequence]

# Global switch used by `no_grad()`.  When False, no graph is recorded.
_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the gradient of that operand is the sum of the
    incoming gradient over exactly those expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over broadcast (size-1) dimensions.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``float64`` by default — this project
        favours numerical fidelity (gradient checks against central
        differences) over raw speed.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` for this
        tensor during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = ()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a non-leaf tensor recording ``parents`` and ``backward``.

        If grad mode is off, or no parent requires grad, the result is a
        detached constant and the closure is dropped.
        """
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})\n{self.data!r}"

    def item(self) -> float:
        """Return the single scalar value held by this tensor."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a leaf tensor with a copied payload."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor to every reachable leaf.

        Parameters
        ----------
        grad:
            Gradient of some scalar objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors; required otherwise.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"grad shape {grad.shape} does not match tensor shape {self.data.shape}"
            )

        order = self._topological_order()
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)
            if node is not self:
                # Interior nodes don't need to keep their gradient around;
                # freeing it bounds peak memory on deep graphs.
                node.grad = None

    def _topological_order(self) -> list:
        """Iterative post-order DFS over the autograd graph."""
        order: list = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Arithmetic — implemented here so `a + b` works naturally; heavier
    # neural-network ops live in repro.nn.functional.
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: Union["Tensor", ArrayLike]) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other):
        return self._coerce(other).__sub__(self)

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: Number):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other):
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad @ np.swapaxes(other.data, -1, -2), self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(np.swapaxes(self.data, -1, -2) @ grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise non-linearities used directly (others in functional)
    # ------------------------------------------------------------------
    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: Number, high: Number) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def maximum(self, other: Union["Tensor", Number]) -> "Tensor":
        other = self._coerce(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            chooses_self = self.data >= other.data
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * chooses_self, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * ~chooses_self, other.shape))

        return Tensor._make(out_data, (self, other), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiable."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, boundaries, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward)


def as_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce arrays/scalars to :class:`Tensor` (tensors pass through)."""
    return value if isinstance(value, Tensor) else Tensor(value)
